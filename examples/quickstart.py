#!/usr/bin/env python
"""Quickstart: assemble a tiny program, watch the RAS get corrupted,
watch the paper's repair mechanism fix it.

Run:  python examples/quickstart.py
"""

from repro.config import RepairMechanism, baseline_config
from repro.emu import Emulator
from repro.isa import ProgramBuilder
from repro.pipeline import SinglePathCPU


def build_demo_program():
    """A loop calling a helper that takes a *data-dependent early
    return* — the paper's canonical corruption pattern.

    The 50/50 branch guarding the early return is unlearnable, so it
    mispredicts constantly. A wrong path that wrongly takes the early
    return *pops* the return-address stack, follows the popped address
    back into the caller, and *pushes* again at the next call site:
    pop-then-push overwrites the top entry, which is exactly the case
    that restoring the TOS pointer alone cannot repair."""
    b = ProgramBuilder("quickstart")
    b.label("main")
    b.li(29, 0x80000)                  # stack pointer
    b.li(20, 0x2545F4914F6CDD1D)       # LCG state
    b.li(21, 6364136223846793005)      # LCG multiplier
    b.li(10, 600)                      # loop counter
    b.label("loop")
    b.jal("helper")
    b.addi(1, 1, 1)
    b.jal("helper")
    b.addi(10, 10, -1)
    b.bnez(10, "loop")
    b.halt()

    b.label("helper")
    # advance the LCG and test one pseudo-random bit: a coin flip no
    # history predictor can learn.
    b.mul(20, 20, 21)
    b.addi(20, 20, 1442695040888963407)
    b.srli(22, 20, 33)
    b.andi(23, 22, 1)
    b.beqz(23, "early_out")            # 50/50 early return
    b.addi(29, 29, -4)                 # frame: the nested call clobbers r31
    b.store(31, 29, 0)
    b.addi(2, 2, 1)
    b.jal("leaf")                      # nested call on the long side
    b.addi(2, 2, 3)
    b.load(31, 29, 0)
    b.addi(29, 29, 4)
    b.label("early_out")
    b.ret()

    b.label("leaf")
    b.addi(3, 3, 1)
    b.ret()
    return b.build(entry="main")


def main():
    program = build_demo_program()

    golden = Emulator(program).run()
    print(f"functional run: {golden.instructions} instructions, "
          f"{golden.calls} calls, {golden.returns} returns\n")

    for mechanism in (RepairMechanism.NONE,
                      RepairMechanism.TOS_POINTER,
                      RepairMechanism.TOS_POINTER_AND_CONTENTS):
        config = baseline_config().with_repair(mechanism)
        result = SinglePathCPU(program, config).run()
        print(f"repair={mechanism.value:22s} "
              f"return accuracy={result.return_accuracy:6.1%}  "
              f"IPC={result.ipc:.3f}  "
              f"mispredictions={result.counter('mispredictions')}")

    print("\nThe ordering none < tos-pointer < tos-pointer-contents is the "
          "paper's core result in miniature.")


if __name__ == "__main__":
    main()
