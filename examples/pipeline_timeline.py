#!/usr/bin/env python
"""Watch a return misprediction cost real cycles, stage by stage.

Renders the pipeline timeline around a mispredicted return on a RAS
with no repair, and the same region with the paper's mechanism: the
repaired machine's post-return instructions fetch immediately, the
unrepaired one restarts fetch only after the return resolves.

Run:  python examples/pipeline_timeline.py
"""

import os
import sys

from repro.config import RepairMechanism, baseline_config
from repro.pipeline import SinglePathCPU, TimelineRecorder, render_timeline

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from quickstart import build_demo_program  # noqa: E402


def show(mechanism, around=30, count=14):
    program = build_demo_program()
    recorder = TimelineRecorder(limit=4000)
    config = baseline_config().with_repair(mechanism)
    cpu = SinglePathCPU(program, config, commit_hook=recorder)
    result = cpu.run()

    # Find a return whose next instruction committed suspiciously late
    # (i.e. a mispredicted one), or just a representative return.
    pick = None
    for index, record in enumerate(recorder.records[:-1]):
        if record.opcode == "ret":
            gap = recorder.records[index + 1].fetch - record.commit
            if gap >= 0:   # fetched only after the return committed
                pick = index
                break
    if pick is None:
        pick = next(i for i, r in enumerate(recorder.records)
                    if r.opcode == "ret")
    start = max(0, pick - 4)
    print(f"--- repair={mechanism.value}  "
          f"(IPC={result.ipc:.3f}, return accuracy "
          f"{result.return_accuracy:.1%}) ---")
    print(render_timeline(recorder.records, start=start, count=count))
    print()


def main():
    print(__doc__)
    show(RepairMechanism.NONE)
    show(RepairMechanism.TOS_POINTER_AND_CONTENTS)
    print("Legend: F fetch, - front end, D dispatch, . waiting, "
          "I issue, X execute, _ done-waiting-retire, C commit")


if __name__ == "__main__":
    main()
