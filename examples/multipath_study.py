#!/usr/bin/env python
"""Multipath execution and the return-address stack (the paper's §5).

Forks both sides of low-confidence branches and compares the three
stack organisations: unified (broken by contention), unified with full
checkpointing (still broken — contention is not a wrong-path effect),
and per-path stacks (the paper's fix, >25% on call-dense workloads).

Run:  python examples/multipath_study.py [benchmark] [scale]
"""

import sys

from repro.config import StackOrganization
from repro.core.sweep import multipath_sweep
from repro.stats import format_table
from repro.workloads import build_workload


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "li"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2
    program = build_workload(benchmark, seed=1, scale=scale)
    print(f"workload: {benchmark} (scale={scale})\n")

    rows = []
    grid = multipath_sweep(program, (2, 4))
    baseline_ipc = {}
    for record in grid:
        key = record["paths"]
        if record["organization"] is StackOrganization.UNIFIED:
            baseline_ipc[key] = record["ipc"]
    for record in grid:
        rows.append([
            record["paths"],
            record["organization"].value,
            round(record["ipc"], 3),
            round(record["ipc"] / baseline_ipc[record["paths"]], 3),
            None if record["return_accuracy"] is None
            else round(100 * record["return_accuracy"], 1),
            record["forks"],
            record["fork_saved"],
        ])
    print(format_table(
        ["paths", "stack organisation", "ipc", "vs unified",
         "return acc %", "forks", "saved mispredicts"],
        rows,
        title="Multipath stack organisations",
    ))
    print("\n'saved mispredicts' are branches that would have flushed the "
          "pipeline but whose correct side was already executing.")


if __name__ == "__main__":
    main()
