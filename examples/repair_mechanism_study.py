#!/usr/bin/env python
"""The paper's main experiment on one workload: every repair mechanism,
hit rate and IPC, on the cycle-level model.

Run:  python examples/repair_mechanism_study.py [benchmark] [scale]
"""

import sys

from repro.config import RepairMechanism, baseline_config
from repro.core.experiment import run_cycle
from repro.core.sweep import mechanism_sweep
from repro.stats import format_table
from repro.workloads import build_workload


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "li"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    program = build_workload(benchmark, seed=1, scale=scale)
    print(f"workload: {benchmark} (scale={scale}, "
          f"{len(program)} static instructions)\n")

    results = mechanism_sweep(program, list(RepairMechanism))
    btb_only, _ = run_cycle(program, baseline_config().without_ras())

    rows = []
    for mechanism, summary in results.items():
        rows.append([
            mechanism.value,
            summary["instructions"],
            round(summary["ipc"], 3),
            None if summary["return_accuracy"] is None
            else round(100 * summary["return_accuracy"], 2),
            summary["mispredictions"],
            summary["squashed"],
        ])
    rows.append([
        "(btb-only, no RAS)",
        btb_only.instructions,
        round(btb_only.ipc, 3),
        None if btb_only.return_accuracy is None
        else round(100 * btb_only.return_accuracy, 2),
        btb_only.counter("mispredictions"),
        btb_only.counter("squashed"),
    ])
    print(format_table(
        ["mechanism", "insts", "ipc", "return acc %", "mispredicts",
         "squashed"],
        rows,
        title=f"Repair mechanisms on {benchmark}",
    ))


if __name__ == "__main__":
    main()
