#!/usr/bin/env python
"""Authoring custom workloads, two ways.

1. Hand-written assembly through :class:`repro.isa.ProgramBuilder` — a
   mutual-recursion kernel whose call depth we control exactly.
2. A custom :class:`repro.workloads.WorkloadProfile` — a synthetic
   benchmark with pathological recursion depth to stress small stacks.

Run:  python examples/custom_workload.py
"""

import dataclasses

from repro.config import RepairMechanism, baseline_config
from repro.core.sweep import stack_depth_sweep
from repro.pipeline import SinglePathCPU
from repro.workloads import WorkloadGenerator, profile_for
from repro.workloads.kernels import mutual_recursion_kernel


def hand_written_demo():
    print("=== hand-written kernel: mutual recursion, depth 48 ===")
    program = mutual_recursion_kernel(depth=48)
    print(program.disassemble(count=12))
    print("   ...")
    for entries in (8, 64):
        config = (baseline_config()
                  .with_repair(RepairMechanism.TOS_POINTER_AND_CONTENTS)
                  .with_ras_entries(entries))
        result = SinglePathCPU(program, config).run()
        print(f"  {entries:3d}-entry RAS: return accuracy "
              f"{result.return_accuracy:6.1%}, "
              f"overflows={result.counter('ras_overflows')}")
    print()


def custom_profile_demo():
    print("=== custom profile: li with pathological recursion ===")
    base = profile_for("li")
    deep = dataclasses.replace(
        base,
        name="li-deep",
        max_recursion_depth=60,     # far beyond a 32-entry stack
        recursive_functions=6,
        outer_iterations=8,
    )
    program = WorkloadGenerator(deep, seed=7).generate()
    results = stack_depth_sweep(
        program, (8, 16, 32, 64, 128),
        RepairMechanism.TOS_POINTER_AND_CONTENTS)
    for size, accuracy in results.items():
        print(f"  {size:4d}-entry RAS: return accuracy {accuracy:6.1%}")
    print("\nEven a 21264-sized (32-entry) stack overflows here; the "
          "paper's 'just make the stack deeper' remark has limits.")


if __name__ == "__main__":
    hand_written_demo()
    custom_profile_demo()
