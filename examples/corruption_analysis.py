#!/usr/bin/env python
"""Why does pointer+contents repair get so close to full checkpointing?

Runs the corruption analyzer: four return-address stacks (one per
repair mechanism) march in lockstep through the same program and the
same wrong paths; every committed return is labelled with the weakest
mechanism that predicted it. The paper's §4 argument is that the
"needs full checkpoint" tail is tiny — see for yourself.

Run:  python examples/corruption_analysis.py [benchmark] [scale]
"""

import sys

from repro.analysis import CorruptionAnalyzer
from repro.analysis.corruption import CATEGORIES
from repro.config import RepairMechanism, baseline_config
from repro.stats import format_table
from repro.workloads import build_workload

_EXPLANATIONS = {
    "clean": "no corruption reached this return",
    "needs_pointer": "wrong path pushed/popped; pointer restore fixes it",
    "needs_contents": "wrong-path pop-then-push overwrote the top entry",
    "needs_full": "corruption reached below the top entry",
    "unrepairable": "beyond even a full checkpoint (overflow, wild paths)",
}


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "li"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    program = build_workload(benchmark, seed=1, scale=scale)
    breakdown = CorruptionAnalyzer(program, baseline_config().predictor).run()

    rows = []
    for category in CATEGORIES:
        fraction = breakdown.fraction(category) or 0.0
        rows.append([
            category,
            breakdown.counts[category],
            round(100 * fraction, 2),
            _EXPLANATIONS[category],
        ])
    print(format_table(
        ["category", "returns", "%", "meaning"], rows,
        title=f"Corruption breakdown — {benchmark} "
              f"({breakdown.returns} returns)"))

    print("\nImplied hit rate per mechanism:")
    for mechanism in (RepairMechanism.NONE,
                      RepairMechanism.TOS_POINTER,
                      RepairMechanism.TOS_POINTER_AND_CONTENTS,
                      RepairMechanism.FULL_STACK):
        rate = breakdown.implied_hit_rate(mechanism)
        print(f"  {mechanism.value:22s} {rate:7.2%}")


if __name__ == "__main__":
    main()
