#!/usr/bin/env python
"""Stack-depth sensitivity with an ASCII curve (the paper's F3).

Deep call chains and recursion overflow small stacks; the curve
flattens once the stack covers the workload's common call depth.

Run:  python examples/stack_depth_study.py [benchmark]
"""

import sys

from repro.config import RepairMechanism
from repro.core.sweep import stack_depth_sweep
from repro.workloads import build_workload

SIZES = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64)


def bar(fraction: float, width: int = 50) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "vortex"
    program = build_workload(benchmark, seed=1, scale=0.5)
    print(f"return hit rate vs stack depth — {benchmark} "
          f"(fast front-end model)\n")
    for mechanism in (RepairMechanism.NONE,
                      RepairMechanism.TOS_POINTER_AND_CONTENTS):
        print(f"mechanism: {mechanism.value}")
        results = stack_depth_sweep(program, SIZES, mechanism)
        for size in SIZES:
            accuracy = results[size] or 0.0
            print(f"  {size:3d} entries |{bar(accuracy)}| {accuracy:6.1%}")
        print()


if __name__ == "__main__":
    main()
