"""F4: stack organisations under multipath execution.

The paper's final figure: 2-path and 4-path relative performance,
normalised to the unified-stack case at the same path count. Per-path
stacks eliminate contention entirely (the paper reports gains of over
25% on call-dense workloads); full-stack checkpointing of a unified
stack does NOT help, because contention is not a wrong-path effect.
"""

import os

from repro.core import fig_multipath


def test_fig_multipath_stack_organisations(benchmark, emit, bench_seed):
    scale = float(os.environ.get("REPRO_MULTIPATH_SCALE", "0.15"))
    table = benchmark.pedantic(
        fig_multipath,
        kwargs={"seed": bench_seed, "scale": scale},
        rounds=1, iterations=1,
    )
    emit("fig_multipath", table)
    rows = table[2]
    # Columns: benchmark, paths, unified, unified-checkpoint, per-path
    # (relative ipc), then return accuracies in the same order.
    per_path_gains = [row[4] for row in rows]
    assert max(per_path_gains) > 1.05, "per-path should win somewhere big"
    for row in rows:
        name, paths = row[0], row[1]
        unified_rel, checkpoint_rel, per_path_rel = row[2], row[3], row[4]
        unified_acc, checkpoint_acc, per_path_acc = row[5], row[6], row[7]
        # Per-path never loses meaningfully to unified.
        assert per_path_rel > 0.97, (name, paths)
        # Contention wrecks shared stacks; private stacks do not care.
        assert per_path_acc > unified_acc + 10.0, (name, paths)
        # Full checkpointing does not rescue the unified stack.
        assert checkpoint_acc < per_path_acc - 10.0, (name, paths)
