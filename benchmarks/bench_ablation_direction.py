"""A7: repair payoff vs direction-predictor quality.

The RAS corruption the paper studies is *caused* by direction
mispredictions, so unrepaired return accuracy should track conditional-
branch accuracy across predictor families. (A measurement note: on
these synthetic workloads bimodal can *beat* the history predictors —
LCG-driven branches carry a bias but no history signal, and history
predictors fragment the bias across many cold pattern-table entries.
The invariant is the coupling, not any fixed family ordering.)
"""

from repro.core.tables import ablation_direction_predictors


def test_ablation_direction_predictors(benchmark, emit, bench_scale,
                                       bench_seed):
    table = benchmark.pedantic(
        ablation_direction_predictors,
        kwargs={"seed": bench_seed, "scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit("ablation_direction", table)
    by_benchmark = {}
    for row in table[2]:
        by_benchmark.setdefault(row[0], {})[row[1]] = row
    for name, kinds in by_benchmark.items():
        rows = list(kinds.values())
        # Repaired return accuracy stays high regardless of the
        # direction predictor...
        for row in rows:
            assert row[4] > 85.0, (name, row)
        # ...and corruption pressure tracks misprediction rate: when a
        # family clearly mispredicts less, its unrepaired stack cannot
        # be clearly worse.
        for a in rows:
            for b in rows:
                if a[2] > b[2] + 2.0:          # a predicts clearly better
                    assert a[3] >= b[3] - 3.0, (name, a, b)
