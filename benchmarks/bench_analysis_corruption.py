"""A4: corruption-cause breakdown of return mispredictions.

Reproduces the paper's Section 4 argument quantitatively: classify each
committed return by the weakest repair that would have predicted it.
The `needs_full` + `unrepairable` tail must be tiny — that is *why*
checkpointing one pointer and one address captures nearly all of full
checkpointing's benefit.
"""

from repro.analysis import CorruptionAnalyzer
from repro.analysis.corruption import CATEGORIES
from repro.config import baseline_config
from repro.workloads import build_workload

_NAMES = ("compress", "go", "li", "perl", "vortex")


def test_corruption_breakdown(benchmark, emit, bench_scale, bench_seed):
    def build():
        rows = []
        for name in _NAMES:
            program = build_workload(name, seed=bench_seed, scale=bench_scale)
            breakdown = CorruptionAnalyzer(
                program, baseline_config().predictor).run()
            row = [name, breakdown.returns]
            for category in CATEGORIES:
                fraction = breakdown.fraction(category)
                row.append(None if fraction is None
                           else round(100 * fraction, 2))
            rows.append(row)
        headers = ["benchmark", "returns"] + [f"{c} %" for c in CATEGORIES]
        return ("Ablation: corruption-cause breakdown of returns",
                headers, rows)

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("analysis_corruption", table)
    for row in table[2]:
        needs_full, unrepairable = row[-2], row[-1]
        assert (needs_full or 0) + (unrepairable or 0) < 10.0, row[0]
