"""F2: IPC speedup from stack repair.

The paper: pointer+contents repair improves performance by up to ~8.7%
over a stack with no repair mechanism, and a well-designed stack gives
up to ~15% over BTB-only return prediction. Magnitudes vary with the
workload's call density; the sign and ordering are the reproducible
shape.
"""

from repro.core import fig_speedup


def test_fig_speedup_from_repair(benchmark, emit, bench_scale, bench_seed):
    table = benchmark.pedantic(
        fig_speedup,
        kwargs={"seed": bench_seed, "scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit("fig_speedup", table)
    rows = table[2]
    vs_none = [row[4] for row in rows]
    vs_btb = [row[5] for row in rows]
    # Repair helps on average, and at least one call-dense workload
    # shows a multi-percent gain on both baselines.
    assert sum(vs_none) / len(vs_none) > 0.0
    assert max(vs_none) > 2.0
    assert max(vs_btb) > 4.0
