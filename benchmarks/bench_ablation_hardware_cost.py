"""A6: hardware cost vs benefit of each repair mechanism.

Joins the storage-cost model (bits of shadow state per in-flight
branch, extra stack bits) with the measured hit rates: the paper's
pointer+contents proposal sits at the knee — ~69 bits per branch buys
within a point or two of a full checkpoint that would cost >2000 bits
per branch.
"""

from repro.analysis import mechanism_costs
from repro.config import RepairMechanism, baseline_config
from repro.core.experiment import run_cycle
from repro.workloads import build_workload


def test_hardware_cost_benefit(benchmark, emit, bench_scale, bench_seed):
    def build():
        program = build_workload("li", seed=bench_seed, scale=bench_scale)
        accuracy = {}
        for mechanism in RepairMechanism:
            config = baseline_config().with_repair(mechanism)
            result, _ = run_cycle(program, config)
            accuracy[mechanism] = result.return_accuracy
        rows = []
        for cost in mechanism_costs(baseline_config().predictor):
            acc = accuracy[cost.mechanism]
            rows.append([
                cost.mechanism.value,
                cost.bits_per_checkpoint,
                cost.extra_stack_bits,
                cost.total_bits(20),
                None if acc is None else round(100 * acc, 2),
            ])
        headers = ["mechanism", "bits/branch", "extra stack bits",
                   "total bits (20 in flight)", "li return acc %"]
        return ("Ablation: hardware cost vs benefit (32-entry RAS)",
                headers, rows)

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_hardware_cost", table)
    rows = {row[0]: row for row in table[2]}
    contents = rows["tos-pointer-contents"]
    full = rows["full-stack"]
    # the knee: within a few points of full at a tiny fraction of cost.
    assert contents[4] > full[4] - 5.0
    assert contents[1] < full[1] / 10
