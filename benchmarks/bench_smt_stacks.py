"""A9: SMT — per-thread return-address stacks are a necessity.

The paper's related work (Hily & Seznec): in a simultaneously
multithreaded processor, "because calls and returns from different
threads can be interleaved, they find per-thread stacks are a
necessity". Heterogeneous threads (different seeds) expose the full
contention; a shared stack collapses while per-thread stacks match the
single-thread baseline.
"""

from repro.config import baseline_config
from repro.smt import SmtFrontEndSim
from repro.workloads import build_workload


def test_smt_stack_organisations(benchmark, emit, bench_scale, bench_seed):
    def build():
        rows = []
        for name in ("li", "vortex"):
            for threads in (2, 4):
                programs = [
                    build_workload(name, seed=bench_seed + i,
                                   scale=bench_scale)
                    for i in range(threads)
                ]
                accuracy = {}
                for per_thread in (True, False):
                    sim = SmtFrontEndSim(
                        programs, baseline_config().predictor,
                        per_thread_stacks=per_thread)
                    result = sim.run()
                    accuracy[per_thread] = result.return_accuracy
                rows.append([
                    name, threads,
                    round(100 * accuracy[False], 2),
                    round(100 * accuracy[True], 2),
                ])
        headers = ["benchmark", "threads", "shared stack ret %",
                   "per-thread stacks ret %"]
        return ("SMT: shared vs per-thread return-address stacks",
                headers, rows)

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("smt_stacks", table)
    for name, threads, shared, per_thread in table[2]:
        assert per_thread > 90.0, (name, threads)
        assert shared < per_thread - 20.0, (name, threads)
