"""T4: return prediction without a RAS (paper Table 4).

The paper: without a return-address stack, return addresses are found
in the BTB "only a little over half the time", and a well-designed
stack produces speedups of up to 15% versus BTB-only prediction.
"""

from repro.core import table4_btb_only


def test_table4_btb_only_returns(benchmark, emit, bench_scale, bench_seed):
    table = benchmark.pedantic(
        table4_btb_only,
        kwargs={"seed": bench_seed, "scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit("table4_btb_only", table)
    rows = table[2]
    btb_only = [row[1] for row in rows if row[1] is not None]
    with_ras = [row[2] for row in rows if row[2] is not None]
    # BTB-only lands around half; the RAS beats it everywhere on average.
    assert sum(btb_only) / len(btb_only) < 80.0
    assert sum(with_ras) / len(with_ras) > sum(btb_only) / len(btb_only)
