"""A2: limited shadow-checkpoint slots.

The paper observes the shadow state is limited — 4 in-flight branches
on the MIPS R10000, ~20 on the Alpha 21264. Branches predicted while
the pool is exhausted carry no checkpoint, so their mispredictions
cannot repair the stack; accuracy should rise with the slot budget and
saturate near the unlimited case by ~20 slots.
"""

from repro.core import ablation_shadow_slots


def test_ablation_shadow_checkpoint_slots(benchmark, emit, bench_scale,
                                          bench_seed):
    table = benchmark.pedantic(
        ablation_shadow_slots,
        kwargs={"seed": bench_seed, "scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit("ablation_shadow_slots", table)
    for row in table[2]:
        name, *accuracies = row
        one_slot, unlimited = accuracies[0], accuracies[-1]
        twenty = accuracies[-2]
        assert unlimited >= one_slot, name
        assert abs(twenty - unlimited) < 5.0, name  # 21264-like is enough
