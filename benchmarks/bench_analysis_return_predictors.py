"""A5: RAS vs general indirect-branch predictors on returns.

The paper (related work): target-history mechanisms "can potentially
capture caller history well enough to distinguish among possible return
targets. These general mechanisms, however, do not achieve the
near-100% accuracies possible with a return-address stack."
"""

from repro.analysis import compare_return_predictors
from repro.workloads import build_workload

_NAMES = ("compress", "li", "perl", "vortex")


def test_return_predictor_comparison(benchmark, emit, bench_scale, bench_seed):
    def build():
        rows = []
        columns = None
        for name in _NAMES:
            program = build_workload(name, seed=bench_seed, scale=bench_scale)
            comparison = compare_return_predictors(program)
            if columns is None:
                columns = sorted(comparison.accuracy)
            row = [name, comparison.returns]
            for column in columns:
                value = comparison.accuracy[column]
                row.append(None if value is None else round(100 * value, 2))
            rows.append(row)
        headers = ["benchmark", "returns"] + [f"{c} %" for c in columns]
        return ("Ablation: return prediction — RAS vs indirect predictors",
                headers, rows)

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("analysis_return_predictors", table)
    headers = table[1]
    ras_col = headers.index("ras %")
    general_cols = [i for i, h in enumerate(headers)
                    if h.endswith("%") and i != ras_col]
    for row in table[2]:
        best_general = max(row[i] for i in general_cols if row[i] is not None)
        assert row[ras_col] > best_general, row[0]
