"""Differential cross-validation throughput over an imported corpus.

Times the diffcheck harness end to end: import the checked-in sample
ChampSim trace into a fresh corpus, then replay every shard through
both the production champsim lane and the reference transliteration
(:mod:`repro.corpus.diffcheck`). Caching is disabled so the timing
reflects the real dual-model replay, and the assertions double as the
acceptance bar: zero divergences on every shard.
"""

import itertools
import pathlib

from repro.core.executor import SweepExecutor, default_jobs
from repro.corpus import CorpusStore, diff_corpus

_SAMPLE = (pathlib.Path(__file__).resolve().parents[1]
           / "tests" / "data" / "sample_champsim.trace.xz")
_ROUND = itertools.count()


def test_bench_corpus_diffcheck(benchmark, emit, tmp_path):
    def import_and_diff():
        store = CorpusStore.create(tmp_path / f"corpus{next(_ROUND)}")
        store.import_champsim(_SAMPLE, name="sample")
        executor = SweepExecutor(jobs=default_jobs(), cache=None)
        reports = diff_corpus(store, executor=executor)
        headers = ["shard", "events", "returns", "ours hits",
                   "reference hits", "divergences"]
        rows = [[r.shard, r.events, r.returns, r.ours_hits,
                 r.reference_hits, r.divergences] for r in reports]
        return ("Differential check (champsim vs reference)",
                headers, rows), reports

    table, reports = benchmark.pedantic(import_and_diff, rounds=1,
                                        iterations=1)
    emit("corpus_diffcheck", table)
    assert reports, "no shards were diffed"
    for report in reports:
        report.ensure()  # zero divergences, or raise with context
        assert report.returns > 0
        assert report.ours_hits == report.reference_hits
