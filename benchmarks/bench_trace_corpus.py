"""Corpus pipeline: build a sharded trace corpus, then sweep it.

Times the full data path the corpus subsystem adds: streaming
ingestion (emulator -> compressed v2 shards + manifest) followed by an
executor-routed stack-depth sweep over every shard. Caching is
disabled so the timing reflects real ingest + replay work on every
run.
"""

import itertools

from repro.core.executor import SweepExecutor, default_jobs
from repro.core.experiment import WorkloadSpec
from repro.corpus import CorpusStore, corpus_depth_sweep

_SIZES = (1, 4, 16, 64)
_NAMES = ("li", "vortex")
_ROUND = itertools.count()


def test_bench_trace_corpus(benchmark, emit, bench_seed, bench_scale,
                            tmp_path):
    def build_and_replay():
        store = CorpusStore.create(tmp_path / f"corpus{next(_ROUND)}")
        store.build_from_specs(
            [WorkloadSpec(name, bench_seed, bench_scale) for name in _NAMES])
        executor = SweepExecutor(jobs=default_jobs(), cache=None)
        return corpus_depth_sweep(store, _SIZES, executor=executor)

    table = benchmark.pedantic(build_and_replay, rounds=1, iterations=1)
    emit("trace_corpus", table)
    title, headers, rows = table
    assert len(rows) == len(_NAMES)
    for row in rows:
        name, *accuracies, returns = row
        assert returns > 0, name
        # Capacity story: the 64-entry stack must beat the 1-entry one.
        assert accuracies[-1] > accuracies[0], name
