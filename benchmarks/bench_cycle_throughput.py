"""Cycle-engine throughput: columnar work-list twins vs the references.

Runs the same workloads through the reference execution-driven CPUs
(:mod:`repro.pipeline`, :mod:`repro.multipath`) and their columnar
fast twins (:mod:`repro.fastsim.cycle`, :mod:`repro.fastsim.multipath`)
and measures the speedup. Timing is **interleaved best-of-N**: each
engine's full pass over the workload set is timed ``_ROUNDS`` times in
an alternating order and the minimum is kept — wall-clock noise on
shared runners easily swings a single pass by +-20%, the minimum is
the estimate least contaminated by scheduler interference, and the
interleaving means slow thermal / frequency drift hits both engines
roughly equally instead of biasing whichever ran later. If the first
measurement still misses a floor, one retry with doubled rounds runs
before the gate fails: the floors themselves never move, the retry
only suppresses false negatives on a noisy host.

The emitted ``BENCH_cycle_throughput.json`` records the best walls and
speedups, which the CI bench gate (``repro-sim bench compare``) holds
against the committed baseline in ``benchmarks/baselines/``. The test
itself asserts the engine contract (ISSUE 6 acceptance): bit-identical
counters, with the single-path columnar engine >= 3x the reference
pipeline. The multipath twin is gated at a looser floor — its per-path
bookkeeping keeps more of the reference's object structure.
"""

import time

from repro.config.defaults import baseline_config
from repro.config.options import StackOrganization
from repro.core.experiment import multipath_machine, run_cycle, run_multipath
from repro.fastsim.cycle import cycle_backend, run_cycle_fast
from repro.fastsim.multipath import run_multipath_fast
from repro.fastsim.parity import flatten_group
from repro.workloads.generator import build_workload
from repro.workloads.profiles import BENCHMARK_NAMES

_NAMES = BENCHMARK_NAMES
#: Timed passes per engine on the first attempt (doubled on retry).
_ROUNDS = 5

#: The ISSUE 6 acceptance floor for the single-path columnar engine.
MIN_SPEEDUP = 3.0
#: Conservative floor for the multipath twin (measured ~2.2x).
MIN_SPEEDUP_MULTIPATH = 1.5


def _best_of(rounds, *passes):
    """Time each pass ``rounds`` times, interleaved, keeping the minima.

    Returns ``[(best wall, last result), ...]``, one tuple per pass.
    """
    best = [None] * len(passes)
    results = [None] * len(passes)
    for _ in range(rounds):
        for i, run_pass in enumerate(passes):
            started = time.perf_counter()
            results[i] = run_pass()
            wall = time.perf_counter() - started
            best[i] = wall if best[i] is None else min(best[i], wall)
    return list(zip(best, results))


def _measure(programs, single_config, multi_config, rounds):
    ((ref_wall, ref_results),
     (fast_wall, fast_results),
     (ref_mp_wall, ref_mp_results),
     (fast_mp_wall, fast_mp_results)) = _best_of(
        rounds,
        lambda: {name: run_cycle(program, single_config)[0]
                 for name, program in programs.items()},
        lambda: {name: run_cycle_fast(program, single_config)[0]
                 for name, program in programs.items()},
        lambda: {name: run_multipath(program, multi_config)[0]
                 for name, program in programs.items()},
        lambda: {name: run_multipath_fast(program, multi_config)[0]
                 for name, program in programs.items()})
    instructions = sum(r.instructions for r in ref_results.values())
    cycle_speedup = round(ref_wall / fast_wall, 2)
    multipath_speedup = round(ref_mp_wall / fast_mp_wall, 2)
    rows = [
        ["cycle", "reference", len(programs), instructions,
         round(ref_wall, 4), 1.0],
        ["cycle-fast", cycle_backend(), len(programs), instructions,
         round(fast_wall, 4), cycle_speedup],
        ["multipath", "reference", len(programs), instructions,
         round(ref_mp_wall, 4), 1.0],
        ["multipath-fast", "worklist", len(programs), instructions,
         round(fast_mp_wall, 4), multipath_speedup],
    ]
    title = (f"Cycle-engine throughput: reference vs columnar "
             f"(best of {rounds} passes)")
    headers = ["engine", "backend", "workloads", "instructions",
               "best wall s", "speedup vs reference"]
    pairs = [(ref_results, fast_results),
             (ref_mp_results, fast_mp_results)]
    return ((title, headers, rows), pairs,
            (cycle_speedup, multipath_speedup))


def test_bench_cycle_throughput(benchmark, emit, bench_seed, bench_scale):
    programs = {name: build_workload(name, seed=bench_seed, scale=bench_scale)
                for name in _NAMES}
    single_config = baseline_config()
    multi_config = multipath_machine(2, StackOrganization.PER_PATH)

    def measure():
        table, pairs, speedups = _measure(
            programs, single_config, multi_config, _ROUNDS)
        if speedups[0] < MIN_SPEEDUP or \
                speedups[1] < MIN_SPEEDUP_MULTIPATH:
            # Noisy host: re-measure once with more rounds and keep the
            # attempt with the better headline speedup (see module
            # docstring — this narrows the noise, not the contract).
            retry = _measure(
                programs, single_config, multi_config, 2 * _ROUNDS)
            if retry[2][0] > speedups[0]:
                table, pairs, speedups = retry
        return table, pairs, speedups

    (table, pairs, speedups) = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    emit("cycle_throughput", table)

    # Differential parity: the speedup must be free.
    for reference_by_name, fast_by_name in pairs:
        for name, reference in reference_by_name.items():
            fast = fast_by_name[name]
            assert flatten_group(reference.group) == \
                flatten_group(fast.group), name

    cycle_speedup, multipath_speedup = speedups
    assert cycle_speedup >= MIN_SPEEDUP, (
        f"columnar cycle engine ran only {cycle_speedup}x the reference "
        f"pipeline; the contract is >= {MIN_SPEEDUP}x")
    assert multipath_speedup >= MIN_SPEEDUP_MULTIPATH, (
        f"fast multipath engine ran only {multipath_speedup}x the "
        f"reference; the floor is >= {MIN_SPEEDUP_MULTIPATH}x")
