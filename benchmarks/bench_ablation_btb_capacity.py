"""A10: BTB capacity cannot buy back the return-address stack.

Table 4's poor BTB-only return prediction is structural — a BTB stores
one target per return site, and returns have many callers — so growing
the BTB saturates well below what even a small RAS achieves.
"""

from repro.core.tables import ablation_btb_capacity


def test_ablation_btb_capacity(benchmark, emit, bench_scale, bench_seed):
    table = benchmark.pedantic(
        ablation_btb_capacity,
        kwargs={"seed": bench_seed, "scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit("ablation_btb_capacity", table)
    for row in table[2]:
        name, *accuracies = row
        ras = accuracies[-1]
        biggest_btb = accuracies[-2]
        smallest_btb = accuracies[0]
        # capacity helps a little at the bottom end...
        assert biggest_btb >= smallest_btb - 2.0, name
        # ...but saturates far below the RAS.
        assert ras > biggest_btb + 15.0, name
