"""Replay throughput: streaming vs batched trace-replay engines.

Builds a small corpus, then runs the paper's capacity-sweep shape (one
decode pass evaluating the full stack-size grid) through both replay
engines: the event-at-a-time streaming evaluator
(:func:`repro.trace.replay.replay_shard_multi`) and the block-decoded
batch engine (:func:`repro.fastsim.batch.replay_shard_batched_multi`).

The emitted ``BENCH_replay_throughput.json`` records both wall times
and the speedup, which the CI bench gate (``repro-sim bench compare``)
then holds against the committed baseline. The test itself asserts the
batch engine's contract: bit-identical counters at >= 3x the streaming
throughput.
"""

import time

from repro.core.experiment import WorkloadSpec
from repro.corpus import CorpusStore
from repro.fastsim.batch import decoder_backend, replay_shard_batched_multi
from repro.trace.replay import replay_shard_multi

_SIZES = (1, 2, 4, 8, 12, 16, 32, 64)
_NAMES = ("li", "vortex", "perl")
#: Timed decode passes per engine; totals absorb scheduler noise.
_ROUNDS = 3

#: The contract the batch engine must hold (see ISSUE 5 / docs).
MIN_SPEEDUP = 3.0


def _time_engine(shards, replay_multi):
    results = {}
    started = time.perf_counter()
    for _ in range(_ROUNDS):
        for shard in shards:
            results[shard.name] = replay_multi(shard, _SIZES)
    return time.perf_counter() - started, results


def test_bench_replay_throughput(benchmark, emit, bench_seed, bench_scale,
                                 tmp_path):
    store = CorpusStore.create(tmp_path / "corpus")
    store.build_from_specs(
        [WorkloadSpec(name, bench_seed, bench_scale) for name in _NAMES])
    shards = store.specs()
    events_per_pass = sum(shard.events for shard in shards)

    def measure():
        trace_wall, trace_results = _time_engine(shards, replay_shard_multi)
        batch_wall, batch_results = _time_engine(
            shards, replay_shard_batched_multi)
        rows = []
        for engine, decoder, wall in (
                ("trace", "objects", trace_wall),
                ("batch", decoder_backend(), batch_wall)):
            rows.append([
                engine, decoder, len(shards), len(_SIZES), events_per_pass,
                round(wall, 4),
                round(events_per_pass * _ROUNDS / wall / 1000.0, 1),
                round(trace_wall / wall, 2),
            ])
        title = (f"Replay throughput: trace vs batch "
                 f"({_ROUNDS} passes, {len(_SIZES)}-size grid)")
        headers = ["engine", "decoder", "shards", "sizes", "events/pass",
                   "wall s", "kevents/s", "speedup vs trace"]
        return (title, headers, rows), trace_results, batch_results

    table, trace_results, batch_results = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    emit("replay_throughput", table)

    # Differential parity: the speedup must be free.
    for name, by_size in trace_results.items():
        for size, reference in by_size.items():
            batched = batch_results[name][size]
            assert (reference.returns, reference.hits, reference.overflows,
                    reference.underflows) == \
                   (batched.returns, batched.hits, batched.overflows,
                    batched.underflows), (name, size)

    speedup = table[2][-1][-1]
    assert speedup >= MIN_SPEEDUP, (
        f"batch engine replayed only {speedup}x faster than the streaming "
        f"evaluator; the contract is >= {MIN_SPEEDUP}x")
