"""Shared helpers for the benchmark harness.

Each bench target regenerates one table or figure of the paper: it
builds the rows once (inside the timed benchmark call), prints them,
and also writes them under ``benchmarks/out/`` so the output survives
pytest's capture. Scale and seed come from REPRO_SCALE / REPRO_SEED.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table and persist it to benchmarks/out/."""
    from repro.stats.tables import format_table

    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, table_data) -> str:
        title, headers, rows = table_data
        text = format_table(headers, rows, title=title)
        print()
        print(text)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        return text

    return _emit


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.25"))


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return int(os.environ.get("REPRO_SEED", "1"))
