"""Shared helpers for the benchmark harness.

Each bench target regenerates one table or figure of the paper: it
builds the rows once (inside the timed benchmark call), prints them,
and also persists them under ``benchmarks/out/`` so the output survives
pytest's capture — both as the rendered text table and as a
machine-readable ``BENCH_<name>.json`` (rows + wall time + scale/seed
metadata; format documented in docs/performance.md) so the perf
trajectory can be tracked across commits. Scale and seed come from
REPRO_SCALE / REPRO_SEED.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Bump when the BENCH_*.json layout changes.
BENCH_JSON_SCHEMA = 1


@pytest.fixture()
def emit(bench_scale, bench_seed):
    """Print a rendered table and persist text + JSON to benchmarks/out/.

    Function-scoped so the wall time it records covers just the calling
    bench target (fixture setup to emit call, i.e. including the timed
    benchmark rounds).
    """
    from repro.stats.tables import format_table

    OUT_DIR.mkdir(exist_ok=True)
    started = time.perf_counter()

    def _emit(name: str, table_data) -> str:
        title, headers, rows = table_data
        text = format_table(headers, rows, title=title)
        print()
        print(text)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        payload = {
            "schema": BENCH_JSON_SCHEMA,
            "name": name,
            "title": title,
            "headers": list(headers),
            "rows": [list(row) for row in rows],
            "wall_time_s": round(time.perf_counter() - started, 3),
            "scale": bench_scale,
            "seed": bench_seed,
        }
        (OUT_DIR / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, default=str) + "\n")
        return text

    return _emit


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.25"))


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return int(os.environ.get("REPRO_SEED", "1"))
