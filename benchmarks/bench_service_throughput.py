"""Service throughput: submit-to-result latency over real HTTP.

Boots the full service stack (:class:`repro.service.BackgroundServer`
on an ephemeral port), pays for one cold sweep, then hammers the same
request warm: every warm ``POST /v1/sweeps`` coalesces onto the
finished job and returns the result inline, so each round trip measures
the whole service path — socket accept, HTTP framing, admission,
coalescing lookup, JSON render — with zero engine work.

The emitted ``BENCH_service_throughput.json`` records the cold wall
time and the warm p50/p95 latency; the CI service-smoke job holds it
against ``benchmarks/baselines/service.json`` via ``repro-sim bench
compare``. The test itself asserts the product target: warm
submit→result p50 under 50 ms on a local machine, enforced here with
CI headroom (see ``WARM_P50_BUDGET_MS``).
"""

import json
import time
import urllib.request

from repro.core.executor import ResultCache
from repro.service import BackgroundServer, ServiceServer, SimulationService

#: Warm round trips to sample (sequential; one connection each, like
#: real clients).
WARM_REQUESTS = 100

#: The docs/service.md target is p50 < 50 ms warm on a local machine;
#: CI runners are slower and noisier, so the hard gate carries 5x
#: headroom. Regressions beyond noise still trip the bench-compare
#: wall-time gate.
WARM_P50_BUDGET_MS = 250.0


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST")
    with urllib.request.urlopen(request) as response:
        return response.status, json.load(response)


def _percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * fraction))]


def test_bench_service_throughput(benchmark, emit, bench_seed, bench_scale,
                                  tmp_path):
    payload = {"sweep": "hit-rates", "names": ["li"],
               "seed": bench_seed, "scale": bench_scale}
    service = SimulationService(cache=ResultCache(tmp_path / "cache"),
                                jobs=1)

    def measure():
        with BackgroundServer(ServiceServer(service, port=0)) as background:
            url = background.url + "/v1/sweeps"
            cold_started = time.perf_counter()
            status, submitted = _post(url, payload)
            assert status == 202, status
            job = submitted["job"]
            while True:
                with urllib.request.urlopen(
                        f"{background.url}/v1/sweeps/{job}") as response:
                    descriptor = json.load(response)
                if descriptor["state"] in ("done", "failed"):
                    break
                time.sleep(0.05)
            cold_s = time.perf_counter() - cold_started
            assert descriptor["state"] == "done", descriptor.get("error")

            latencies_ms = []
            for _ in range(WARM_REQUESTS):
                started = time.perf_counter()
                status, body = _post(url, payload)
                latencies_ms.append((time.perf_counter() - started) * 1e3)
                assert status == 200 and body["job"] == job

            with urllib.request.urlopen(
                    background.url + "/metricz") as response:
                queue = json.load(response)["service"]["queue"]
            assert queue["executed"] == 1  # every warm submit coalesced
            assert queue["requests"] == 1 + WARM_REQUESTS

        rows = [
            ["cold", 1, len(descriptor["result"]["rows"]),
             round(cold_s * 1e3, 1), round(cold_s * 1e3, 1)],
            ["warm", WARM_REQUESTS, len(descriptor["result"]["rows"]),
             round(_percentile(latencies_ms, 0.50), 2),
             round(_percentile(latencies_ms, 0.95), 2)],
        ]
        title = ("Service submit->result latency "
                 f"(hit-rates/li, {WARM_REQUESTS} warm round trips)")
        headers = ["phase", "requests", "result rows",
                   "p50 ms", "p95 ms"]
        return (title, headers, rows), latencies_ms

    table, latencies_ms = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("service_throughput", table)

    warm_p50 = table[2][1][3]
    assert warm_p50 < WARM_P50_BUDGET_MS, (
        f"warm submit->result p50 was {warm_p50:.1f} ms; the service "
        f"target is < 50 ms locally (budget {WARM_P50_BUDGET_MS} ms "
        f"with CI headroom)")
