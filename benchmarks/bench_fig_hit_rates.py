"""F1: return-address-stack hit rate by repair mechanism.

Expected shape (paper Section 4): no repair is badly corrupted by
wrong-path execution; restoring the TOS pointer recovers most of it;
the paper's pointer+contents mechanism achieves nearly 100%; full-stack
checkpointing is the 100% upper bound.
"""

from repro.core import fig_hit_rates


def test_fig_hit_rates_by_mechanism(benchmark, emit, bench_scale, bench_seed):
    table = benchmark.pedantic(
        fig_hit_rates,
        kwargs={"seed": bench_seed, "scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit("fig_hit_rates", table)
    rows = [row for row in table[2] if None not in row[1:]]
    assert rows, "every benchmark must execute returns"
    for row in rows:
        name, none, tos_ptr, tos_contents, full = row
        assert none <= tos_contents + 1e-9, name
        assert tos_contents >= 85.0, name       # "nearly 100%"
        assert full >= 99.0, name               # upper bound
