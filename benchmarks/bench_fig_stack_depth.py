"""F3: sensitivity to return-address-stack depth.

Small stacks overflow under deep call chains (worst for the recursive
`li` and the chain-y `vortex`); the curves flatten by 16-32 entries —
the paper's argument for the 21264's move from 12 to 32 entries.
"""

from repro.core import fig_stack_depth

_SIZES = (1, 2, 4, 8, 12, 16, 32, 64)


def test_fig_stack_depth_sensitivity(benchmark, emit, bench_seed):
    table = benchmark.pedantic(
        fig_stack_depth,
        kwargs={"sizes": _SIZES, "seed": bench_seed},
        rounds=1, iterations=1,
    )
    emit("fig_stack_depth", table)
    for row in table[2]:
        name, *accuracies = row
        # Deeper stacks never hurt much: the 32-entry point must beat
        # the 1-entry point decisively, and 64 ~ 32 (flattened).
        assert accuracies[-2] > accuracies[0] + 5.0, name
        assert abs(accuracies[-1] - accuracies[-2]) < 5.0, name
