"""A8: how many top entries should the checkpoint save?

The paper proposes saving one (pointer + top contents) and notes that
saving more approaches full-stack checkpointing. This sweep shows the
diminishing returns: k=1 captures most of the benefit, a couple more
entries close nearly all of the remaining gap, and k=ras_entries
matches the full checkpoint exactly.
"""

from repro.core.tables import ablation_contents_depth


def test_ablation_contents_depth(benchmark, emit, bench_scale, bench_seed):
    table = benchmark.pedantic(
        ablation_contents_depth,
        kwargs={"seed": bench_seed, "scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit("ablation_contents_depth", table)
    for row in table[2]:
        name, *accuracies = row
        full = accuracies[-1]
        depth_curve = accuracies[:-1]
        # saving the whole stack via contents == full-stack checkpoint.
        assert depth_curve[-1] == full, name
        # weak monotonicity along the depth curve (small noise allowed).
        for shallow, deep in zip(depth_curve, depth_curve[1:]):
            assert deep >= shallow - 1.0, name