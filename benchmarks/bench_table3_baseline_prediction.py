"""T3: baseline control-flow prediction on the cycle model."""

from repro.core import table3_baseline


def test_table3_baseline_prediction(benchmark, emit, bench_scale, bench_seed):
    table = benchmark.pedantic(
        table3_baseline,
        kwargs={"seed": bench_seed, "scale": bench_scale},
        rounds=1, iterations=1,
    )
    text = emit("table3_baseline_prediction", table)
    rows = table[2]
    assert len(rows) == 8
    # With pointer+contents repair the baseline should predict returns
    # at near-paper accuracy on every benchmark.
    for row in rows:
        assert row[4] is None or row[4] > 80.0
