"""T2: benchmark summary (paper Table 2).

Dynamic instruction counts, call/return density and call depth for the
eight SPECint95-inspired synthetic workloads.
"""

from repro.stats.tables import format_table
from repro.workloads.characterize import TABLE2_HEADERS, characterize
from repro.workloads.generator import build_workload
from repro.workloads.profiles import BENCHMARK_NAMES


def test_table2_workload_summary(benchmark, emit, bench_scale, bench_seed):
    def build():
        rows = []
        for name in BENCHMARK_NAMES:
            program = build_workload(name, seed=bench_seed, scale=bench_scale)
            rows.append(characterize(program).as_row())
        return ("Table 2: benchmark summary", TABLE2_HEADERS, rows)

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    text = emit("table2_workloads", table)
    # the paper's workload contrasts: li is call-dense, ijpeg is not.
    rows = {row[0]: row for row in table[2]}
    assert rows["li"][5] > rows["ijpeg"][5]
