"""A1: the full mechanism zoo, including related-work variants.

Valid bits (Pentium-style detection with BTB fallback) and Jourdan-style
self-checkpointing join the four primary mechanisms. Self-checkpointing
should approach full-stack quality — the paper notes it achieves the
effect of full checkpointing at the cost of extra physical entries.
"""

from repro.config import RepairMechanism
from repro.core import ablation_mechanisms


def test_ablation_all_mechanisms(benchmark, emit, bench_scale, bench_seed):
    table = benchmark.pedantic(
        ablation_mechanisms,
        kwargs={"seed": bench_seed, "scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit("ablation_mechanisms", table)
    mechanisms = list(RepairMechanism)
    self_ck = mechanisms.index(RepairMechanism.SELF_CHECKPOINT) + 1
    none = mechanisms.index(RepairMechanism.NONE) + 1
    full = mechanisms.index(RepairMechanism.FULL_STACK) + 1
    for row in table[2]:
        assert row[self_ck] > row[none], row[0]
        assert row[self_ck] >= row[full] - 10.0, row[0]
