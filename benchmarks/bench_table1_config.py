"""T1: the baseline machine model (paper Table 1)."""

from repro.core import table1


def test_table1_baseline_config(benchmark, emit):
    table = benchmark.pedantic(table1, rounds=1, iterations=1)
    text = emit("table1_config", table)
    assert "return-address stack" in text
    assert "GAg" in text
