"""A3: cross-check — fast front-end model vs the cycle model.

The fast model replaces cycle-accurate wrong-path timing with a bounded
wrong-path replay; its hit-rate *ordering* across mechanisms must match
the cycle model's, or the stack-depth sweep (which uses it) would not
be trustworthy.
"""

from repro.core import ablation_fastsim_crosscheck


def test_ablation_fastsim_crosscheck(benchmark, emit, bench_scale, bench_seed):
    table = benchmark.pedantic(
        ablation_fastsim_crosscheck,
        kwargs={"seed": bench_seed, "scale": bench_scale},
        rounds=1, iterations=1,
    )
    emit("ablation_fastsim", table)
    by_benchmark = {}
    for name, mechanism, cycle_acc, fast_acc in table[2]:
        by_benchmark.setdefault(name, []).append((mechanism, cycle_acc, fast_acc))
    for name, entries in by_benchmark.items():
        cycle_order = [m for m, c, f in sorted(entries, key=lambda e: e[1])]
        fast_order = [m for m, c, f in sorted(entries, key=lambda e: e[2])]
        # Both models must agree on the winner and the loser.
        assert cycle_order[-1] == fast_order[-1], name
        assert cycle_order[0] == fast_order[0], name
