"""The simulation service, unit to end-to-end.

Three layers of coverage, mirroring docs/service.md:

* **Unit** — request normalisation and identity, token buckets and
  quotas on an injected clock, the metrics/span plumbing the service
  surfaces (``MetricsRegistry.flatten``, ``SpanRecorder.subscribe``,
  ``ResultCache.stats``).
* **End-to-end over a real socket** — a :class:`BackgroundServer` on an
  ephemeral port, driven with stdlib ``urllib``/``http.client``: the
  acceptance claims that an HTTP-submitted sweep ledgers bit-identically
  to a direct :class:`SweepExecutor` run, and that a thousand identical
  concurrent submits coalesce to exactly one simulation and one ledger
  entry.
* **Process-level** — ``repro-sim serve`` under real SIGTERM: drain
  announced on ``/healthz``, submits rejected 503, exit code 0.

Workloads stay tiny (scale 0.05, one benchmark) so the whole module
runs in seconds.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro.core.executor import ResultCache
from repro.errors import ServiceError
from repro.service import (
    BackgroundServer,
    ServiceServer,
    SimulationService,
    SweepRequest,
    TenantLimiter,
    TokenBucket,
    normalize_request,
)
from repro.telemetry.ledger import RunLedger, deterministic_view
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Span, SpanRecorder

REQUEST = {"sweep": "hit-rates", "names": ["li"], "scale": 0.05, "seed": 1}


# -- unit: request normalisation and identity ---------------------------


class TestNormalizeRequest:
    def test_defaults_fill_in(self):
        request = normalize_request({"sweep": "speedup"})
        assert request.sweep == "speedup"
        assert len(request.names) > 0
        assert request.scale > 0

    def test_unknown_sweep_rejected(self):
        with pytest.raises(ServiceError, match="unknown sweep"):
            normalize_request({"sweep": "table99"})

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ServiceError, match="unknown benchmark"):
            normalize_request({"sweep": "speedup", "names": ["quake3"]})

    def test_scale_range_enforced(self):
        with pytest.raises(ServiceError, match="out of range"):
            normalize_request({"sweep": "speedup", "scale": 64})
        with pytest.raises(ServiceError, match="out of range"):
            normalize_request({"sweep": "speedup", "scale": 0})

    def test_bad_sizes_and_mechanism_rejected(self):
        with pytest.raises(ServiceError, match="sizes"):
            normalize_request({"sweep": "stack-depth", "sizes": ["big"]})
        with pytest.raises(ServiceError, match="mechanism"):
            normalize_request({"sweep": "stack-depth", "mechanism": "magic"})

    def test_non_mapping_rejected(self):
        with pytest.raises(ServiceError, match="JSON object"):
            normalize_request(["sweep", "speedup"])


class TestRequestKey:
    def test_key_ignores_scheduling_irrelevant_fields(self):
        # table1 is parameter-free: names/seed/scale must not split it.
        service = SimulationService(cache=None)
        a = service.request_key(normalize_request(
            {"sweep": "table1", "names": ["li"], "seed": 7}))
        b = service.request_key(normalize_request(
            {"sweep": "table1", "names": ["go"], "seed": 9}))
        assert a == b

    def test_key_tracks_result_determining_fields(self):
        service = SimulationService(cache=None)
        base = normalize_request(dict(REQUEST))
        other = normalize_request(dict(REQUEST, seed=2))
        assert service.request_key(base) != service.request_key(other)
        assert service.request_key(base) == service.request_key(
            normalize_request(dict(REQUEST)))

    def test_key_is_scheduler_independent(self):
        # jobs/backend/cache live on the service, not in the key.
        request = normalize_request(dict(REQUEST))
        serial = SimulationService(cache=None, jobs=1)
        parallel = SimulationService(cache=None, jobs=8)
        assert serial.request_key(request) == parallel.request_key(request)


# -- unit: admission control --------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_reject_with_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=1.0, burst=2, clock=clock)
        assert bucket.try_take() == (True, 0.0)
        assert bucket.try_take() == (True, 0.0)
        allowed, retry_after = bucket.try_take()
        assert not allowed
        assert retry_after == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=2.0, burst=1, clock=clock)
        assert bucket.try_take()[0]
        assert not bucket.try_take()[0]
        clock.now += 0.5  # 2 tokens/s * 0.5s = exactly one token
        assert bucket.try_take()[0]

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=100.0, burst=2, clock=clock)
        clock.now += 60
        assert bucket.try_take()[0]
        assert bucket.try_take()[0]
        assert not bucket.try_take()[0]


class TestTenantLimiter:
    def test_default_open(self):
        limiter = TenantLimiter()
        for _ in range(1000):
            assert limiter.admit("anonymous")[0]

    def test_rate_limit_is_per_tenant(self):
        clock = FakeClock()
        limiter = TenantLimiter(rate_per_s=0.5, burst=1, clock=clock)
        assert limiter.admit("alpha")[0]
        allowed, reason, retry_after = limiter.admit("alpha")
        assert (allowed, reason) == (False, "rate")
        assert retry_after == pytest.approx(2.0)
        assert limiter.admit("beta")[0]  # fresh tenant, fresh bucket
        assert limiter.rejected["rate"] == 1

    def test_quota_counts_outstanding_jobs(self):
        limiter = TenantLimiter(quota=2)
        for _ in range(2):
            assert limiter.admit("alpha")[0]
            limiter.job_started("alpha")
        allowed, reason, _ = limiter.admit("alpha")
        assert (allowed, reason) == (False, "quota")
        limiter.job_finished("alpha")
        assert limiter.admit("alpha")[0]


# -- unit: the telemetry plumbing the service rides on ------------------


class TestMetricsFlatten:
    def test_flat_keys_cover_all_sections(self):
        registry = MetricsRegistry()
        registry.counter("jobs", state="done").increment(3)
        registry.gauge("depth").set(7)
        registry.rate("hits").record_many(1, 4)
        registry.histogram("wall").record(2, 5)
        flat = registry.flatten()
        assert flat["counters.jobs{state=done}"] == 3
        assert flat["gauges.depth"] == 7.0
        assert flat["rates.hits"] == pytest.approx(0.25)
        assert flat["histograms.wall"] == 5
        # deterministic order: fixed section sequence, sorted within
        sections = [key.split(".", 1)[0] for key in flat]
        assert sections == sorted(
            sections, key=["counters", "gauges", "rates",
                           "histograms"].index)


class TestSpanSubscribe:
    def test_subscriber_sees_spans_and_unsubscribes(self):
        recorder = SpanRecorder()
        seen = []
        token = recorder.subscribe(seen.append)
        recorder.record(Span("sweep/job", {"n": 1}))
        recorder.unsubscribe(token)
        recorder.record(Span("sweep/job", {"n": 2}))
        assert [span.attrs["n"] for span in seen] == [1]

    def test_raising_subscriber_is_dropped_not_fatal(self):
        recorder = SpanRecorder()

        def explode(span):
            raise RuntimeError("boom")

        recorder.subscribe(explode)
        recorder.record(Span("sweep/job", {}))  # must not raise
        recorder.record(Span("sweep/job", {}))
        assert len(recorder.records()) == 2


class TestCacheStats:
    def test_stats_and_ledger_path(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["root"] == str(tmp_path / "cache")
        assert cache.ledger_path.parent == tmp_path / "cache"

    def test_default_ledger_path_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert ResultCache.default_ledger_path().parent == tmp_path / "alt"


# -- end-to-end over a real socket --------------------------------------


def _server(tmp_path, name="cache", **kwargs):
    service = SimulationService(cache=ResultCache(tmp_path / name), jobs=1)
    return ServiceServer(service, port=0, **kwargs)


def _post(url, payload, headers=None):
    """POST JSON; returns ``(status, decoded body, response headers)``."""
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST",
        headers=headers or {})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.load(response), dict(
                response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error), dict(error.headers)


def _get(url):
    with urllib.request.urlopen(url) as response:
        return json.load(response)


def _wait_done(base, job, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        descriptor = _get(f"{base}/v1/sweeps/{job}")
        if descriptor["state"] in ("done", "failed"):
            return descriptor
        time.sleep(0.1)
    raise AssertionError(f"job {job} did not finish in {timeout_s}s")


class TestServiceEndToEnd:
    def test_http_run_ledgers_bit_identical_to_direct_run(self, tmp_path):
        # Two *cold* cache roots: the ledger's deterministic view
        # includes cache hit/miss counts, so both sides must start
        # equally cold for bit-identity to be a meaningful claim.
        with BackgroundServer(_server(tmp_path, "http-cache")) as bg:
            status, submitted, _ = _post(bg.url + "/v1/sweeps", REQUEST)
            assert status == 202
            descriptor = _wait_done(bg.url, submitted["job"])
            assert descriptor["state"] == "done"
            http_rows = descriptor["result"]["rows"]

        direct = SimulationService(
            cache=ResultCache(tmp_path / "direct-cache"), jobs=1)
        outcome = direct.run_sweep(normalize_request(REQUEST))
        assert outcome.rows == http_rows

        http_entries = RunLedger(
            ResultCache(tmp_path / "http-cache").ledger_path).entries()
        direct_entries = RunLedger(
            ResultCache(tmp_path / "direct-cache").ledger_path).entries()
        assert len(http_entries) == len(direct_entries) == 1
        assert deterministic_view(http_entries[0]) == deterministic_view(
            direct_entries[0])

    def test_thousand_identical_submits_one_simulation(self, tmp_path):
        # slow_s keeps the job in flight while the burst lands, so
        # coalescing is exercised against a *running* job, not a
        # finished one.
        with BackgroundServer(_server(tmp_path, slow_s=0.5)) as bg:
            url = bg.url + "/v1/sweeps"
            with ThreadPoolExecutor(max_workers=32) as pool:
                results = list(pool.map(
                    lambda _: _post(url, REQUEST), range(1000)))
            job_ids = {body["job"] for _status, body, _headers in results}
            assert len(job_ids) == 1
            assert all(status in (200, 202)
                       for status, _body, _headers in results)
            _wait_done(bg.url, job_ids.pop())

            metricz = _get(bg.url + "/metricz")
            queue = metricz["service"]["queue"]
            assert queue["requests"] == 1000
            assert queue["coalesced"] == 999
            assert queue["executed"] == 1
            ledger = RunLedger(
                ResultCache(tmp_path / "cache").ledger_path)
            assert len(ledger.entries()) == 1

    def test_submits_after_completion_reuse_result_and_engine_idles(
            self, tmp_path):
        with BackgroundServer(_server(tmp_path)) as bg:
            _status, first, _headers = _post(bg.url + "/v1/sweeps", REQUEST)
            _wait_done(bg.url, first["job"])
            simulations = _get(
                bg.url + "/metricz")["service"]["queue"]["simulations"]

            status, again, _headers = _post(bg.url + "/v1/sweeps", REQUEST)
            assert status == 200  # finished job: result inline
            assert again["job"] == first["job"]
            assert again["coalesced"] is True
            assert again["result"]["rows"]
            after = _get(bg.url + "/metricz")["service"]["queue"]
            assert after["simulations"] == simulations  # zero new work

    def test_rate_limited_submit_gets_429_with_retry_after(self, tmp_path):
        limiter = TenantLimiter(rate_per_s=0.01, burst=1)
        with BackgroundServer(_server(tmp_path, limiter=limiter)) as bg:
            status, _body, _headers = _post(
                bg.url + "/v1/sweeps", dict(REQUEST, seed=11))
            assert status == 202
            # A *different* request: identical ones coalesce and bypass
            # admission by design.
            status, body, headers = _post(
                bg.url + "/v1/sweeps", dict(REQUEST, seed=12))
            assert status == 429
            assert "rate" in body["error"]
            assert int(headers["Retry-After"]) >= 1
            # Another tenant has its own bucket.
            status, _body, _headers = _post(
                bg.url + "/v1/sweeps", dict(REQUEST, seed=12),
                headers={"X-Api-Key": "team-b"})
            assert status == 202

    def test_quota_limits_outstanding_jobs_per_tenant(self, tmp_path):
        limiter = TenantLimiter(quota=1)
        with BackgroundServer(
                _server(tmp_path, limiter=limiter, slow_s=2.0)) as bg:
            status, _body, _headers = _post(
                bg.url + "/v1/sweeps", dict(REQUEST, seed=21))
            assert status == 202
            status, body, _headers = _post(
                bg.url + "/v1/sweeps", dict(REQUEST, seed=22))
            assert status == 429
            assert "quota" in body["error"]

    def test_sse_stream_replays_and_terminates(self, tmp_path):
        with BackgroundServer(_server(tmp_path)) as bg:
            _status, submitted, _headers = _post(
                bg.url + "/v1/sweeps", REQUEST)
            job = submitted["job"]
            # Reading the stream to EOF proves it closes on the
            # terminal event rather than idling forever.
            with urllib.request.urlopen(
                    f"{bg.url}/v1/sweeps/{job}/events") as stream:
                text = stream.read().decode()
        kinds = [line.split(": ", 1)[1] for line in text.splitlines()
                 if line.startswith("event: ")]
        assert kinds[0] == "state"  # queued, replayed from the buffer
        assert "progress" in kinds  # span-fed progress events
        assert kinds[-1] == "done"
        payloads = [json.loads(line.split(": ", 1)[1])
                    for line in text.splitlines()
                    if line.startswith("data: ")]
        assert all(event["job"] == job for event in payloads)

    def test_runs_read_api_matches_service_core(self, tmp_path):
        with BackgroundServer(_server(tmp_path)) as bg:
            for seed in (31, 32):
                _status, submitted, _headers = _post(
                    bg.url + "/v1/sweeps", dict(REQUEST, seed=seed))
                _wait_done(bg.url, submitted["job"])
            runs = _get(bg.url + "/v1/runs")
            assert len(runs["rows"]) == 2
            run_id = runs["entries"][-1]["run_id"]
            shown = _get(f"{bg.url}/v1/runs/{run_id}")
            assert shown["entry"]["run_id"] == run_id
            assert shown["integrity_ok"] is True
            diff = _get(f"{bg.url}/v1/runs/compare?a=-2&b=-1")
            assert "seeds" in diff["fields"] or diff["metrics"]

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{bg.url}/v1/runs/ffffffffffff")
            assert excinfo.value.code == 404

    def test_unknown_route_404_wrong_method_405(self, tmp_path):
        with BackgroundServer(_server(tmp_path)) as bg:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(bg.url + "/v2/nope")
            assert excinfo.value.code == 404
            status, _body, _headers = _post(bg.url + "/healthz", {})
            assert status == 405

    def test_dashboard_served_at_root(self, tmp_path):
        with BackgroundServer(_server(tmp_path)) as bg:
            with urllib.request.urlopen(bg.url + "/") as response:
                assert "text/html" in response.headers["Content-Type"]
                page = response.read().decode()
            assert "/v1/events" in page  # it drives the SSE feed
            assert "/metricz" in page

    def test_drain_finishes_inflight_rejects_new_exits(self, tmp_path):
        bg = BackgroundServer(_server(tmp_path, slow_s=1.0)).start()
        try:
            _status, submitted, _headers = _post(
                bg.url + "/v1/sweeps", REQUEST)
            bg.drain()
            health = _get(bg.url + "/healthz")
            assert health["draining"] is True
            status, body, headers = _post(
                bg.url + "/v1/sweeps", dict(REQUEST, seed=41))
            assert status == 503
            assert "draining" in body["error"]
            assert int(headers["Retry-After"]) >= 1
            bg.join(timeout=120)
            # the in-flight job completed before exit: its ledger entry
            # exists
            ledger = RunLedger(ResultCache(tmp_path / "cache").ledger_path)
            assert len(ledger.entries()) == 1
        finally:
            bg.stop()


# -- process-level: repro-sim serve under SIGTERM -----------------------


@pytest.mark.skipif(sys.platform == "win32", reason="SIGTERM needs POSIX")
class TestServeProcess:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        env["REPRO_SERVICE_SLOW_S"] = "1.5"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--bind", "127.0.0.1:0", "--jobs", "1"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            text=True)
        try:
            line = process.stderr.readline()
            assert "service listening at http://" in line
            base = line.strip().rsplit(" ", 1)[-1]
            status, submitted, _headers = _post(
                base + "/v1/sweeps", REQUEST)
            assert status == 202
            process.send_signal(signal.SIGTERM)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if _get(base + "/healthz")["draining"]:
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("drain never announced on /healthz")
            status, _body, _headers = _post(
                base + "/v1/sweeps", dict(REQUEST, seed=51))
            assert status == 503
            assert process.wait(timeout=120) == 0
            ledger = RunLedger(ResultCache(tmp_path / "cache").ledger_path)
            entries = ledger.entries()
            assert len(entries) == 1  # the in-flight sweep finished
            assert submitted["state"] in ("queued", "running")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()


# -- the CLI rides the same service core --------------------------------


class TestCliServiceIntegration:
    def test_runs_show_json(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["hit-rates", "--names", "li", "--scale", "0.05"]) == 0
        out = tmp_path / "entry.json"
        assert main(["runs", "show", "-1", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["integrity_ok"] is True
        assert payload["entry"]["run_id"]

    def test_cli_table_matches_http_rows(self, tmp_path, monkeypatch,
                                         capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
        out = tmp_path / "table.json"
        assert main(["hit-rates", "--names", "li", "--scale", "0.05",
                     "--json", str(out)]) == 0
        cli_rows = json.loads(out.read_text())["rows"]

        with BackgroundServer(_server(tmp_path, "svc-cache")) as bg:
            _status, submitted, _headers = _post(
                bg.url + "/v1/sweeps", REQUEST)
            descriptor = _wait_done(bg.url, submitted["job"])
        assert descriptor["result"]["rows"] == cli_rows
