"""Chaos tests: the cluster's failure matrix exercised for real.

Unlike test_cluster.py these tests kill actual worker *processes*
(SIGKILL, no cleanup), restart coordinators, and let leases expire on
the wall clock — the robustness claims of docs/distributed.md §4
verified end to end. Timings are chosen so each test stays under a few
seconds: tiny workloads (scale 0.05), sub-second lease timeouts.
"""

import os
import pathlib
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.cluster import (
    ClusterClient,
    ClusterWorker,
    Coordinator,
    RetryPolicy,
    decode_result,
)
from repro.config.defaults import baseline_config
from repro.core import ExperimentJob, ResultCache, SweepExecutor
from repro.core import executor as executor_module
from repro.core.experiment import WorkloadSpec
from repro.telemetry import RunLedger
from repro.telemetry.ledger import deterministic_view

pytestmark = pytest.mark.skipif(sys.platform == "win32",
                                reason="SIGKILL chaos needs POSIX")

SPEC = WorkloadSpec("li", seed=1, scale=0.05)


def _jobs(sizes=(1, 2, 4, 8, 16, 32)):
    base = baseline_config()
    return [ExperimentJob(SPEC, base.with_ras_entries(size), "fast")
            for size in sizes]


def _spawn_worker(url, cache_dir, name, extra_env=None):
    """A real repro-sim worker process, killable for real."""
    env = dict(os.environ)
    src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env.update(extra_env or {})
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "cluster", "worker",
         "--coordinator", url, "--name", name],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _wait(predicate, timeout_s=20.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


class TestWorkerKilledMidJob:
    def test_jobs_requeued_and_rows_identical_to_serial(self, tmp_path):
        cache_dir = tmp_path / "shared-cache"
        cache = ResultCache(cache_dir)
        coordinator = Coordinator(bind="127.0.0.1:0", cache=cache,
                                  lease_timeout_s=0.8,
                                  poll_interval_s=0.02).start()
        # the doomed worker registers first and SIGKILLs itself inside
        # its first leased job: its lease must expire and be stolen
        doomed = _spawn_worker(coordinator.url, cache_dir, "doomed",
                               {"REPRO_CHAOS_KILL_MIDJOB": "1"})
        assert _wait(lambda: coordinator.table.counts["registrations"] >= 1)
        # the rescuer joins shortly after the sweep starts, once the
        # doomed worker has certainly leased (poll interval 0.02s)
        rescuer = ClusterWorker(coordinator.url, name="rescuer", cache=cache)
        rescue_thread = threading.Timer(
            0.4, lambda: threading.Thread(target=rescuer.run,
                                          daemon=True).start())
        rescue_thread.start()
        try:
            executor = SweepExecutor(
                jobs=1, cache=cache, backend="cluster",
                coordinator_url=coordinator.url,
                ledger=RunLedger(tmp_path / "cluster-ledger.jsonl"))
            results = executor.run(_jobs())
            assert doomed.wait(timeout=10) == -9  # SIGKILLed itself
            serial = SweepExecutor(
                jobs=1, cache=ResultCache(tmp_path / "serial-cache"),
                ledger=RunLedger(tmp_path / "serial-ledger.jsonl"))
            serial_results = serial.run(_jobs())
            assert [r.as_dict() for r in results] \
                == [r.as_dict() for r in serial_results]
            assert deterministic_view(executor.last_entry) \
                == deterministic_view(serial.last_entry)
            cluster = executor.last_entry["cluster"]
            assert cluster["counts"]["steals"] >= 1  # observably re-queued
            assert cluster["counts"]["completed"] == len(_jobs())
            assert cluster["unfinished"] == 0
        finally:
            rescue_thread.cancel()
            rescuer.stop()
            if doomed.poll() is None:
                doomed.kill()
            coordinator.stop(drain=True)


class TestCoordinatorRestart:
    def test_finished_work_rebuilt_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = Coordinator(bind="127.0.0.1:0", cache=cache,
                            poll_interval_s=0.02).start()
        worker = ClusterWorker(first.url, name="w", cache=cache)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            executor = SweepExecutor(jobs=1, cache=cache, backend="cluster",
                                     coordinator_url=first.url, ledger=None)
            before_results = executor.run(_jobs())
        finally:
            worker.stop()
            first.stop(drain=True)  # the "crash": all lease state is gone
            thread.join(timeout=5.0)
        second = Coordinator(bind="127.0.0.1:0", cache=cache,
                             poll_interval_s=0.02).start()
        try:
            client = ClusterClient(second.url)
            before = executor_module.simulation_calls()
            submitted = client.submit(_jobs())
            # every key resolves from the shared cache at submit time:
            # nothing queues, the batch is born done, no worker needed
            assert submitted["cache_resolved"] == len(_jobs())
            status = client.batch(str(submitted["batch_id"]))
            assert status["done"] and status["pending"] == 0
            rebuilt = [decode_result(payload)
                       for payload in status["results"]]
            assert [r.as_dict() for r in rebuilt] \
                == [r.as_dict() for r in before_results]
            assert executor_module.simulation_calls() == before
            assert second.table.counts.get("leases", 0) == 0
        finally:
            second.stop()


class TestSlowWorkerSteal:
    def test_job_stolen_and_late_result_discarded(self, tmp_path):
        """Protocol-level slow worker: leases, goes silent past the
        lease timeout (no heartbeat), then completes late."""
        cache = ResultCache(tmp_path / "cache")
        coordinator = Coordinator(bind="127.0.0.1:0", cache=cache,
                                  lease_timeout_s=0.2,
                                  poll_interval_s=0.02).start()
        try:
            client = ClusterClient(coordinator.url)
            slow = str(client.register("slow")["worker_id"])
            fast = str(client.register("fast")["worker_id"])
            client.submit(_jobs(sizes=(8,)))
            slow_grant = client.lease(slow)
            assert slow_grant["status"] == "job"
            time.sleep(0.3)  # the lease expires un-heartbeated
            fast_grant = client.lease(fast)
            assert fast_grant["status"] == "job"
            assert fast_grant["key"] == slow_grant["key"]  # stolen
            assert coordinator.table.counts["steals"] == 1
            result = executor_module.run_job(_jobs(sizes=(8,))[0])
            accepted = client.complete(fast, str(fast_grant["lease_id"]),
                                       str(fast_grant["key"]), result)
            assert accepted["accepted"]
            late = client.complete(slow, str(slow_grant["lease_id"]),
                                   str(slow_grant["key"]), result)
            assert not late["accepted"] and late["duplicate"]
            assert coordinator.table.counts["completed"] == 1
            assert coordinator.table.counts["duplicates"] == 1
        finally:
            coordinator.stop()


class TestWorkerHeartbeatKeepsSlowJobs:
    def test_heartbeating_worker_is_not_stolen_from(self, tmp_path):
        """The converse guarantee: a *live* worker that is merely slow
        (chaos sleep > lease timeout) keeps its lease via heartbeats
        and its result is accepted, not discarded."""
        from repro.cluster import ChaosHooks
        cache = ResultCache(tmp_path / "cache")
        # the sleep is several lease timeouts long, and the heartbeat
        # renews at a third of the timeout: generous margins so a busy
        # CI machine cannot turn a live worker into a stolen lease
        coordinator = Coordinator(bind="127.0.0.1:0", cache=cache,
                                  lease_timeout_s=1.5,
                                  poll_interval_s=0.02).start()
        worker = ClusterWorker(coordinator.url, name="slowpoke", cache=cache,
                               chaos=ChaosHooks(slow_s=3.5))
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            executor = SweepExecutor(jobs=1, cache=cache, backend="cluster",
                                     coordinator_url=coordinator.url,
                                     ledger=None)
            results = executor.run(_jobs(sizes=(8,)))
            assert results[0].instructions > 0
            assert coordinator.table.counts["steals"] == 0
            assert coordinator.table.counts["completed"] == 1
            assert worker.stats["lost_leases"] == 0
        finally:
            worker.stop()
            coordinator.stop(drain=True)
            thread.join(timeout=5.0)
