"""Exhaustive opcode-semantics coverage for the execution core."""

import pytest

from repro.emu import MachineState, execute
from repro.emu.machine_state import to_signed, to_unsigned
from repro.isa import Instruction, Opcode, REG_RA


def make_state(**regs):
    state = MachineState()
    for name, value in regs.items():
        state.regs[int(name[1:])] = to_unsigned(value)
    return state


def run_one(inst, pc=0, state=None):
    state = state or MachineState()
    outcome = execute(inst, pc, state)
    return outcome, state


class TestAluRegisterRegister:
    @pytest.mark.parametrize("opcode,a,b,expected", [
        (Opcode.ADD, 7, 5, 12),
        (Opcode.SUB, 7, 5, 2),
        (Opcode.AND, 0b1100, 0b1010, 0b1000),
        (Opcode.OR, 0b1100, 0b1010, 0b1110),
        (Opcode.XOR, 0b1100, 0b1010, 0b0110),
        (Opcode.SLL, 3, 4, 48),
        (Opcode.SRL, 48, 4, 3),
        (Opcode.MUL, 6, 7, 42),
    ])
    def test_semantics(self, opcode, a, b, expected):
        state = make_state(r1=a, r2=b)
        execute(Instruction(opcode, rd=3, rs=1, rt=2), 0, state)
        assert state.regs[3] == expected

    def test_shift_amount_masked_to_six_bits(self):
        state = make_state(r1=1, r2=65)   # shifts by 65 & 63 == 1
        execute(Instruction(Opcode.SLL, rd=3, rs=1, rt=2), 0, state)
        assert state.regs[3] == 2

    @pytest.mark.parametrize("a,b,expected", [
        (1, 2, 1), (2, 1, 0), (-1, 1, 1), (1, -1, 0), (-2, -1, 1),
    ])
    def test_slt_signed_comparison(self, a, b, expected):
        state = make_state(r1=a, r2=b)
        execute(Instruction(Opcode.SLT, rd=3, rs=1, rt=2), 0, state)
        assert state.regs[3] == expected


class TestAluImmediate:
    @pytest.mark.parametrize("opcode,a,imm,expected", [
        (Opcode.ADDI, 10, -3, 7),
        (Opcode.ANDI, 0b1111, 0b0101, 0b0101),
        (Opcode.XORI, 0b1111, 0b0101, 0b1010),
        (Opcode.SLLI, 3, 2, 12),
        (Opcode.SRLI, 12, 2, 3),
    ])
    def test_semantics(self, opcode, a, imm, expected):
        state = make_state(r1=a)
        execute(Instruction(opcode, rd=3, rs=1, imm=imm), 0, state)
        assert state.regs[3] == expected

    def test_li_large_value(self):
        state = MachineState()
        execute(Instruction(Opcode.LI, rd=3, imm=(1 << 70) + 5), 0, state)
        assert state.regs[3] == ((1 << 70) + 5) & ((1 << 64) - 1)


class TestBranches:
    @pytest.mark.parametrize("opcode,value,taken", [
        (Opcode.BEQZ, 0, True), (Opcode.BEQZ, 1, False),
        (Opcode.BNEZ, 0, False), (Opcode.BNEZ, 1, True),
        (Opcode.BLTZ, -1, True), (Opcode.BLTZ, 0, False),
        (Opcode.BLTZ, 1, False),
        (Opcode.BGEZ, -1, False), (Opcode.BGEZ, 0, True),
        (Opcode.BGEZ, 1, True),
    ])
    def test_conditions(self, opcode, value, taken):
        state = make_state(r1=value)
        outcome, _ = run_one(
            Instruction(opcode, rs=1, target=100), pc=0, state=state)
        assert outcome.taken is taken
        assert outcome.next_pc == (100 if taken else 4)


class TestJumpsAndCalls:
    def test_j(self):
        outcome, _ = run_one(Instruction(Opcode.J, target=96), pc=8)
        assert outcome.taken and outcome.next_pc == 96

    def test_jal_links(self):
        outcome, state = run_one(Instruction(Opcode.JAL, target=96), pc=8)
        assert outcome.next_pc == 96
        assert state.regs[REG_RA] == 12

    def test_jr(self):
        state = make_state(r5=200)
        outcome, _ = run_one(Instruction(Opcode.JR, rs=5), pc=8, state=state)
        assert outcome.next_pc == 200

    def test_jalr_links_and_jumps(self):
        state = make_state(r5=200)
        outcome, state = run_one(
            Instruction(Opcode.JALR, rs=5), pc=8, state=state)
        assert outcome.next_pc == 200
        assert state.regs[REG_RA] == 12

    def test_jalr_through_ra_itself(self):
        """JALR with rs=r31: the target must be read before the link
        register is overwritten."""
        state = make_state(r31=300)
        outcome, state = run_one(
            Instruction(Opcode.JALR, rs=REG_RA), pc=8, state=state)
        assert outcome.next_pc == 300
        assert state.regs[REG_RA] == 12

    def test_ret(self):
        state = make_state(r31=64)
        outcome, _ = run_one(Instruction(Opcode.RET), pc=8, state=state)
        assert outcome.next_pc == 64
        assert outcome.taken


class TestMemoryAndMisc:
    def test_load_offset_negative(self):
        state = make_state(r1=0x1000)
        state.write_mem(0x0FFC, 55)
        execute(Instruction(Opcode.LOAD, rd=2, rs=1, imm=-4), 0, state)
        assert state.regs[2] == 55

    def test_store_address_reported(self):
        state = make_state(r1=0x1000, r2=9)
        outcome = execute(
            Instruction(Opcode.STORE, rt=2, rs=1, imm=8), 0, state)
        assert outcome.mem_address == 0x1008
        assert state.read_mem(0x1008) == 9

    def test_nop(self):
        outcome, state = run_one(Instruction(Opcode.NOP), pc=20)
        assert outcome.next_pc == 24
        assert not outcome.taken

    def test_halt(self):
        outcome, _ = run_one(Instruction(Opcode.HALT), pc=20)
        assert outcome.is_halt

    def test_signed_helpers_roundtrip_extremes(self):
        for value in (0, 1, -1, 2 ** 63 - 1, -(2 ** 63)):
            assert to_signed(to_unsigned(value)) == value
