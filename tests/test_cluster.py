"""Tests for the distributed sweep backend (repro.cluster).

Transport-free units first (retry policy, wire format, lease table),
then in-process integration: a real coordinator over HTTP with thread
workers, proving cluster rows and ledger views bit-identical to serial
execution. Hard-failure chaos (SIGKILL, restarts) lives in
test_cluster_chaos.py.
"""

import concurrent.futures
import json
import threading

import pytest

from repro import telemetry
from repro.cluster import (
    ClusterClient,
    ClusterWorker,
    Coordinator,
    LeaseTable,
    RetryPolicy,
    decode_job,
    encode_job,
)
from repro.config.defaults import baseline_config
from repro.core import ExperimentJob, JobResult, ResultCache, SweepExecutor
from repro.core.experiment import WorkloadSpec, build_program
from repro.errors import ClusterError, ConfigError
from repro.telemetry import RunLedger
from repro.telemetry.ledger import deterministic_view

SPEC = WorkloadSpec("li", seed=1, scale=0.05)


def _jobs(sizes=(1, 8, 32)):
    base = baseline_config()
    return [ExperimentJob(SPEC, base.with_ras_entries(size), "fast")
            for size in sizes]


def _result(wall=0.25):
    return {"engine": "fast", "instructions": 10, "cycles": 20.0,
            "ipc": 0.5, "counters": {}, "rates": {}, "wall_time_s": wall}


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRetryPolicy:
    def test_deterministic_jitter(self):
        policy = RetryPolicy()
        assert policy.delay_s(2, "k") == policy.delay_s(2, "k")
        assert policy.delay_s(2, "k") != policy.delay_s(2, "other")
        assert policy.delay_s(2, "k") != policy.delay_s(3, "k")

    def test_exponential_and_capped(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=4.0, jitter=0.0)
        assert policy.schedule() == [1.0, 2.0, 4.0]
        assert policy.delay_s(10) == 4.0  # capped, not 512

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=1.0, jitter=0.25)
        for attempt in range(1, 6):
            delay = policy.delay_s(attempt, "any-key")
            assert 0.75 <= delay <= 1.25

    def test_budget_counts_executions(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)


class TestPutIfAbsent:
    KEY = "ab" + "0" * 62

    def _make(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = JobResult(engine="fast", instructions=1, cycles=2.0,
                           ipc=0.5, counters={}, rates={})
        return cache, result

    def test_first_writer_wins(self, tmp_path):
        cache, result = self._make(tmp_path)
        assert cache.put_if_absent(self.KEY, result) is True
        loser = JobResult(engine="fast", instructions=999, cycles=2.0,
                          ipc=0.5, counters={}, rates={})
        assert cache.put_if_absent(self.KEY, loser) is False
        assert cache.get(self.KEY).instructions == 1  # not overwritten

    def test_corrupt_entry_is_repaired(self, tmp_path):
        cache, result = self._make(tmp_path)
        assert cache.put_if_absent(self.KEY, result) is True
        path, = list(cache.root.rglob("*.json"))
        path.write_text("{ not json !!")
        assert cache.get(self.KEY) is None
        assert cache.put_if_absent(self.KEY, result) is True  # repair wins
        assert cache.get(self.KEY) == result

    def test_duplicate_completion_counts_put_once(self, tmp_path):
        cache, result = self._make(tmp_path)
        registry = telemetry.metrics()
        before = registry.counter("cache.put").value
        cache.put_if_absent(self.KEY, result)
        cache.put_if_absent(self.KEY, result)
        assert registry.counter("cache.put").value == before + 1


class TestWireFormat:
    def test_job_roundtrip_preserves_cache_key(self):
        job = _jobs(sizes=(8,))[0]
        clone = decode_job(json.loads(json.dumps(encode_job(job))))
        assert clone.cache_key() == job.cache_key()
        assert clone.config.fingerprint() == job.config.fingerprint()
        assert clone.engine == job.engine

    def test_config_json_roundtrip(self):
        config = baseline_config().with_ras_entries(12)
        from repro.config.machine import MachineConfig
        clone = MachineConfig.from_json_dict(config.to_json_dict())
        assert clone.fingerprint() == config.fingerprint()
        with pytest.raises(ConfigError):
            MachineConfig.from_json_dict({"core": "nope"})

    def test_raw_program_refused(self):
        job = ExperimentJob(build_program(SPEC), baseline_config(), "fast")
        with pytest.raises(ClusterError):
            encode_job(job)

    def test_version_mismatch_refused(self):
        payload = encode_job(_jobs(sizes=(8,))[0])
        payload["version"] = 99
        with pytest.raises(ClusterError):
            decode_job(payload)


class TestLeaseTable:
    def _table(self, clock, **kwargs):
        kwargs.setdefault("lease_timeout_s", 10.0)
        kwargs.setdefault("policy", RetryPolicy(max_attempts=3, jitter=0.0,
                                                base_delay_s=1.0))
        return LeaseTable(clock=clock, **kwargs)

    def test_lease_complete_batch_order(self):
        clock = FakeClock()
        table = self._table(clock)
        worker = table.register("w")
        batch_id, stats = table.submit(
            [{"n": 1}, {"n": 2}], ["k1", "k2"], {})
        assert stats == {"enqueued": 2, "coalesced": 0, "cache_resolved": 0}
        for expected in ("k1", "k2"):
            grant = table.lease(worker)
            assert grant["key"] == expected
            table.complete(worker, grant["lease_id"], expected,
                           _result(wall=0.5))
        status = table.batch_status(batch_id)
        assert status["done"] and status["pending"] == 0
        assert [r["wall_time_s"] for r in status["results"]] == [0.5, 0.5]
        workers = table.stats()["workers"]
        assert workers["w"]["jobs"] == 2
        assert workers["w"]["wall_time_s"] == pytest.approx(1.0)

    def test_duplicate_keys_coalesce_within_and_across_batches(self):
        clock = FakeClock()
        table = self._table(clock)
        batch_a, stats_a = table.submit(
            [{"n": 1}, {"n": 1}], ["k", "k"], {})
        batch_b, stats_b = table.submit([{"n": 1}], ["k"], {})
        assert stats_a["coalesced"] == 1 and stats_b["coalesced"] == 1
        worker = table.register("w")
        grant = table.lease(worker)
        assert table.lease(worker) is None  # exactly one execution
        table.complete(worker, grant["lease_id"], "k", _result())
        for batch_id in (batch_a, batch_b):
            status = table.batch_status(batch_id)
            assert status["done"]
            assert all(r is not None for r in status["results"])

    def test_cached_jobs_born_done(self):
        table = self._table(FakeClock())
        batch_id, stats = table.submit(
            [{"n": 1}], ["k"], {"k": _result()})
        assert stats["cache_resolved"] == 1
        assert table.batch_status(batch_id)["done"]
        assert table.queue_depth() == 0

    def test_expired_lease_is_stolen(self):
        clock = FakeClock()
        table = self._table(clock)
        dead, alive = table.register("dead"), table.register("alive")
        table.submit([{"n": 1}], ["k"], {})
        grant = table.lease(dead)
        assert table.lease(alive) is None  # leased, not expired yet
        clock.advance(11.0)
        stolen = table.lease(alive)
        assert stolen is not None and stolen["key"] == "k"
        assert stolen["lease_id"] != grant["lease_id"]
        assert table.counts["steals"] == 1

    def test_heartbeat_extends_lease(self):
        clock = FakeClock()
        table = self._table(clock)
        worker = table.register("w")
        table.submit([{"n": 1}], ["k"], {})
        grant = table.lease(worker)
        for _ in range(3):
            clock.advance(8.0)
            assert table.heartbeat(worker, [grant["lease_id"]]) == []
        assert table.stats()["active_leases"] == 1  # never expired

    def test_late_result_discarded_idempotently(self):
        clock = FakeClock()
        table = self._table(clock)
        slow, fast = table.register("slow"), table.register("fast")
        table.submit([{"n": 1}], ["k"], {})
        slow_grant = table.lease(slow)
        clock.advance(11.0)  # slow worker exceeds the lease timeout
        fast_grant = table.lease(fast)
        first = table.complete(fast, fast_grant["lease_id"], "k",
                               _result(wall=1.0))
        late = table.complete(slow, slow_grant["lease_id"], "k",
                              _result(wall=9.0))
        assert first["accepted"] and not late["accepted"]
        assert late["duplicate"] and table.counts["duplicates"] == 1
        assert table.counts["completed"] == 1
        # the winner's attribution, not the late worker's
        assert table.stats()["workers"]["fast"]["jobs"] == 1
        assert table.stats()["workers"]["slow"]["jobs"] == 0

    def test_failure_backoff_then_terminal(self):
        clock = FakeClock()
        table = self._table(clock)
        worker = table.register("w")
        batch_id, _ = table.submit([{"n": 1}], ["k"], {})
        grant = table.lease(worker)
        verdict = table.fail(worker, grant["lease_id"], "k", "flaky")
        assert verdict["requeued"] and verdict["attempts"] == 1
        assert table.lease(worker) is None  # inside the backoff window
        clock.advance(1.5)  # base_delay 1.0s, jitter 0
        grant = table.lease(worker)
        assert grant["attempt"] == 2
        table.fail(worker, grant["lease_id"], "k", "flaky")
        clock.advance(2.5)
        grant = table.lease(worker)
        assert grant["attempt"] == 3
        verdict = table.fail(worker, grant["lease_id"], "k", "flaky")
        assert verdict["terminal"]  # max_attempts=3 exhausted
        status = table.batch_status(batch_id)
        assert status["done"] and status["failed"] == 1
        assert status["results"] == [None]
        assert "flaky" in status["errors"]["k"]

    def test_steals_count_against_retry_budget(self):
        clock = FakeClock()
        table = self._table(clock)
        worker = table.register("w")
        batch_id, _ = table.submit([{"n": 1}], ["k"], {})
        for _ in range(3):  # poison job: every execution dies silently
            assert table.lease(worker)["key"] == "k"
            clock.advance(11.0)
        status = table.batch_status(batch_id)
        assert status["done"] and status["failed"] == 1  # no infinite loop

    def test_unknown_worker_rejected(self):
        table = self._table(FakeClock())
        with pytest.raises(ClusterError):
            table.lease("never-registered")


@pytest.fixture()
def fleet(tmp_path):
    """A live coordinator + one thread worker over real HTTP."""
    cache = ResultCache(tmp_path / "shared-cache")
    coordinator = Coordinator(bind="127.0.0.1:0", cache=cache,
                              lease_timeout_s=10.0,
                              poll_interval_s=0.02).start()
    worker = ClusterWorker(coordinator.url, name="t1", cache=cache)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    yield coordinator, cache
    worker.stop()
    coordinator.stop(drain=True)
    thread.join(timeout=5.0)


class TestClusterExecutor:
    def _serial_entry(self, tmp_path):
        executor = SweepExecutor(
            jobs=1, cache=ResultCache(tmp_path / "serial-cache"),
            ledger=RunLedger(tmp_path / "serial-ledger.jsonl"))
        return executor.run(_jobs()), executor.last_entry

    def test_rows_and_ledger_match_serial(self, fleet, tmp_path):
        coordinator, cache = fleet
        executor = SweepExecutor(
            jobs=1, cache=cache, backend="cluster",
            coordinator_url=coordinator.url,
            ledger=RunLedger(tmp_path / "cluster-ledger.jsonl"))
        results = executor.run(_jobs())
        serial_results, serial_entry = self._serial_entry(tmp_path)
        assert [r.as_dict() for r in results] \
            == [r.as_dict() for r in serial_results]
        assert deterministic_view(executor.last_entry) \
            == deterministic_view(serial_entry)
        cluster = executor.last_entry["cluster"]
        assert cluster["counts"]["completed"] == len(_jobs())
        assert cluster["workers"]["t1"]["jobs"] == len(_jobs())
        assert cluster["unfinished"] == 0

    def test_remote_results_fill_shared_cache(self, fleet, tmp_path):
        coordinator, cache = fleet
        executor = SweepExecutor(jobs=1, cache=cache, backend="cluster",
                                 coordinator_url=coordinator.url,
                                 ledger=None)
        executor.run(_jobs())
        assert executor.cache_misses == len(_jobs())
        # second sweep: resolved from the cache at submit time, so the
        # coordinator enqueues nothing and no simulator runs anywhere
        from repro.core import executor as executor_module
        before = executor_module.simulation_calls()
        rerun = SweepExecutor(jobs=1, cache=cache, backend="cluster",
                              coordinator_url=coordinator.url, ledger=None)
        rerun.run(_jobs())
        assert rerun.cache_hits == len(_jobs())
        assert executor_module.simulation_calls() == before
        assert coordinator.table.queue_depth() == 0

    def test_uncacheable_jobs_run_locally(self, fleet, tmp_path):
        coordinator, cache = fleet
        executor = SweepExecutor(jobs=1, cache=cache, backend="cluster",
                                 coordinator_url=coordinator.url,
                                 ledger=None)
        raw = ExperimentJob(build_program(SPEC), baseline_config(), "fast")
        mixed = _jobs() + [raw]
        results = executor.run(mixed)
        assert len(results) == len(mixed)
        assert all(r.instructions > 0 for r in results)
        cluster = executor.last_entry["cluster"]
        assert cluster["local_jobs"] == 1  # the raw job never shipped
        assert coordinator.table.counts["submitted"] == len(_jobs())

    def test_no_workers_degrades_to_local(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_GRACE_S", "0.2")
        coordinator = Coordinator(bind="127.0.0.1:0", cache=None).start()
        try:
            executor = SweepExecutor(
                jobs=1, cache=ResultCache(tmp_path / "cache"),
                backend="cluster", coordinator_url=coordinator.url,
                ledger=None)
            results = executor.run(_jobs())
            assert [r.instructions > 0 for r in results]
            assert executor.last_cluster is None  # the sweep ran locally
        finally:
            coordinator.stop()

    def test_unreachable_coordinator_degrades_to_local(self, tmp_path):
        executor = SweepExecutor(
            jobs=1, cache=ResultCache(tmp_path / "cache"), backend="cluster",
            coordinator_url="http://127.0.0.1:9", ledger=None)  # discard port
        results = executor.run(_jobs(sizes=(8,)))
        assert results[0].instructions > 0

    def test_transient_worker_failures_are_retried(self, tmp_path):
        from repro.cluster import ChaosHooks
        cache = ResultCache(tmp_path / "cache")
        coordinator = Coordinator(
            bind="127.0.0.1:0", cache=cache, poll_interval_s=0.02,
            policy=RetryPolicy(max_attempts=4, base_delay_s=0.01,
                               max_delay_s=0.05)).start()
        worker = ClusterWorker(coordinator.url, name="flaky", cache=cache,
                               chaos=ChaosHooks(fail_first=2))
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            executor = SweepExecutor(jobs=1, cache=cache, backend="cluster",
                                     coordinator_url=coordinator.url,
                                     ledger=None)
            results = executor.run(_jobs())
            assert all(r.instructions > 0 for r in results)
            assert coordinator.table.counts["retries"] == 2
            assert coordinator.table.counts["completed"] == len(_jobs())
        finally:
            worker.stop()
            coordinator.stop(drain=True)
            thread.join(timeout=5.0)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigError):
            SweepExecutor(backend="warp-drive")


class _FlakyPool:
    """Stand-in process pool: scripted per-instance breakage."""

    def __init__(self, plan, log):
        self.plan = plan  # instance index -> indices that break
        self.log = log
        self.instance = -1

    def __call__(self, max_workers=None, **kwargs):
        self.instance += 1
        self.log.append([])
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, job, *args):
        index = len(self.log[-1])
        self.log[-1].append(job)
        future = concurrent.futures.Future()
        if index in self.plan.get(self.instance, ()):
            future.set_exception(
                concurrent.futures.process.BrokenProcessPool("chaos"))
        else:
            future.set_result(fn(job, *args))
        return future


class TestBrokenPoolRetry:
    """Satellite: BrokenProcessPool retries the failed jobs only."""

    def _executor(self, plan, log):
        executor = SweepExecutor(
            jobs=2, cache=None, ledger=None,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.001,
                                     max_delay_s=0.002))
        executor._pool_factory = _FlakyPool(plan, log)
        return executor

    def test_only_failed_jobs_retried(self):
        log = []
        # first pool breaks the futures of jobs 1 and 2; second is clean
        executor = self._executor({0: (1, 2)}, log)
        before = telemetry.metrics().counter("executor.retries").value
        results = executor.run(_jobs())
        assert all(r.instructions > 0 for r in results)
        assert len(log) == 2
        assert len(log[0]) == 3 and len(log[1]) == 2  # failed subset only
        assert log[1] == log[0][1:]  # and exactly the broken ones, in order
        assert telemetry.metrics().counter("executor.retries").value \
            == before + 2

    def test_rows_identical_to_clean_run(self):
        broken = self._executor({0: (0, 1, 2), 1: (0,)}, [])
        clean = SweepExecutor(jobs=1, cache=None, ledger=None)
        assert [r.as_dict() for r in broken.run(_jobs())] \
            == [r.as_dict() for r in clean.run(_jobs())]

    def test_exhausted_budget_finishes_serially(self):
        log = []
        # every pool instance breaks everything: the retry budget runs
        # out and the stragglers complete in-process
        plan = {i: (0, 1, 2) for i in range(10)}
        executor = self._executor(plan, log)
        results = executor.run(_jobs())
        assert all(r.instructions > 0 for r in results)
        assert len(log) == executor.retry_policy.max_attempts


class TestClusterCli:
    def test_status_against_live_coordinator(self, fleet, capsys):
        coordinator, _ = fleet
        from repro.cli import main as cli_main
        assert cli_main(["cluster", "status",
                         "--coordinator", coordinator.url]) == 0
        out = capsys.readouterr().out
        assert "workers alive" in out

    def test_submit_through_external_coordinator(self, fleet, tmp_path,
                                                 monkeypatch, capsys):
        coordinator, _ = fleet
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
        from repro.cli import main as cli_main
        out = tmp_path / "submit.json"
        assert cli_main([
            "cluster", "submit", "--coordinator", coordinator.url,
            "--names", "li", "--scale", "0.05", "--sizes", "1", "8",
            "--json", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        assert payload["rows"][0][0] == "li"
        assert payload["cache"]["misses"] == 2

    def test_backend_flag_falls_back_without_fleet(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_CLUSTER_GRACE_S", "0.2")
        from repro.cli import main as cli_main
        assert cli_main(["stack-depth", "--names", "li", "--scale", "0.05",
                         "--backend", "cluster"]) == 0
