"""Unit tests for the pipeline timeline recorder/renderer."""

import pytest

from repro.pipeline import SinglePathCPU, TimelineRecorder, render_timeline
from repro.workloads.kernels import fibonacci_kernel, loop_sum_kernel


@pytest.fixture(scope="module")
def fib_records():
    recorder = TimelineRecorder(limit=40)
    cpu = SinglePathCPU(fibonacci_kernel(6), commit_hook=recorder)
    cpu.run()
    return recorder.records


class TestRecorder:
    def test_limit_respected(self, fib_records):
        assert len(fib_records) == 40

    def test_stage_ordering(self, fib_records):
        for record in fib_records:
            assert record.fetch >= 0
            assert record.fetch < record.dispatch
            assert record.dispatch < record.issue
            assert record.issue < record.complete
            assert record.complete <= record.commit

    def test_commit_order_is_program_order(self, fib_records):
        commits = [record.commit for record in fib_records]
        assert commits == sorted(commits)

    def test_unlimited_recorder(self):
        recorder = TimelineRecorder()
        cpu = SinglePathCPU(loop_sum_kernel(25), commit_hook=recorder)
        result = cpu.run()
        assert len(recorder.records) == result.instructions


class TestRenderer:
    def test_renders_stage_letters(self, fib_records):
        text = render_timeline(fib_records, count=8)
        lines = text.splitlines()
        assert len(lines) == 8
        for line in lines:
            for letter in "FDIC":
                assert letter in line

    def test_empty_records(self):
        assert "no timeline" in render_timeline([])

    def test_window_selection(self, fib_records):
        text = render_timeline(fib_records, start=5, count=3)
        assert len(text.splitlines()) == 3

    def test_width_capped(self, fib_records):
        text = render_timeline(fib_records, count=30, max_width=40)
        for line in text.splitlines():
            # "pc=XXXXXX opcode " prefix is 17 chars
            assert len(line) <= 17 + 40
