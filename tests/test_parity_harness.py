"""Tests for the differential-parity harness itself.

The harness guards the fast engines' bit-identical-counters contract,
so these tests guard the guard: beyond checking that clean runs pass,
they inject corrupted and missing counters and assert the harness
fails loudly — a parity checker that can silently pass is worse than
none.
"""

import pytest

from repro.cli import main as cli_main
from repro.config.defaults import baseline_config
from repro.config.options import RepairMechanism, StackOrganization
from repro.core.experiment import multipath_machine
from repro.fastsim import cycle as cycle_module
from repro.fastsim import multipath as multipath_module
from repro.fastsim.parity import (
    ParityError,
    check_cycle_parity,
    check_multipath_parity,
    compare_flat,
    flatten_group,
    parity_sweep,
)
from repro.stats.counters import StatGroup
from repro.workloads.generator import build_workload


def _program():
    return build_workload("li", seed=1, scale=0.01)


class TestFlatten:
    def test_counters_and_rates(self):
        group = StatGroup("g")
        group.counter("hits").increment(7)
        rate = group.rate("accuracy")
        rate.record_many(3, 4)
        flat = flatten_group(group)
        assert flat == {"hits": 7, "accuracy": (3, 4)}

    def test_rates_compare_as_integer_pairs_not_floats(self):
        # 1/2 and 2/4 have the same float value but are NOT parity.
        a, b = StatGroup("a"), StatGroup("b")
        a.rate("r").record_many(1, 2)
        b.rate("r").record_many(2, 4)
        assert not compare_flat(flatten_group(a), flatten_group(b)).matches


class TestCompare:
    def test_identical_dicts_match(self):
        report = compare_flat({"a": 1, "r": (2, 3)}, {"a": 1, "r": (2, 3)})
        assert report.matches
        report.ensure()  # must not raise

    def test_value_mismatch_reported(self):
        report = compare_flat({"a": 1}, {"a": 2}, label="cell")
        assert not report.matches
        assert report.mismatches[0].name == "a"
        assert report.mismatches[0].reference == 1
        assert report.mismatches[0].fast == 2

    def test_missing_key_is_a_mismatch_on_either_side(self):
        assert not compare_flat({"a": 1, "b": 2}, {"a": 1}).matches
        assert not compare_flat({"a": 1}, {"a": 1, "b": 2}).matches

    def test_ensure_raises_with_counter_names(self):
        report = compare_flat({"cycles": 10, "squashed": 3},
                              {"cycles": 11, "squashed": 3},
                              label="cycle/li/none/ras8")
        with pytest.raises(ParityError) as excinfo:
            report.ensure()
        message = str(excinfo.value)
        assert "cycle/li/none/ras8" in message
        assert "cycles" in message
        assert "reference=10" in message and "fast=11" in message


class TestRealCells:
    def test_cycle_cell_clean(self):
        check_cycle_parity(_program(), baseline_config()).ensure()

    def test_multipath_cell_clean(self):
        config = multipath_machine(2, StackOrganization.PER_PATH)
        check_multipath_parity(_program(), config).ensure()

    def test_sweep_covers_requested_matrix(self):
        reports = parity_sweep(
            ["li"], scale=0.01,
            mechanisms=[RepairMechanism.NONE, RepairMechanism.FULL_STACK],
            ras_entries=(8,), paths=(2,),
            organizations=[StackOrganization.PER_PATH])
        labels = [r.label for r in reports]
        assert labels == [
            "cycle/li/none/ras8",
            "cycle/li/full-stack/ras8",
            "multipath/li/p2/per-path",
        ]
        for report in reports:
            report.ensure()

    def test_backends_agree(self):
        check_cycle_parity(_program(), backend="python").ensure()
        if cycle_module._np is None:
            pytest.skip("numpy unavailable; stdlib fallback already covered")
        check_cycle_parity(_program(), backend="numpy").ensure()


class TestCorruptionInjection:
    """A tampered fast engine must be detected, never silently passed."""

    def test_corrupted_cycle_counter_detected(self, monkeypatch):
        real = cycle_module.run_cycle_fast

        def tampered(program, config=None, max_instructions=None,
                     backend=None):
            result, cpu = real(program, config,
                               max_instructions=max_instructions,
                               backend=backend)
            result.group["ras_pushes"].value += 1
            return result, cpu

        monkeypatch.setattr(cycle_module, "run_cycle_fast", tampered)
        report = check_cycle_parity(_program())
        assert not report.matches
        assert [m.name for m in report.mismatches] == ["ras_pushes"]
        with pytest.raises(ParityError):
            report.ensure()

    def test_corrupted_multipath_counter_detected(self, monkeypatch):
        real = multipath_module.run_multipath_fast

        def tampered(program, config, max_instructions=None):
            result, cpu = real(program, config,
                               max_instructions=max_instructions)
            result.group["forks"].value += 1
            return result, cpu

        monkeypatch.setattr(multipath_module, "run_multipath_fast", tampered)
        config = multipath_machine(2, StackOrganization.PER_PATH)
        report = check_multipath_parity(_program(), config)
        assert not report.matches
        assert [m.name for m in report.mismatches] == ["forks"]

    def test_dropped_counter_detected(self, monkeypatch):
        real = cycle_module.run_cycle_fast

        def lossy(program, config=None, max_instructions=None, backend=None):
            result, cpu = real(program, config,
                               max_instructions=max_instructions,
                               backend=backend)
            del result.group._stats["squashed"]
            return result, cpu

        monkeypatch.setattr(cycle_module, "run_cycle_fast", lossy)
        report = check_cycle_parity(_program())
        assert [m.name for m in report.mismatches] == ["squashed"]
        assert report.mismatches[0].fast == "<absent>"


class TestCli:
    def test_parity_command_clean(self, capsys):
        assert cli_main(["parity", "--names", "li", "--scale", "0.01",
                         "--ras-entries", "8", "--no-multipath"]) == 0
        out = capsys.readouterr().out
        assert "cycle/li/self-checkpoint/ras8" in out
        assert "DIVERGING" not in out

    def test_parity_command_fails_on_divergence(self, monkeypatch, capsys):
        real = cycle_module.run_cycle_fast

        def tampered(program, config=None, max_instructions=None,
                     backend=None):
            result, cpu = real(program, config,
                               max_instructions=max_instructions,
                               backend=backend)
            result.group["cycles"].value += 1
            return result, cpu

        monkeypatch.setattr(cycle_module, "run_cycle_fast", tampered)
        assert cli_main(["parity", "--names", "li", "--scale", "0.01",
                         "--ras-entries", "8", "--no-multipath"]) == 1
        captured = capsys.readouterr()
        assert "DIVERGING" in captured.out
        assert "cycles" in captured.err
