"""Unit tests for the SMT front-end model."""

import pytest

from repro.config import baseline_config
from repro.emu import Emulator
from repro.errors import ConfigError, EmulationError
from repro.smt import SmtFrontEndSim
from repro.workloads import build_workload
from repro.workloads.kernels import fibonacci_kernel, loop_sum_kernel


def predictor():
    return baseline_config().predictor


class TestBasics:
    def test_single_thread_matches_emulator_count(self):
        program = fibonacci_kernel(9)
        golden = Emulator(program).run()
        result = SmtFrontEndSim([program], predictor()).run()
        assert result.instructions == golden.instructions
        assert result.threads[0].returns == golden.returns

    def test_threads_functionally_isolated(self):
        """Two threads of the same program must both produce the full
        instruction count — no architectural interference."""
        program = fibonacci_kernel(9)
        golden = Emulator(program).run()
        result = SmtFrontEndSim([program] * 2, predictor()).run()
        for thread in result.threads:
            assert thread.instructions == golden.instructions

    def test_different_programs_per_thread(self):
        a = loop_sum_kernel(50)
        b = fibonacci_kernel(7)
        result = SmtFrontEndSim([a, b], predictor()).run()
        assert result.threads[0].instructions == Emulator(a).run().instructions
        assert result.threads[1].instructions == Emulator(b).run().instructions

    def test_validation(self):
        with pytest.raises(ConfigError):
            SmtFrontEndSim([], predictor())
        with pytest.raises(ConfigError):
            SmtFrontEndSim([loop_sum_kernel(5)], predictor(),
                           interleave_quantum=0)

    def test_watchdog(self):
        from repro.isa import ProgramBuilder
        b = ProgramBuilder()
        b.label("main")
        b.j("main")
        sim = SmtFrontEndSim([b.build(entry="main")], predictor(),
                             max_instructions_per_thread=200)
        with pytest.raises(EmulationError):
            sim.run()

    def test_no_shadow_slot_leak(self):
        program = build_workload("go", seed=1, scale=0.05)
        sim = SmtFrontEndSim([program] * 2, predictor(),
                             per_thread_stacks=False)
        sim.run()
        assert sim.frontend.shadow_pool.in_use == 0


class TestHilySeznecClaim:
    """Per-thread stacks are a necessity (the paper's related work)."""

    @pytest.fixture(scope="class")
    def programs(self):
        return [build_workload("li", seed=seed, scale=0.1)
                for seed in (1, 2)]

    def test_per_thread_stacks_stay_accurate(self, programs):
        result = SmtFrontEndSim(
            programs, predictor(), per_thread_stacks=True).run()
        assert result.return_accuracy > 0.95

    def test_shared_stack_collapses(self, programs):
        result = SmtFrontEndSim(
            programs, predictor(), per_thread_stacks=False).run()
        assert result.return_accuracy < 0.75

    def test_every_thread_suffers_under_sharing(self, programs):
        result = SmtFrontEndSim(
            programs, predictor(), per_thread_stacks=False).run()
        for thread in result.threads:
            assert thread.return_accuracy < 0.85

    def test_contention_grows_with_thread_count(self):
        accuracies = {}
        for count in (2, 4):
            programs = [build_workload("li", seed=seed, scale=0.05)
                        for seed in range(1, count + 1)]
            result = SmtFrontEndSim(
                programs, predictor(), per_thread_stacks=False).run()
            accuracies[count] = result.return_accuracy
        assert accuracies[4] < accuracies[2]

    def test_homogeneous_lockstep_masks_contention(self):
        """Identical threads in phase push identical return addresses,
        partially hiding the contention — worth knowing when designing
        SMT experiments."""
        program = build_workload("li", seed=1, scale=0.1)
        homogeneous = SmtFrontEndSim(
            [program] * 2, predictor(), per_thread_stacks=False).run()
        heterogeneous = SmtFrontEndSim(
            [program, build_workload("li", seed=2, scale=0.1)],
            predictor(), per_thread_stacks=False).run()
        assert homogeneous.return_accuracy > heterogeneous.return_accuracy
