"""Regenerate ``sample_champsim.trace.xz`` (run from the repo root).

The sample is a tiny, fully deterministic ChampSim-format trace — a
few hundred 64-byte ``input_instr`` records, xz-compressed — so the
importer is exercised by tier-1 tests without network access. It
models a nested call tree: every function runs a few plain
instructions, a conditional branch, zero or more calls to the next
depth, and a final return. The instruction "size" is a constant 4
bytes so a return's target is always its call's ip + 4, which makes
the expected RAS behaviour exact: with a stack deeper than the maximum
call depth, replay accuracy is 100%; a 2-entry stack overflows.

Usage::

    PYTHONPATH=src python tests/data/make_sample_champsim.py
"""

from __future__ import annotations

import lzma
import pathlib
import struct
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.corpus.champsim import (  # noqa: E402
    RECORD,
    REG_FLAGS,
    REG_INSTRUCTION_POINTER,
    REG_STACK_POINTER,
)

OUT = pathlib.Path(__file__).parent / "sample_champsim.trace.xz"

#: Each call depth gets its own code region so ips never collide.
BASE = 0x0000_4000_0040_0000
REGION = 0x1000
MAX_DEPTH = 9


def _pack(ip: int, is_branch: int, taken: int, dests, sources) -> bytes:
    dests = tuple(dests) + (0,) * (2 - len(dests))
    sources = tuple(sources) + (0,) * (4 - len(sources))
    return RECORD.pack(ip, is_branch, taken, *dests, *sources,
                       0, 0, 0, 0, 0, 0)


class Synth:
    def __init__(self) -> None:
        self.records = []

    def plain(self, ip: int) -> None:
        self.records.append(_pack(ip, 0, 0, (1,), (2, 3)))

    def cond(self, ip: int, taken: bool) -> None:
        self.records.append(_pack(
            ip, 1, int(taken), (REG_INSTRUCTION_POINTER,),
            (REG_INSTRUCTION_POINTER, REG_FLAGS)))

    def call(self, ip: int) -> None:
        self.records.append(_pack(
            ip, 1, 1, (REG_INSTRUCTION_POINTER, REG_STACK_POINTER),
            (REG_INSTRUCTION_POINTER, REG_STACK_POINTER)))

    def ret(self, ip: int) -> None:
        self.records.append(_pack(
            ip, 1, 1, (REG_INSTRUCTION_POINTER, REG_STACK_POINTER),
            (REG_STACK_POINTER,)))

    def func(self, depth: int) -> None:
        """Emit one invocation of the depth-``depth`` function."""
        ip = BASE + depth * REGION
        self.plain(ip)
        ip += 4
        # Alternate taken/not-taken so both conditional shapes appear.
        taken = depth % 2 == 0
        self.cond(ip, taken)
        ip += 12 if taken else 4
        self.plain(ip)
        ip += 4
        # Deeper levels fan out less so the record count stays small.
        calls = 2 if depth < 3 else (1 if depth < MAX_DEPTH else 0)
        for _ in range(calls):
            self.call(ip)
            self.func(depth + 1)
            ip += 4  # the callee's return lands at call ip + 4
            self.plain(ip)
            ip += 4
        self.ret(ip)

    def main(self) -> None:
        """Top-level driver: several rounds of calls into depth 1."""
        ip = BASE
        for _ in range(3):
            self.plain(ip)
            ip += 4
            self.call(ip)
            self.func(1)
            ip += 4
            self.plain(ip)
            ip += 4
        # A trailing non-branch record gives the last return a target
        # and leaves no pending branch at end-of-trace.
        self.plain(ip)


def build() -> bytes:
    synth = Synth()
    synth.main()
    return b"".join(synth.records)


def main() -> None:
    payload = build()
    assert len(payload) % RECORD.size == 0
    count = len(payload) // RECORD.size
    OUT.write_bytes(lzma.compress(payload, preset=6))
    print(f"wrote {OUT.name}: {count} records, "
          f"{OUT.stat().st_size} bytes compressed")


if __name__ == "__main__":
    main()
