"""Unit tests for the cache model and hierarchy."""

import pytest

from repro.caches import Cache, MemoryHierarchy
from repro.config import CacheConfig, MemoryHierarchyConfig


def tiny_cache(size=256, assoc=2, line=64, latency=1, name="t"):
    return Cache(CacheConfig(name, size, assoc, line, latency))


class TestCache:
    def test_cold_miss_then_hit(self):
        c = tiny_cache()
        assert not c.access(0)
        assert c.access(0)

    def test_same_line_hits(self):
        c = tiny_cache(line=64)
        c.access(0)
        assert c.access(63)
        assert not c.access(64)

    def test_lru_within_set(self):
        # 256B, 2-way, 64B lines -> 2 sets; lines 0,2,4 map to set 0.
        c = tiny_cache(size=256, assoc=2, line=64)
        c.access(0)        # line 0
        c.access(128)      # line 2, same set
        c.access(0)        # refresh line 0
        c.access(256)      # line 4 evicts line 2
        assert c.probe(0)
        assert not c.probe(128)
        assert c.probe(256)

    def test_sets_partition_addresses(self):
        c = tiny_cache(size=256, assoc=2, line=64)
        c.access(0)      # set 0
        c.access(64)     # set 1
        assert c.probe(0) and c.probe(64)

    def test_miss_rate(self):
        c = tiny_cache()
        c.access(0)
        c.access(0)
        assert c.miss_rate == pytest.approx(0.5)

    def test_same_line_helper(self):
        c = tiny_cache(line=64)
        assert c.same_line(0, 63)
        assert not c.same_line(0, 64)


class TestHierarchy:
    def _hierarchy(self):
        return MemoryHierarchy(MemoryHierarchyConfig(
            l1i=CacheConfig("l1i", 256, 2, 64, 1),
            l1d=CacheConfig("l1d", 256, 2, 64, 3),
            l2=CacheConfig("l2", 1024, 2, 64, 10),
            memory_latency=50,
        ))

    def test_instruction_fetch_latencies(self):
        h = self._hierarchy()
        # cold: L1 miss + L2 miss -> 1 + 10 + 50
        assert h.fetch_instruction(0) == 61
        # warm L1
        assert h.fetch_instruction(0) == 1

    def test_l2_hit_path(self):
        h = self._hierarchy()
        h.fetch_instruction(0)
        # Evict line 0 from tiny L1I (set 0 holds lines 0,2,4,...):
        h.fetch_instruction(128)
        h.fetch_instruction(256)
        # line 0 gone from L1, still in L2 -> 1 + 10
        assert h.fetch_instruction(0) == 11

    def test_data_and_instruction_caches_are_split(self):
        h = self._hierarchy()
        h.fetch_instruction(0)
        # data access to the same address still misses L1D, hits L2.
        assert h.access_data(0) == 3 + 10

    def test_store_allocates(self):
        h = self._hierarchy()
        h.access_data(0, is_store=True)
        assert h.access_data(0) == 3

    def test_wrong_path_pollution_possible(self):
        """Accesses always update cache state — there is no magic
        'speculative' bypass, which is precisely the paper's point about
        modelling mis-speculation effects."""
        h = self._hierarchy()
        h.access_data(0)     # pretend this was a wrong-path access
        assert h.l1d.probe(0)
