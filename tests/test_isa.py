"""Unit tests for the ISA: opcodes, instructions, programs, assembler."""

import pytest

from repro.errors import AssemblyError, EmulationError
from repro.isa import (
    ControlClass,
    Instruction,
    Opcode,
    Program,
    ProgramBuilder,
    WORD_SIZE,
)
from repro.isa.opcodes import control_class


class TestControlClass:
    @pytest.mark.parametrize("opcode,expected", [
        (Opcode.ADD, ControlClass.NOT_CONTROL),
        (Opcode.BEQZ, ControlClass.COND_BRANCH),
        (Opcode.J, ControlClass.JUMP_DIRECT),
        (Opcode.JAL, ControlClass.CALL_DIRECT),
        (Opcode.JR, ControlClass.JUMP_INDIRECT),
        (Opcode.JALR, ControlClass.CALL_INDIRECT),
        (Opcode.RET, ControlClass.RETURN),
    ])
    def test_classification(self, opcode, expected):
        assert control_class(opcode) is expected

    def test_is_call(self):
        assert ControlClass.CALL_DIRECT.is_call
        assert ControlClass.CALL_INDIRECT.is_call
        assert not ControlClass.RETURN.is_call

    def test_is_indirect(self):
        assert ControlClass.RETURN.is_indirect
        assert ControlClass.JUMP_INDIRECT.is_indirect
        assert not ControlClass.JUMP_DIRECT.is_indirect

    def test_is_control(self):
        assert not ControlClass.NOT_CONTROL.is_control
        assert ControlClass.COND_BRANCH.is_control


class TestInstruction:
    def test_register_bounds_checked(self):
        with pytest.raises(AssemblyError):
            Instruction(Opcode.ADD, rd=32)
        with pytest.raises(AssemblyError):
            Instruction(Opcode.ADD, rs=-1)

    def test_precomputed_control(self):
        assert Instruction(Opcode.RET).control is ControlClass.RETURN
        assert Instruction(Opcode.BEQZ, rs=1, target=0).is_cond_branch

    def test_is_memory(self):
        assert Instruction(Opcode.LOAD, rd=1, rs=2).is_memory
        assert Instruction(Opcode.STORE, rt=1, rs=2).is_memory
        assert not Instruction(Opcode.ADD).is_memory

    def test_repr_forms(self):
        assert "r1, r2, r3" in repr(Instruction(Opcode.ADD, rd=1, rs=2, rt=3))
        assert "4(r2)" in repr(Instruction(Opcode.LOAD, rd=1, rs=2, imm=4))


class TestProgram:
    def _simple(self):
        b = ProgramBuilder("p")
        b.label("main")
        b.nop()
        b.halt()
        return b.build(entry="main")

    def test_fetch_by_address(self):
        p = self._simple()
        assert p.fetch(0).opcode is Opcode.NOP
        assert p.fetch(WORD_SIZE).opcode is Opcode.HALT

    def test_fetch_out_of_range(self):
        p = self._simple()
        with pytest.raises(EmulationError):
            p.fetch(100)
        with pytest.raises(EmulationError):
            p.fetch(-4)

    def test_fetch_misaligned(self):
        p = self._simple()
        with pytest.raises(EmulationError):
            p.fetch(2)

    def test_in_text(self):
        p = self._simple()
        assert p.in_text(0)
        assert not p.in_text(p.text_limit)
        assert not p.in_text(1)

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblyError):
            Program([])

    def test_bad_target_rejected(self):
        inst = Instruction(Opcode.J, target=400)
        with pytest.raises(AssemblyError):
            Program([inst, Instruction(Opcode.HALT)])

    def test_bad_entry_rejected(self):
        with pytest.raises(AssemblyError):
            Program([Instruction(Opcode.HALT)], entry=8)

    def test_static_counts(self):
        p = self._simple()
        counts = p.static_counts()
        assert counts == {"nop": 1, "halt": 1}

    def test_disassemble_mentions_labels(self):
        p = self._simple()
        text = p.disassemble()
        assert "main:" in text
        assert "halt" in text


class TestProgramBuilder:
    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(AssemblyError):
            b.label("x")

    def test_undefined_label_rejected(self):
        b = ProgramBuilder()
        b.j("nowhere")
        with pytest.raises(AssemblyError):
            b.build()

    def test_forward_reference_resolves(self):
        b = ProgramBuilder()
        b.j("later")
        b.nop()
        b.label("later")
        b.halt()
        p = b.build()
        assert p.fetch(0).target == 2 * WORD_SIZE

    def test_here_advances_by_word(self):
        b = ProgramBuilder()
        assert b.here == 0
        b.nop()
        assert b.here == WORD_SIZE

    def test_data_label_resolution(self):
        b = ProgramBuilder()
        b.label("main")
        b.halt()
        b.label("f")
        b.ret()
        b.put_data(0x1000, "f")
        b.put_data(0x1004, 42)
        p = b.build(entry="main")
        assert p.data[0x1000] == p.address_of("f")
        assert p.data[0x1004] == 42

    def test_numeric_targets_allowed(self):
        b = ProgramBuilder()
        b.beqz(1, 2 * WORD_SIZE)
        b.nop()
        b.halt()
        p = b.build()
        assert p.fetch(0).target == 2 * WORD_SIZE

    def test_empty_build_rejected(self):
        with pytest.raises(AssemblyError):
            ProgramBuilder().build()

    def test_address_of_unknown_label(self):
        b = ProgramBuilder()
        b.halt()
        p = b.build()
        with pytest.raises(AssemblyError):
            p.address_of("ghost")
