"""Unit tests for machine configuration."""

import dataclasses

import pytest

from repro.config import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    MachineConfig,
    MultipathConfig,
    RepairMechanism,
    StackOrganization,
    baseline_config,
    table1_rows,
)
from repro.config.options import PRIMARY_MECHANISMS
from repro.errors import ConfigError


class TestBaseline:
    def test_table1_shape(self):
        config = baseline_config()
        rows = table1_rows(config)
        names = [name for name, _ in rows]
        assert "return-address stack" in names
        assert "direction predictor" in names
        assert all(isinstance(value, str) for _, value in rows)

    def test_baseline_matches_paper(self):
        config = baseline_config()
        assert config.core.ruu_size == 64
        assert config.core.lsq_size == 32
        assert config.core.fetch_width == 4
        assert config.predictor.gag_entries == 4096
        assert config.predictor.pag_history_entries == 1024
        assert config.predictor.pag_history_bits == 10
        assert config.predictor.ras_entries == 32
        assert config.multipath.max_paths == 1

    def test_configs_frozen(self):
        config = baseline_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.core.ruu_size = 1  # type: ignore[misc]


class TestDerivedConfigs:
    def test_with_repair(self):
        config = baseline_config().with_repair(RepairMechanism.NONE)
        assert config.predictor.ras_repair is RepairMechanism.NONE
        # the original default is untouched
        assert baseline_config().predictor.ras_repair is not RepairMechanism.NONE

    def test_with_ras_entries(self):
        config = baseline_config().with_ras_entries(4)
        assert config.predictor.ras_entries == 4

    def test_without_ras(self):
        config = baseline_config().without_ras()
        assert not config.predictor.ras_enabled
        assert "BTB-only" in dict(table1_rows(config))["return-address stack"]

    def test_with_multipath(self):
        config = baseline_config().with_multipath(4, StackOrganization.PER_PATH)
        assert config.multipath.max_paths == 4
        assert config.multipath.stack_organization is StackOrganization.PER_PATH
        assert any(name == "multipath" for name, _ in table1_rows(config))


class TestValidation:
    def test_gag_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            BranchPredictorConfig(gag_entries=1000)

    def test_ras_entries_positive(self):
        with pytest.raises(ConfigError):
            BranchPredictorConfig(ras_entries=0)

    def test_cache_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", size_bytes=1000, assoc=2, line_bytes=64, hit_latency=1)

    def test_cache_set_count(self):
        cache = CacheConfig("ok", size_bytes=64 * 1024, assoc=2, line_bytes=64,
                            hit_latency=1)
        assert cache.num_sets == 512

    def test_core_widths(self):
        with pytest.raises(ConfigError):
            CoreConfig(fetch_width=0)

    def test_ifq_fits_fetch(self):
        with pytest.raises(ConfigError):
            CoreConfig(fetch_width=8, ifq_size=4)

    def test_multipath_threshold_range(self):
        with pytest.raises(ConfigError):
            MultipathConfig(confidence_threshold=99)

    def test_shadow_slots_nonnegative(self):
        with pytest.raises(ConfigError):
            BranchPredictorConfig(shadow_checkpoint_slots=-1)


class TestMechanismEnum:
    def test_primary_mechanism_order(self):
        assert PRIMARY_MECHANISMS[0] is RepairMechanism.NONE
        assert PRIMARY_MECHANISMS[-1] is RepairMechanism.FULL_STACK

    def test_string_values_stable(self):
        # benchmark scripts key off these strings; they must not change.
        assert str(RepairMechanism.TOS_POINTER_AND_CONTENTS) == "tos-pointer-contents"
        assert str(StackOrganization.PER_PATH) == "per-path"
