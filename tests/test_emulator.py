"""Unit tests for the functional emulator and machine state."""

import pytest

from repro.emu import Emulator, MachineState, execute
from repro.emu.machine_state import MASK64, to_signed, to_unsigned
from repro.errors import EmulationError
from repro.isa import Instruction, Opcode, ProgramBuilder, REG_RA
from repro.workloads.kernels import (
    fibonacci_kernel,
    loop_sum_kernel,
    mutual_recursion_kernel,
)


def run_program(builder, entry="main", **kwargs):
    emulator = Emulator(builder.build(entry=entry), **kwargs)
    stats = emulator.run()
    return emulator.state, stats


class TestArithmetic:
    def test_add_sub(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 10)
        b.li(2, 3)
        b.add(3, 1, 2)
        b.sub(4, 1, 2)
        b.halt()
        state, _ = run_program(b)
        assert state.regs[3] == 13
        assert state.regs[4] == 7

    def test_64bit_wraparound(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(1, (1 << 64) - 1)
        b.addi(1, 1, 1)
        b.halt()
        state, _ = run_program(b)
        assert state.regs[1] == 0

    def test_negative_representation(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 0)
        b.addi(1, 1, -5)
        b.halt()
        state, _ = run_program(b)
        assert to_signed(state.regs[1]) == -5

    def test_slt_signed(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 0)
        b.addi(1, 1, -1)   # -1
        b.li(2, 1)
        b.slt(3, 1, 2)     # -1 < 1
        b.slt(4, 2, 1)     # 1 < -1
        b.halt()
        state, _ = run_program(b)
        assert state.regs[3] == 1
        assert state.regs[4] == 0

    def test_shifts(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 1)
        b.slli(2, 1, 10)
        b.srli(3, 2, 4)
        b.halt()
        state, _ = run_program(b)
        assert state.regs[2] == 1024
        assert state.regs[3] == 64

    def test_mul_masks_to_64(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 1 << 63)
        b.li(2, 2)
        b.mul(3, 1, 2)
        b.halt()
        state, _ = run_program(b)
        assert state.regs[3] == 0

    def test_r0_stays_zero(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(0, 99)
        b.add(0, 0, 0)
        b.halt()
        state, _ = run_program(b)
        assert state.regs[0] == 0


class TestMemory:
    def test_store_load_roundtrip(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 0x1000)
        b.li(2, 77)
        b.store(2, 1, 4)
        b.load(3, 1, 4)
        b.halt()
        state, _ = run_program(b)
        assert state.regs[3] == 77

    def test_uninitialised_reads_zero(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 0x5000)
        b.load(2, 1, 0)
        b.halt()
        state, _ = run_program(b)
        assert state.regs[2] == 0

    def test_initial_data_visible(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 0x2000)
        b.load(2, 1, 0)
        b.halt()
        b.put_data(0x2000, 123)
        state, _ = run_program(b)
        assert state.regs[2] == 123


class TestControlFlow:
    def test_branch_taken_and_not(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 0)
        b.beqz(1, "skip")       # taken
        b.li(2, 1)              # skipped
        b.label("skip")
        b.li(3, 5)
        b.bnez(3, "skip2")      # taken
        b.li(4, 1)              # skipped
        b.label("skip2")
        b.halt()
        state, stats = run_program(b)
        assert state.regs[2] == 0
        assert state.regs[4] == 0
        assert stats.taken_cond_branches == 2

    def test_call_writes_link_register(self):
        b = ProgramBuilder()
        b.label("main")
        pc = b.jal("f")
        b.halt()
        b.label("f")
        b.add(1, 31, 0)
        b.ret()
        state, stats = run_program(b)
        assert state.regs[1] == pc + 4
        assert stats.calls == 1
        assert stats.returns == 1

    def test_jalr_and_jr(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 0)
        b.addi(1, 1, 5 * 4)     # address of label "f"
        b.jalr(1)
        b.halt()
        b.nop()                 # filler so "f" is at instruction 5
        b.label("f")
        b.li(2, 9)
        b.ret()
        state, stats = run_program(b)
        assert state.regs[2] == 9
        assert stats.calls == 1

    def test_jump_out_of_text_is_error(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 0x9999000)
        b.jr(1)
        b.halt()
        emulator = Emulator(b.build(entry="main"))
        with pytest.raises(EmulationError):
            emulator.run()

    def test_watchdog_triggers(self):
        b = ProgramBuilder()
        b.label("main")
        b.j("main")
        emulator = Emulator(b.build(entry="main"), max_instructions=100)
        with pytest.raises(EmulationError):
            emulator.run()


class TestKernels:
    def test_loop_sum(self):
        p = loop_sum_kernel(10)
        e = Emulator(p)
        e.run()
        assert e.state.regs[1] == 55

    def test_fibonacci(self):
        p = fibonacci_kernel(10)
        e = Emulator(p)
        stats = e.run()
        assert e.state.regs[2] == 89      # fib(10) with fib(0)=fib(1)=1
        assert stats.calls == stats.returns

    def test_mutual_recursion_call_count(self):
        p = mutual_recursion_kernel(12)
        e = Emulator(p)
        stats = e.run()
        assert e.state.regs[1] == 13      # depth+1 function activations
        assert stats.calls == 13
        assert stats.call_depth.max_key == 13

    def test_trace_matches_run_length(self):
        p = fibonacci_kernel(8)
        count = sum(1 for _ in Emulator(p).trace())
        stats = Emulator(p).run()
        assert count == stats.instructions


class TestStateHelpers:
    def test_to_signed_unsigned_roundtrip(self):
        assert to_signed(to_unsigned(-1)) == -1
        assert to_unsigned(-1) == MASK64

    def test_undo_log_rewinds_registers(self):
        state = MachineState()
        log = []
        state.write_reg(5, 42, log)
        state.write_reg(5, 99, log)
        state.write_mem(0x100, 7, log)
        state.rewind(log)
        assert state.regs[5] == 0
        assert state.read_mem(0x100) == 0
        assert log == []

    def test_undo_log_restores_previous_memory(self):
        state = MachineState(initial_memory={0x100: 1})
        log = []
        state.write_mem(0x100, 2, log)
        state.rewind(log)
        assert state.read_mem(0x100) == 1

    def test_fork_sees_parent_memory(self):
        parent = MachineState()
        parent.write_mem(8, 3)
        child = parent.fork()
        assert child.read_mem(8) == 3

    def test_fork_writes_stay_private(self):
        parent = MachineState()
        parent.write_mem(8, 3)
        child = parent.fork()
        child.write_mem(8, 9)
        assert parent.read_mem(8) == 3
        assert child.read_mem(8) == 9

    def test_collapse_merges_child(self):
        parent = MachineState()
        parent.write_mem(8, 3)
        child = parent.fork()
        child.write_reg(1, 11)
        child.write_mem(8, 9)
        child.pc = 64
        merged = child.collapse_into_parent()
        assert merged is parent
        assert parent.read_mem(8) == 9
        assert parent.regs[1] == 11
        assert parent.pc == 64

    def test_collapse_root_rejected(self):
        with pytest.raises(ValueError):
            MachineState().collapse_into_parent()

    def test_depth(self):
        root = MachineState()
        assert root.depth() == 0
        assert root.fork().fork().depth() == 2

    def test_execute_does_not_move_pc(self):
        state = MachineState(pc=0)
        outcome = execute(Instruction(Opcode.LI, rd=1, imm=3), 0, state)
        assert state.pc == 0
        assert outcome.next_pc == 4
