"""Unit tests for the trace corpus subsystem (repro.corpus)."""

import io
import lzma
import pathlib

import pytest

from repro.config.options import RepairMechanism
from repro.core import WorkloadSpec, build_program, trace_depth_sweep
from repro.core.executor import (
    ExperimentJob,
    ResultCache,
    SweepExecutor,
    simulation_calls,
)
from repro.corpus import (
    CorpusError,
    CorpusManifest,
    CorpusStore,
    ImportStats,
    ShardRecord,
    champsim_events,
    corpus_depth_results,
    corpus_depth_sweep,
)
from repro.corpus.champsim import RECORD
from repro.errors import ConfigError, ReproError
from repro.isa.opcodes import ControlClass
from repro.trace import (
    ControlFlowEvent,
    TraceFormatError,
    TraceRasEvaluator,
    TraceReader,
    TraceWriter,
    record_trace,
    replay_shard,
    replay_shard_multi,
    write_trace,
)
from repro.trace.replay import TraceShardSpec

DATA = pathlib.Path(__file__).parent / "data"
SAMPLE_CHAMPSIM = DATA / "sample_champsim.trace.xz"


def _events(n=40):
    events = []
    for i in range(n):
        control = (ControlClass.CALL_DIRECT, ControlClass.RETURN,
                   ControlClass.COND_BRANCH)[i % 3]
        events.append(ControlFlowEvent(
            control, 100 + 4 * i, 400 + 8 * i, gap=i % 5))
    return events


class TestV2Container:
    def test_v1_v2_roundtrip_bit_identical_events(self):
        events = _events()
        v1, v2 = io.BytesIO(), io.BytesIO()
        assert write_trace(v1, events, version=1) == len(events)
        assert write_trace(v2, events, version=2, block_events=7) == len(events)
        v1.seek(0)
        v2.seek(0)
        from_v1 = TraceReader(v1).read_all()
        from_v2 = TraceReader(v2).read_all()
        assert from_v1 == events
        assert from_v2 == events
        assert from_v1 == from_v2

    def test_v2_multiblock_header_and_index(self):
        events = _events(20)
        buffer = io.BytesIO()
        write_trace(buffer, events, version=2, block_events=7)
        buffer.seek(0)
        reader = TraceReader(buffer)
        assert reader.version == 2
        assert reader.count == 20
        index = reader.index()
        assert len(index) == 3  # 7 + 7 + 6
        assert [count for _, _, count in index] == [7, 7, 6]
        assert reader.read_all() == events  # index() restored the position

    def test_v2_64bit_pcs(self):
        big = ControlFlowEvent(ControlClass.RETURN, 2**40 + 4, 2**40 + 8, 1)
        buffer = io.BytesIO()
        write_trace(buffer, [big], version=2)
        buffer.seek(0)
        assert TraceReader(buffer).read_all() == [big]

    def test_v1_rejects_64bit_pcs(self):
        with pytest.raises(TraceFormatError, match="32-bit"):
            write_trace(io.BytesIO(), [
                ControlFlowEvent(ControlClass.RETURN, 2**40, 0)], version=1)

    def test_corrupt_block_is_typed_crc_error_not_truncation(self):
        events = _events(30)
        buffer = io.BytesIO()
        write_trace(buffer, events, version=2, block_events=32)
        corrupted = bytearray(buffer.getvalue())
        # Flip a byte inside the compressed payload (past the 24-byte
        # header and 16-byte block header).
        corrupted[24 + 16 + 5] ^= 0xFF
        reader = TraceReader(io.BytesIO(bytes(corrupted)))
        with pytest.raises(TraceFormatError, match="CRC mismatch.*found.*expected"):
            reader.read_all()

    def test_truncated_v2_body_rejected(self):
        buffer = io.BytesIO()
        write_trace(buffer, _events(30), version=2, block_events=32)
        reader = TraceReader(io.BytesIO(buffer.getvalue()[:-60]))
        with pytest.raises(TraceFormatError):
            reader.read_all()

    def test_header_errors_carry_found_and_expected(self):
        with pytest.raises(TraceFormatError,
                           match=r"found b'NOTATRAC'.*expected b'RASTRACE'"):
            TraceReader(io.BytesIO(b"NOTATRACE" + b"\x00" * 16))
        with pytest.raises(TraceFormatError, match="found 2 bytes"):
            TraceReader(io.BytesIO(b"RA"))
        with pytest.raises(TraceFormatError, match="found 9"):
            TraceReader(io.BytesIO(b"RASTRACE" + b"\x09\x00\x00\x00" * 3))

    def test_record_trace_v2_matches_v1(self):
        program = build_program(WorkloadSpec("li", 1, 0.05))
        v1 = TraceReader(io.BytesIO(record_trace(program))).read_all()
        v2_bytes = record_trace(program, version=2)
        v2 = TraceReader(io.BytesIO(v2_bytes)).read_all()
        assert v1 == v2
        assert len(v2_bytes) < len(record_trace(program))  # compressed


class TestStreamingReplay:
    def test_evaluator_accepts_one_shot_iterator(self):
        result = TraceRasEvaluator(iter(_events())).evaluate(ras_entries=8)
        assert result.returns > 0

    def test_one_shot_iterator_reuse_raises_not_silently_empty(self):
        evaluator = TraceRasEvaluator(iter(_events()))
        evaluator.evaluate()
        with pytest.raises(ReproError, match="already consumed"):
            evaluator.evaluate()

    def test_bytes_source_supports_repeated_evaluation(self):
        trace = record_trace(build_program(WorkloadSpec("li", 1, 0.05)))
        evaluator = TraceRasEvaluator(trace)
        first = evaluator.evaluate(ras_entries=4)
        second = evaluator.evaluate(ras_entries=4)
        assert (first.returns, first.hits) == (second.returns, second.hits)

    def test_path_source_streams_from_disk(self, tmp_path):
        path = tmp_path / "t.rastrace"
        write_trace(str(path), _events(), version=2)
        evaluator = TraceRasEvaluator(str(path))
        assert evaluator.evaluate(ras_entries=8).returns > 0
        calls, returns = evaluator.call_return_counts()
        assert calls > 0 and returns > 0

    def test_depth_sweep_single_pass_equals_per_size(self):
        trace = record_trace(build_program(WorkloadSpec("vortex", 1, 0.05)))
        evaluator = TraceRasEvaluator(trace)
        swept = evaluator.depth_sweep((1, 4, 64))
        for size in (1, 4, 64):
            alone = evaluator.evaluate(ras_entries=size)
            assert (swept[size].returns, swept[size].hits,
                    swept[size].overflows, swept[size].underflows) == \
                   (alone.returns, alone.hits, alone.overflows,
                    alone.underflows)


class TestManifest:
    def _record(self, name="a"):
        return ShardRecord(name=name, filename=f"{name}.rastrace",
                           format_version=2, events=10, calls=3, returns=3,
                           checksum="ab" * 32,
                           source={"kind": "events"})

    def test_roundtrip(self, tmp_path):
        manifest = CorpusManifest([self._record("a"), self._record("b")],
                                  description="test")
        manifest.save(tmp_path / "manifest.json")
        loaded = CorpusManifest.load(tmp_path / "manifest.json")
        assert loaded.names() == ["a", "b"]
        assert loaded.get("a") == self._record("a")
        assert loaded.total_events == 20

    def test_duplicate_name_rejected(self):
        manifest = CorpusManifest([self._record()])
        with pytest.raises(CorpusError, match="duplicate"):
            manifest.add(self._record())

    def test_unknown_shard_and_bad_kind(self):
        with pytest.raises(CorpusError, match="no shard named"):
            CorpusManifest().get("nope")
        with pytest.raises(CorpusError, match="bad source kind"):
            ShardRecord(name="x", filename="x", format_version=2, events=0,
                        calls=0, returns=0, checksum="", source={"kind": "?"})

    def test_missing_and_malformed_manifest(self, tmp_path):
        with pytest.raises(CorpusError, match="cannot read"):
            CorpusManifest.load(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(CorpusError, match="not valid JSON"):
            CorpusManifest.load(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"schema": 99, "shards": []}')
        with pytest.raises(CorpusError, match="found 99, expected 1"):
            CorpusManifest.load(wrong)


class TestCorpusStore:
    def test_build_verify_and_stream(self, tmp_path):
        store = CorpusStore.create(tmp_path / "corpus")
        spec = WorkloadSpec("li", 1, 0.05)
        (record,) = store.build_from_specs([spec])
        assert record.events > 0
        assert record.calls == record.returns > 0
        store.verify()
        streamed = sum(1 for _ in store.events(record.name))
        assert streamed == record.events
        reopened = CorpusStore.open(tmp_path / "corpus")
        assert reopened.manifest.get(record.name) == record

    def test_tampered_shard_fails_verify_and_names_digests(self, tmp_path):
        store = CorpusStore.create(tmp_path / "corpus")
        (record,) = store.build_from_specs([WorkloadSpec("li", 1, 0.05)])
        path = store.shard_path(record)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CorpusError,
                           match="checksum mismatch: found .* expected"):
            store.verify()

    def test_duplicate_shard_and_bad_name(self, tmp_path):
        store = CorpusStore.create(tmp_path / "corpus")
        store.add_shard("ok", _events(), {"kind": "events"})
        with pytest.raises(CorpusError, match="duplicate"):
            store.add_shard("ok", _events(), {"kind": "events"})
        with pytest.raises(CorpusError, match="bad shard name"):
            store.add_shard("../evil", _events(), {"kind": "events"})

    def test_failed_ingest_leaves_no_orphan_file(self, tmp_path):
        store = CorpusStore.create(tmp_path / "corpus")

        def exploding():
            yield _events(1)[0]
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            store.add_shard("partial", exploding(), {"kind": "events"})
        assert not (tmp_path / "corpus" / "partial.rastrace").exists()
        assert "partial" not in store.manifest

    def test_create_refuses_existing_corpus(self, tmp_path):
        CorpusStore.create(tmp_path / "corpus")
        with pytest.raises(CorpusError, match="already holds a corpus"):
            CorpusStore.create(tmp_path / "corpus")
        assert isinstance(CorpusStore.open_or_create(tmp_path / "corpus"),
                          CorpusStore)

    def test_records_filters(self, tmp_path):
        store = CorpusStore.create(tmp_path / "corpus")
        store.build_from_specs([WorkloadSpec("li", 1, 0.05)])
        store.import_champsim(SAMPLE_CHAMPSIM, name="sample")
        assert [r.name for r in store.records(kind="champsim")] == ["sample"]
        assert len(store.records()) == 2
        assert [r.name for r in store.records(
            predicate=lambda r: r.returns > 100)] == ["li-s1-x0.05"]
        assert store.specs(names=["sample"])[0].name == "sample"


class TestChampSimImport:
    def test_sample_trace_imports_clean(self, tmp_path):
        store = CorpusStore.create(tmp_path / "corpus")
        record, stats = store.import_champsim(SAMPLE_CHAMPSIM, name="sample")
        assert stats.records > 500
        assert stats.unclassified == 0
        assert stats.dropped_tail == 0
        assert record.calls == record.returns > 0
        assert stats.by_class["call-direct"] == record.calls

    def test_sample_trace_ras_behaviour(self, tmp_path):
        store = CorpusStore.create(tmp_path / "corpus")
        store.import_champsim(SAMPLE_CHAMPSIM, name="sample")
        spec = store.spec("sample")
        swept = replay_shard_multi(spec, (2, 64))
        assert swept[64].accuracy == pytest.approx(1.0)
        assert swept[64].overflows == 0
        assert swept[2].overflows > 0
        assert swept[2].accuracy < 1.0

    def test_limit_bounds_records(self, tmp_path):
        stats = ImportStats()
        events = list(champsim_events(SAMPLE_CHAMPSIM, limit=50, stats=stats))
        assert stats.records == 50
        assert len(events) <= stats.branches

    def test_truncated_record_is_typed_error(self, tmp_path):
        raw = lzma.decompress(SAMPLE_CHAMPSIM.read_bytes())
        bad = tmp_path / "bad.trace"
        bad.write_bytes(raw[:RECORD.size * 3 + 10])
        with pytest.raises(CorpusError,
                           match="found 10 bytes, expected 64"):
            list(champsim_events(bad))

    def test_gzip_and_raw_streams(self, tmp_path):
        import gzip

        raw = lzma.decompress(SAMPLE_CHAMPSIM.read_bytes())
        plain = tmp_path / "t.trace"
        plain.write_bytes(raw)
        zipped = tmp_path / "t.trace.gz"
        zipped.write_bytes(gzip.compress(raw))
        from_xz = list(champsim_events(SAMPLE_CHAMPSIM))
        assert list(champsim_events(plain)) == from_xz
        assert list(champsim_events(zipped)) == from_xz


class TestExecutorTraceEngine:
    SIZES = (1, 4, 16, 64)

    def _store(self, tmp_path, spec):
        store = CorpusStore.create(tmp_path / "corpus")
        store.build_from_specs([spec])
        return store

    def test_corpus_replay_equals_inmemory_replay(self, tmp_path):
        spec = WorkloadSpec("vortex", 1, 0.1)
        store = self._store(tmp_path, spec)
        direct = TraceRasEvaluator(
            record_trace(build_program(spec))).depth_sweep(
                self.SIZES, RepairMechanism.NONE)
        executor = SweepExecutor(jobs=1, cache=None)
        results = corpus_depth_results(store, self.SIZES,
                                       executor=executor)
        (by_size,) = results.values()
        for size in self.SIZES:
            job = by_size[size]
            assert job.counter("returns") == direct[size].returns
            assert job.counter("return_hits") == direct[size].hits
            assert job.counter("ras_overflows") == direct[size].overflows
            assert job.counter("ras_underflows") == direct[size].underflows
            assert job.return_accuracy == pytest.approx(direct[size].accuracy)

    def test_parallel_equals_serial(self, tmp_path):
        store = self._store(tmp_path, WorkloadSpec("li", 1, 0.05))
        serial = corpus_depth_sweep(
            store, self.SIZES, executor=SweepExecutor(jobs=1, cache=None))
        parallel = corpus_depth_sweep(
            store, self.SIZES, executor=SweepExecutor(jobs=4, cache=None))
        assert serial == parallel

    def test_second_run_served_from_cache(self, tmp_path):
        store = self._store(tmp_path, WorkloadSpec("li", 1, 0.05))
        cache = ResultCache(tmp_path / "cache")
        first = SweepExecutor(jobs=1, cache=cache)
        cold = corpus_depth_sweep(store, self.SIZES, executor=first)
        assert first.cache_misses == len(self.SIZES)
        before = simulation_calls()
        second = SweepExecutor(jobs=1, cache=cache)
        warm = corpus_depth_sweep(store, self.SIZES, executor=second)
        assert warm == cold
        assert second.cache_hits == len(self.SIZES)
        assert second.cache_misses == 0
        assert simulation_calls() == before  # no shard was re-replayed

    def test_shard_content_change_invalidates_cache(self, tmp_path):
        from repro.config.defaults import baseline_config

        store = self._store(tmp_path, WorkloadSpec("li", 1, 0.05))
        spec = store.specs()[0]
        config = baseline_config()
        original_key = ExperimentJob(spec, config, "trace").cache_key()
        altered = TraceShardSpec(name=spec.name, path=spec.path,
                                 checksum="0" * 64, events=spec.events)
        assert ExperimentJob(altered, config, "trace").cache_key() \
            != original_key
        moved = TraceShardSpec(name=spec.name, path="/elsewhere/x.rastrace",
                               checksum=spec.checksum, events=spec.events)
        assert ExperimentJob(moved, config, "trace").cache_key() \
            == original_key  # path is not identity

    def test_engine_workload_pairing_enforced(self, tmp_path):
        from repro.config.defaults import baseline_config

        spec = TraceShardSpec(name="x", path="/nope")
        with pytest.raises(ConfigError, match="incompatible"):
            ExperimentJob(spec, baseline_config(), "fast")
        with pytest.raises(ConfigError, match="incompatible"):
            ExperimentJob(WorkloadSpec("li"), baseline_config(), "trace")
        assert ExperimentJob(spec, baseline_config(), "trace").cache_key() \
            is None  # no checksum -> uncacheable

    def test_trace_depth_sweep_mechanism_respected(self, tmp_path):
        store = self._store(tmp_path, WorkloadSpec("li", 1, 0.05))
        shards = store.specs()
        executor = SweepExecutor(jobs=1, cache=None)
        linked = trace_depth_sweep(shards, (64,),
                                   mechanism=RepairMechanism.SELF_CHECKPOINT,
                                   executor=executor)
        direct = replay_shard(shards[0], ras_entries=64,
                              mechanism=RepairMechanism.SELF_CHECKPOINT)
        job = linked[shards[0].name][64]
        assert job.counter("return_hits") == direct.hits
