"""Tests for the recursive stress kernels, functionally and on the CPU."""

import pytest

from repro.config import RepairMechanism, baseline_config
from repro.emu import Emulator
from repro.pipeline import SinglePathCPU
from repro.workloads import (
    ackermann_kernel,
    hanoi_kernel,
    tree_sum_kernel,
)


class TestFunctionalResults:
    @pytest.mark.parametrize("disks,expected", [(3, 7), (5, 31), (7, 127)])
    def test_hanoi_move_count(self, disks, expected):
        emulator = Emulator(hanoi_kernel(disks))
        emulator.run()
        assert emulator.state.regs[1] == expected

    @pytest.mark.parametrize("depth,expected", [(0, 1), (3, 15), (8, 511)])
    def test_tree_sum(self, depth, expected):
        emulator = Emulator(tree_sum_kernel(depth))
        emulator.run()
        assert emulator.state.regs[2] == expected

    @pytest.mark.parametrize("m,n,expected", [
        (0, 5, 6), (1, 3, 5), (2, 3, 9), (3, 3, 61),
    ])
    def test_ackermann(self, m, n, expected):
        emulator = Emulator(ackermann_kernel(m, n))
        emulator.run()
        assert emulator.state.regs[2] == expected

    def test_ackermann_m_capped(self):
        with pytest.raises(ValueError):
            ackermann_kernel(4, 1)

    def test_calls_balance(self):
        for program in (hanoi_kernel(5), tree_sum_kernel(5),
                        ackermann_kernel(2, 2)):
            stats = Emulator(program).run()
            assert stats.calls == stats.returns

    def test_ackermann_depth_is_wild(self):
        stats = Emulator(ackermann_kernel(3, 3)).run()
        assert stats.call_depth.max_key > 50


class TestOnThePipeline:
    def test_hanoi_commits_golden_stream(self):
        program = hanoi_kernel(6)
        golden = [(r.pc, r.next_pc) for r in Emulator(program).trace()]
        committed = []
        cpu = SinglePathCPU(program, commit_hook=lambda e: committed.append(
            (e.pc, e.pc if e.outcome.is_halt else e.outcome.next_pc)))
        cpu.run()
        assert committed == golden

    def test_ackermann_overflows_small_stack(self):
        """ack(3,3) reaches depth ~60: a 16-entry stack must overflow
        and its return accuracy must suffer even with perfect repair."""
        program = ackermann_kernel(3, 3)
        deep = (baseline_config()
                .with_repair(RepairMechanism.FULL_STACK)
                .with_ras_entries(128))
        shallow = (baseline_config()
                   .with_repair(RepairMechanism.FULL_STACK)
                   .with_ras_entries(16))
        deep_result = SinglePathCPU(program, deep).run()
        shallow_result = SinglePathCPU(program, shallow).run()
        assert shallow_result.counter("ras_overflows") > 0
        assert shallow_result.return_accuracy < deep_result.return_accuracy

    def test_tree_sum_repair_ordering(self):
        """Dense tree recursion is a worst case for single-entry repair:
        wrong paths cross several return levels before the branch
        resolves, corrupting *below* the checkpointed top. The ordering
        still holds, and only FULL reaches 100% — which is exactly why
        the paper evaluates full checkpointing as the upper bound."""
        program = tree_sum_kernel(7)
        accuracy = {}
        for mechanism in (RepairMechanism.NONE,
                          RepairMechanism.TOS_POINTER_AND_CONTENTS,
                          RepairMechanism.FULL_STACK):
            config = baseline_config().with_repair(mechanism)
            accuracy[mechanism] = SinglePathCPU(program, config).run(
            ).return_accuracy
        assert (accuracy[RepairMechanism.NONE]
                < accuracy[RepairMechanism.TOS_POINTER_AND_CONTENTS]
                <= accuracy[RepairMechanism.FULL_STACK])
        assert accuracy[RepairMechanism.FULL_STACK] == pytest.approx(1.0)
