"""Unit tests for the one-shot report builder and its CLI command."""

import pytest

from repro.cli import main as cli_main
from repro.core.report import build_report, report_section_ids


class TestSectionCatalogue:
    def test_quick_sections_subset_of_full(self):
        quick = report_section_ids(full=False)
        full = report_section_ids(full=True)
        assert set(quick) < set(full)
        assert "T1" in quick and "T4" in quick
        assert "F4" in full and "F4" not in quick


class TestBuildReport:
    @pytest.fixture(scope="class")
    def quick_report(self):
        visited = []
        text = build_report(
            names=("li",), seed=1, scale=0.05,
            progress=visited.append,
        )
        return text, visited

    def test_contains_every_quick_section(self, quick_report):
        text, visited = quick_report
        for section in report_section_ids(full=False):
            assert f"[{section}]" in text
        assert visited == report_section_ids(full=False)

    def test_header_records_parameters(self, quick_report):
        text, _ = quick_report
        assert "seed=1" in text
        assert "scale=0.05" in text
        assert "benchmarks=li" in text

    def test_tables_rendered(self, quick_report):
        text, _ = quick_report
        assert "Table 1: baseline machine model" in text
        assert "Table 4: BTB-only return prediction" in text
        assert "hit rates by repair mechanism" in text


class TestCliReport:
    def test_stdout(self, capsys):
        assert cli_main(["report", "--names", "li", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "reproduction report" in out

    def test_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.txt"
        assert cli_main([
            "report", "--names", "li", "--scale", "0.05",
            "--out", str(path),
        ]) == 0
        assert "written to" in capsys.readouterr().out
        assert "[T1]" in path.read_text()
