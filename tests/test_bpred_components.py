"""Unit tests for direction predictors, BTB and confidence estimation."""

import pytest

from repro.bpred import (
    BranchTargetBuffer,
    CounterTable,
    GAgPredictor,
    HybridPredictor,
    JrsConfidenceEstimator,
    PAgPredictor,
    SaturatingCounter,
    ShadowCheckpointPool,
)


class TestSaturatingCounter:
    def test_initial_weakly_taken(self):
        c = SaturatingCounter(bits=2)
        assert c.value == 2
        assert c.taken

    def test_saturates_high(self):
        c = SaturatingCounter(bits=2)
        for _ in range(10):
            c.update(True)
        assert c.value == 3

    def test_saturates_low(self):
        c = SaturatingCounter(bits=2)
        for _ in range(10):
            c.update(False)
        assert c.value == 0
        assert not c.taken

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)


class TestCounterTable:
    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            CounterTable(100)

    def test_trains_per_index(self):
        t = CounterTable(16)
        for _ in range(3):
            t.update(5, True)
            t.update(6, False)
        assert t.predict(5)
        assert not t.predict(6)

    def test_index_wraps(self):
        t = CounterTable(16)
        t.update(5 + 16, True)
        assert t.value(5) == 3


class TestGAg:
    def test_learns_alternating_pattern(self):
        """A T/NT alternation is perfectly predictable from history."""
        g = GAgPredictor(entries=256)
        outcome = True
        correct = 0
        for i in range(400):
            predicted = g.predict(0)
            if i >= 200 and predicted == outcome:
                correct += 1
            g.update(0, outcome)
            outcome = not outcome
        assert correct == 200

    def test_history_width(self):
        g = GAgPredictor(entries=4096)
        assert g.history_bits == 12
        for _ in range(100):
            g.update(0, True)
        assert g.history == (1 << 12) - 1


class TestPAg:
    def test_per_branch_histories_independent(self):
        p = PAgPredictor(history_entries=64, history_bits=4)
        # Branch A always taken, branch B always not-taken.
        for _ in range(50):
            p.update(0, True)
            p.update(4, False)
        assert p.predict(0)
        assert not p.predict(4)
        assert p.history_of(0) == 0b1111
        assert p.history_of(4) == 0

    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            PAgPredictor(history_entries=100)


class TestHybrid:
    def test_learns_biased_branch(self):
        h = HybridPredictor(256, 64, 6, 256)
        for _ in range(50):
            h.update(8, True)
        assert h.predict(8)

    def test_selector_picks_better_component(self):
        """Period-3 per-branch pattern: PAg learns it, GAg struggles when
        the global history is polluted by another random-ish branch."""
        h = HybridPredictor(64, 64, 8, 64)
        pattern = [True, True, False]
        noise = [True, False, False, True, False, True, True, False]
        correct = 0
        total = 0
        for i in range(1200):
            h.update(20, noise[i % len(noise)])  # pollutes global history
            predicted = h.predict(8)
            outcome = pattern[i % 3]
            if i > 600:
                total += 1
                correct += predicted == outcome
            h.update(8, outcome)
        assert correct / total > 0.95

    def test_accuracy_stat(self):
        h = HybridPredictor(64, 64, 4, 64)
        h.record_outcome(True)
        h.record_outcome(False)
        assert h.stats["direction_accuracy"].value == pytest.approx(0.5)


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(sets=16, assoc=2)
        assert btb.lookup(100) is None
        btb.update(100, 400, taken=True)
        assert btb.lookup(100) == 400

    def test_not_taken_never_allocates(self):
        btb = BranchTargetBuffer(sets=16, assoc=2)
        btb.update(100, 400, taken=False)
        assert btb.lookup(100) is None
        assert btb.occupancy() == 0

    def test_not_taken_preserves_existing_entry(self):
        btb = BranchTargetBuffer(sets=16, assoc=2)
        btb.update(100, 400, taken=True)
        btb.update(100, 999, taken=False)
        assert btb.lookup(100) == 400

    def test_taken_updates_target(self):
        btb = BranchTargetBuffer(sets=16, assoc=2)
        btb.update(100, 400, taken=True)
        btb.update(100, 800, taken=True)
        assert btb.lookup(100) == 800

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(sets=1, assoc=2)
        btb.update(0, 10, True)
        btb.update(4, 20, True)
        btb.lookup(0)            # refresh 0 -> LRU is 4
        btb.update(8, 30, True)  # evicts 4
        assert btb.lookup(0) == 10
        assert btb.lookup(4) is None
        assert btb.lookup(8) == 30

    def test_set_conflicts_only_within_set(self):
        btb = BranchTargetBuffer(sets=2, assoc=1)
        btb.update(0, 10, True)   # set 0
        btb.update(4, 20, True)   # set 1
        assert btb.lookup(0) == 10
        assert btb.lookup(4) == 20

    def test_hit_rate(self):
        btb = BranchTargetBuffer(sets=16, assoc=2)
        btb.lookup(0)
        btb.update(0, 8, True)
        btb.lookup(0)
        assert btb.hit_rate == pytest.approx(0.5)

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(sets=100)
        with pytest.raises(ValueError):
            BranchTargetBuffer(sets=16, assoc=0)


class TestConfidence:
    def test_starts_low_confidence(self):
        c = JrsConfidenceEstimator(entries=64, threshold=4)
        assert c.is_low_confidence(0)

    def test_correct_streak_builds_confidence(self):
        c = JrsConfidenceEstimator(entries=64, threshold=4)
        for _ in range(5):
            c.update(0, correct=True)
        assert not c.is_low_confidence(0)

    def test_mispredict_resets(self):
        c = JrsConfidenceEstimator(entries=64, threshold=4, maximum=15)
        for _ in range(20):
            c.update(0, correct=True)
        assert c.value(0) == 15
        c.update(0, correct=False)
        assert c.value(0) == 0
        assert c.is_low_confidence(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            JrsConfidenceEstimator(entries=100)
        with pytest.raises(ValueError):
            JrsConfidenceEstimator(threshold=99)


class TestShadowPool:
    def test_unlimited(self):
        pool = ShadowCheckpointPool(None)
        assert all(pool.try_acquire() for _ in range(1000))

    def test_limited_exhausts(self):
        pool = ShadowCheckpointPool(2)
        assert pool.try_acquire()
        assert pool.try_acquire()
        assert not pool.try_acquire()
        assert pool.exhausted_count == 1
        pool.release()
        assert pool.try_acquire()

    def test_release_without_acquire(self):
        with pytest.raises(RuntimeError):
            ShadowCheckpointPool(2).release()

    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            ShadowCheckpointPool(-1)
