"""Integration tests for the multipath CPU.

Same golden-stream discipline as the single-path tests, across path
counts and stack organisations, plus the paper's Section 5 claims:
unified stacks collapse under contention, full checkpointing does not
save them, per-path stacks do.
"""

import dataclasses

import pytest

from repro.config import StackOrganization, baseline_config
from repro.emu import Emulator
from repro.multipath import MultipathCPU, PathContext, StackOrganizer
from repro.workloads.generator import build_workload
from repro.workloads.kernels import dispatch_kernel, fibonacci_kernel


def multipath_config(paths, org, scale_frontend=False):
    config = baseline_config().with_multipath(paths, org)
    if scale_frontend:
        factor = max(1, paths // 2)
        config = dataclasses.replace(
            config,
            core=dataclasses.replace(
                config.core,
                fetch_width=4 * factor,
                decode_width=4 * factor,
                ifq_size=16 * factor,
            ),
        )
    return config


def committed_stream(program, config):
    committed = []

    def hook(entry):
        next_pc = entry.pc if entry.outcome.is_halt else entry.outcome.next_pc
        committed.append((entry.pc, next_pc))

    cpu = MultipathCPU(program, config, commit_hook=hook)
    result = cpu.run()
    return committed, result, cpu


def golden_stream(program):
    return [(r.pc, r.next_pc) for r in Emulator(program).trace()]


class TestGoldenEquivalence:
    @pytest.mark.parametrize("paths", [2, 4])
    @pytest.mark.parametrize("org", list(StackOrganization))
    def test_go_matches_golden(self, paths, org):
        program = build_workload("go", seed=1, scale=0.08)
        committed, _, _ = committed_stream(
            program, multipath_config(paths, org))
        assert committed == golden_stream(program)

    @pytest.mark.parametrize("name", ["li", "vortex"])
    def test_call_dense_workloads_match_golden(self, name):
        program = build_workload(name, seed=2, scale=0.08)
        committed, _, _ = committed_stream(
            program, multipath_config(4, StackOrganization.PER_PATH))
        assert committed == golden_stream(program)

    def test_kernels_match_golden(self):
        for program in (fibonacci_kernel(9), dispatch_kernel(120, 8)):
            committed, _, _ = committed_stream(
                program, multipath_config(4, StackOrganization.PER_PATH))
            assert committed == golden_stream(program)

    def test_final_registers_match_emulator(self):
        program = fibonacci_kernel(10)
        emulator = Emulator(program)
        emulator.run()
        _, _, cpu = committed_stream(
            program, multipath_config(2, StackOrganization.PER_PATH))
        assert cpu.final_regs == emulator.state.regs

    def test_architectural_memory_matches_emulator(self):
        program = build_workload("m88ksim", seed=1, scale=0.05)
        emulator = Emulator(program)
        emulator.run()
        _, _, cpu = committed_stream(
            program, multipath_config(2, StackOrganization.PER_PATH))
        for address, value in emulator.state.memory.items():
            assert cpu._arch_memory.get(address, 0) == value

    def test_single_context_degenerates_gracefully(self):
        """max_paths=1 never forks: still correct, just single-path."""
        program = fibonacci_kernel(9)
        committed, result, _ = committed_stream(
            program, multipath_config(1, StackOrganization.PER_PATH))
        assert committed == golden_stream(program)
        assert result.counter("forks") == 0


class TestSection5Claims:
    @pytest.fixture(scope="class")
    def results(self):
        program = build_workload("li", seed=1, scale=0.15)
        out = {}
        for org in StackOrganization:
            config = multipath_config(4, org, scale_frontend=True)
            _, result, _ = committed_stream(program, config)
            out[org] = result
        return out

    def test_forks_actually_happen(self, results):
        for result in results.values():
            assert result.counter("forks") > 10
            assert result.counter("fork_saved_mispredictions") > 0

    def test_unified_stack_collapses(self, results):
        assert results[StackOrganization.UNIFIED].return_accuracy < 0.7

    def test_full_checkpointing_does_not_fix_contention(self, results):
        """The paper: corruption is almost certain even with full-stack
        checkpointing, because contention is not a wrong-path problem."""
        checkpointed = results[StackOrganization.UNIFIED_CHECKPOINT]
        assert checkpointed.return_accuracy < 0.7

    def test_per_path_stacks_eliminate_contention(self, results):
        assert results[StackOrganization.PER_PATH].return_accuracy > 0.9

    def test_per_path_wins_on_ipc(self, results):
        per_path = results[StackOrganization.PER_PATH].ipc
        unified = results[StackOrganization.UNIFIED].ipc
        assert per_path > unified * 1.05

    def test_bubbles_are_retired(self, results):
        """Squashed entries drain through the RUU head (footnote 3)."""
        for result in results.values():
            assert result.counter("bubbles_retired") > 0


class TestPathContext:
    def test_ancestry_horizons(self):
        root = PathContext(0, 0, [0] * 32)
        child = PathContext(1, 100, None, parent=root)
        child.origin_seq = 50
        grandchild = PathContext(2, 200, None, parent=child)
        grandchild.origin_seq = 80
        horizons = list(grandchild.ancestry_horizons())
        assert horizons[0][0] is grandchild
        assert horizons[1] == (child, 80)
        assert horizons[2] == (root, 50)

    def test_can_see_respects_horizons(self):
        root = PathContext(0, 0, [0] * 32)
        child = PathContext(1, 100, None, parent=root)
        child.origin_seq = 50
        assert child.can_see(root, 49)
        assert not child.can_see(root, 50)
        assert child.can_see(child, 10 ** 9)

    def test_sibling_invisible(self):
        root = PathContext(0, 0, [0] * 32)
        a = PathContext(1, 0, None, parent=root)
        a.origin_seq = 10
        b = PathContext(2, 0, None, parent=root)
        b.origin_seq = 20
        assert not a.can_see(b, 15)
        assert not b.can_see(a, 15)

    def test_descendant_relation(self):
        root = PathContext(0, 0, [0] * 32)
        child = PathContext(1, 0, None, parent=root)
        assert child.is_descendant_of(root)
        assert child.is_descendant_of(child)
        assert not root.is_descendant_of(child)


class TestStackOrganizer:
    def _config(self):
        return baseline_config().predictor

    def test_unified_shares_one_stack(self):
        org = StackOrganizer(StackOrganization.UNIFIED, self._config())
        root = PathContext(0, 0, [0] * 32, ras=org.root_stack())
        assert org.root_stack() is org.stack_for_fork(root)

    def test_per_path_clones(self):
        org = StackOrganizer(StackOrganization.PER_PATH, self._config())
        stack = org.root_stack()
        stack.push(42)
        root = PathContext(0, 0, [0] * 32, ras=stack)
        child_stack = org.stack_for_fork(root)
        assert child_stack is not stack
        assert child_stack.top() == 42
        child_stack.push(7)
        assert stack.top() == 42

    def test_checkpoint_org_uses_full_stack(self):
        from repro.config import RepairMechanism
        org = StackOrganizer(StackOrganization.UNIFIED_CHECKPOINT, self._config())
        assert org.root_stack().repair is RepairMechanism.FULL_STACK

    def test_disabled_ras(self):
        config = dataclasses.replace(self._config(), ras_enabled=False)
        org = StackOrganizer(StackOrganization.PER_PATH, config)
        assert org.root_stack() is None

    def test_never_repairs_on_fork_resolution(self):
        for organization in StackOrganization:
            org = StackOrganizer(organization, self._config())
            assert not org.repair_on_fork_resolution()
