"""Unit tests for the experiment layer (core) and the CLI."""

import pytest

from repro.cli import main as cli_main
from repro.config import RepairMechanism, StackOrganization
from repro.core import (
    WorkloadSpec,
    build_program,
    fig_hit_rates,
    multipath_machine,
    run_cycle,
    run_fast,
    table1,
    table4_btb_only,
)
from repro.core.sweep import mechanism_sweep, multipath_sweep, stack_depth_sweep


class TestExperimentRunners:
    def test_build_program_is_cached(self):
        spec = WorkloadSpec("li", seed=1, scale=0.05)
        assert build_program(spec) is build_program(spec)

    def test_run_cycle_returns_result_and_cpu(self):
        program = build_program(WorkloadSpec("m88ksim", seed=1, scale=0.05))
        result, cpu = run_cycle(program)
        assert result.instructions > 100
        assert cpu.done

    def test_run_fast(self):
        program = build_program(WorkloadSpec("m88ksim", seed=1, scale=0.05))
        result = run_fast(program)
        assert result.instructions > 100

    def test_multipath_machine_scales_frontend(self):
        config = multipath_machine(4, StackOrganization.PER_PATH)
        assert config.core.fetch_width == 8
        assert config.multipath.max_paths == 4
        two = multipath_machine(2, StackOrganization.UNIFIED)
        assert two.core.fetch_width == 4


class TestTableBuilders:
    def test_table1_static(self):
        title, headers, rows = table1()
        assert "Table 1" in title
        assert len(rows) > 10

    def test_fig_hit_rates_shape(self):
        title, headers, rows = fig_hit_rates(
            names=("li",), seed=1, scale=0.05)
        assert len(rows) == 1
        assert len(rows[0]) == 5  # name + 4 mechanisms

    def test_table4_small(self):
        title, headers, rows = table4_btb_only(
            names=("li",), seed=1, scale=0.05)
        assert rows[0][1] < rows[0][2]  # BTB-only below with-RAS


class TestSweeps:
    @pytest.fixture(scope="class")
    def program(self):
        return build_program(WorkloadSpec("li", seed=1, scale=0.08))

    def test_mechanism_sweep(self, program):
        results = mechanism_sweep(
            program, (RepairMechanism.NONE, RepairMechanism.FULL_STACK))
        assert (results[RepairMechanism.NONE]["return_accuracy"]
                < results[RepairMechanism.FULL_STACK]["return_accuracy"])

    def test_stack_depth_sweep_monotone_ends(self, program):
        results = stack_depth_sweep(program, (1, 32))
        assert results[32] >= results[1]

    def test_multipath_sweep(self, program):
        rows = multipath_sweep(program, (2,),
                               (StackOrganization.PER_PATH,))
        assert rows[0]["paths"] == 2
        assert rows[0]["forks"] >= 0


class TestCli:
    def test_table1(self, capsys):
        assert cli_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "baseline machine model" in out

    def test_run_single_path(self, capsys):
        assert cli_main([
            "run", "--benchmark", "li", "--scale", "0.05",
            "--mechanism", "tos-pointer-contents",
        ]) == 0
        out = capsys.readouterr().out
        assert "ipc" in out

    def test_run_btb_only(self, capsys):
        assert cli_main([
            "run", "--benchmark", "li", "--scale", "0.05", "--no-ras",
        ]) == 0
        assert "return_accuracy" in capsys.readouterr().out

    def test_run_multipath(self, capsys):
        assert cli_main([
            "run", "--benchmark", "go", "--scale", "0.05",
            "--paths", "2", "--stacks", "per-path",
        ]) == 0
        assert "ipc" in capsys.readouterr().out

    def test_disasm(self, capsys):
        assert cli_main([
            "disasm", "--benchmark", "li", "--count", "5",
        ]) == 0
        assert "main:" in capsys.readouterr().out

    def test_hit_rates_with_names(self, capsys):
        assert cli_main([
            "hit-rates", "--names", "m88ksim", "--scale", "0.05",
        ]) == 0
        assert "m88ksim" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert cli_main(["table2", "--names", "ijpeg", "--scale", "0.05"]) == 0
        assert "ijpeg" in capsys.readouterr().out

    def test_smt_command(self, capsys):
        assert cli_main([
            "smt", "--benchmark", "li", "--threads", "2", "--scale", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "per-thread" in out and "shared" in out
