"""Unit tests for the return-address stack and every repair mechanism.

The scripted scenarios below are the paper's corruption cases:

* wrong-path *pushes* move the TOS pointer but write above the old top,
  so restoring the pointer alone fully repairs them;
* a wrong-path *pop then push* overwrites the old top entry, which only
  pointer+contents (or better) repairs;
* deeper pop/push sequences corrupt entries below the top, which only
  full-stack checkpointing (or self-checkpointing) repairs.
"""

import pytest

from repro.bpred import CircularRas, LinkedRas, make_ras
from repro.config import RepairMechanism
from repro.errors import ConfigError


def filled(repair, entries=8, values=(100, 200, 300)):
    """A stack holding ``values`` (last one on top)."""
    ras = CircularRas(entries, repair)
    for value in values:
        ras.push(value)
    return ras


class TestBasicStack:
    def test_lifo_order(self):
        ras = CircularRas(8, RepairMechanism.NONE)
        for value in (1, 2, 3):
            ras.push(value)
        assert [ras.pop() for _ in range(3)] == [3, 2, 1]

    def test_top_peeks_without_popping(self):
        ras = filled(RepairMechanism.NONE)
        assert ras.top() == 300
        assert ras.top() == 300
        assert ras.pop() == 300

    def test_overflow_wraps_and_loses_oldest(self):
        ras = CircularRas(2, RepairMechanism.NONE)
        for value in (1, 2, 3):
            ras.push(value)
        assert ras.pop() == 3
        assert ras.pop() == 2
        # entry 1 was overwritten by the wrap
        assert ras.pop() != 1
        assert ras.stats["overflows"].value == 1

    def test_underflow_counted(self):
        ras = CircularRas(4, RepairMechanism.NONE)
        ras.pop()
        assert ras.stats["underflows"].value == 1

    def test_depth_tracks_occupancy(self):
        ras = CircularRas(4, RepairMechanism.NONE)
        ras.push(1)
        ras.push(2)
        assert ras.depth == 2
        ras.pop()
        assert ras.depth == 1

    def test_logical_entries_top_first(self):
        ras = filled(RepairMechanism.NONE)
        assert ras.logical_entries() == [300, 200, 100]

    def test_single_entry_stack_allowed(self):
        ras = CircularRas(1, RepairMechanism.NONE)
        ras.push(10)
        ras.push(20)
        assert ras.pop() == 20

    def test_zero_entries_rejected(self):
        with pytest.raises(ConfigError):
            CircularRas(0, RepairMechanism.NONE)

    def test_self_checkpoint_requires_linked(self):
        with pytest.raises(ConfigError):
            CircularRas(8, RepairMechanism.SELF_CHECKPOINT)


class TestNoRepair:
    def test_checkpoint_is_none(self):
        ras = filled(RepairMechanism.NONE)
        assert ras.checkpoint() is None

    def test_wrong_path_pushes_persist(self):
        ras = filled(RepairMechanism.NONE)
        token = ras.checkpoint()
        ras.push(666)          # wrong path
        ras.restore(token)     # no-op
        assert ras.pop() == 666


class TestTosPointerRepair:
    def test_repairs_wrong_path_pushes(self):
        ras = filled(RepairMechanism.TOS_POINTER)
        token = ras.checkpoint()
        ras.push(666)
        ras.push(667)
        ras.restore(token)
        # pushes wrote above the old top; pointer restore fully repairs.
        assert ras.pop() == 300
        assert ras.pop() == 200

    def test_repairs_wrong_path_pops(self):
        ras = filled(RepairMechanism.TOS_POINTER)
        token = ras.checkpoint()
        ras.pop()
        ras.pop()
        ras.restore(token)
        # pops destroy nothing in a circular buffer; pointer suffices.
        assert ras.pop() == 300

    def test_cannot_repair_pop_then_push(self):
        """The canonical failure: overwritten top entry is unrecoverable."""
        ras = filled(RepairMechanism.TOS_POINTER)
        token = ras.checkpoint()
        ras.pop()              # wrong path consumes 300
        ras.push(666)          # wrong path overwrites the top slot
        ras.restore(token)
        assert ras.pop() == 666   # corrupted!
        assert ras.pop() == 200   # below the top is intact


class TestTosPointerAndContentsRepair:
    def test_repairs_pop_then_push(self):
        ras = filled(RepairMechanism.TOS_POINTER_AND_CONTENTS)
        token = ras.checkpoint()
        ras.pop()
        ras.push(666)
        ras.restore(token)
        assert ras.pop() == 300   # the paper's mechanism saves the day
        assert ras.pop() == 200

    def test_cannot_repair_deeper_corruption(self):
        """Two pops + two pushes corrupt below the checkpointed top."""
        ras = filled(RepairMechanism.TOS_POINTER_AND_CONTENTS)
        token = ras.checkpoint()
        ras.pop()
        ras.pop()
        ras.push(666)   # overwrites the 200 slot
        ras.push(667)   # overwrites the 300 slot
        ras.restore(token)
        assert ras.pop() == 300   # top repaired from the checkpoint
        assert ras.pop() == 666   # second entry corrupted

    def test_nested_checkpoints_restore_in_reverse(self):
        ras = filled(RepairMechanism.TOS_POINTER_AND_CONTENTS)
        outer = ras.checkpoint()
        ras.push(400)
        inner = ras.checkpoint()
        ras.pop()
        ras.push(666)
        ras.restore(inner)
        assert ras.top() == 400
        ras.restore(outer)
        assert ras.top() == 300


class TestFullStackRepair:
    def test_repairs_arbitrary_corruption(self):
        ras = filled(RepairMechanism.FULL_STACK)
        token = ras.checkpoint()
        for _ in range(3):
            ras.pop()
        for value in (61, 62, 63, 64):
            ras.push(value)
        ras.restore(token)
        assert [ras.pop() for _ in range(3)] == [300, 200, 100]


class TestValidBits:
    def test_detects_overwritten_top(self):
        ras = filled(RepairMechanism.VALID_BITS)
        token = ras.checkpoint()
        ras.pop()
        ras.push(666)     # wrong-path write into the old top slot
        ras.restore(token)
        # the slot is known-corrupt: no prediction rather than a wrong one
        assert ras.pop() is None
        assert ras.pop() == 200   # below is still valid

    def test_plain_pushes_still_valid_after_restore(self):
        ras = filled(RepairMechanism.VALID_BITS)
        token = ras.checkpoint()
        ras.push(666)
        ras.restore(token)
        assert ras.pop() == 300

    def test_empty_slot_invalid(self):
        ras = CircularRas(4, RepairMechanism.VALID_BITS)
        assert ras.pop() is None


class TestCloning:
    def test_clone_is_independent(self):
        ras = filled(RepairMechanism.TOS_POINTER_AND_CONTENTS)
        twin = ras.clone()
        twin.push(999)
        assert ras.top() == 300
        assert twin.top() == 999

    def test_clone_preserves_contents(self):
        ras = filled(RepairMechanism.FULL_STACK)
        twin = ras.clone()
        assert twin.logical_entries() == ras.logical_entries()


class TestLinkedRas:
    def test_lifo(self):
        ras = LinkedRas(8)
        for value in (1, 2, 3):
            ras.push(value)
        assert [ras.pop() for _ in range(3)] == [3, 2, 1]

    def test_empty_pop_returns_none(self):
        ras = LinkedRas(4)
        assert ras.pop() is None
        assert ras.stats["underflows"].value == 1

    def test_pointer_restore_recovers_popped_entries(self):
        """Self-checkpointing: pops never destroy, pushes never overwrite."""
        ras = LinkedRas(8, overprovision=4)
        for value in (100, 200, 300):
            ras.push(value)
        token = ras.checkpoint()
        ras.pop()
        ras.pop()
        ras.push(666)
        ras.push(667)
        ras.restore(token)
        # Full logical stack is back — the effect of full checkpointing.
        assert [ras.pop() for _ in range(3)] == [300, 200, 100]

    def test_pool_recycling_loses_old_entries(self):
        """With a tiny pool, wrong-path pushes recycle live slots."""
        ras = LinkedRas(2, overprovision=1)   # pool of 2 physical slots
        ras.push(100)
        ras.push(200)
        token = ras.checkpoint()
        ras.push(666)   # recycles the slot holding 100
        ras.restore(token)
        values = [ras.pop(), ras.pop()]
        assert values[0] == 200
        assert values[1] != 100   # recycled away
        assert ras.stats["overflows"].value >= 1

    def test_clone_independent(self):
        ras = LinkedRas(8)
        ras.push(1)
        twin = ras.clone()
        twin.push(2)
        assert ras.top() == 1
        assert twin.top() == 2

    def test_logical_entries(self):
        ras = LinkedRas(8)
        for value in (5, 6):
            ras.push(value)
        assert ras.logical_entries() == [6, 5]

    def test_bad_sizes(self):
        with pytest.raises(ConfigError):
            LinkedRas(0)
        with pytest.raises(ConfigError):
            LinkedRas(4, overprovision=0)


class TestFactory:
    def test_linked_for_self_checkpoint(self):
        ras = make_ras(8, RepairMechanism.SELF_CHECKPOINT)
        assert isinstance(ras, LinkedRas)

    @pytest.mark.parametrize("mechanism", [
        RepairMechanism.NONE,
        RepairMechanism.TOS_POINTER,
        RepairMechanism.TOS_POINTER_AND_CONTENTS,
        RepairMechanism.FULL_STACK,
        RepairMechanism.VALID_BITS,
    ])
    def test_circular_for_the_rest(self, mechanism):
        ras = make_ras(8, mechanism)
        assert isinstance(ras, CircularRas)
        assert ras.repair is mechanism


class TestContentsDepth:
    """The paper's 'save an arbitrary number of entries' generalisation."""

    def test_depth_one_is_default_behaviour(self):
        a = CircularRas(8, RepairMechanism.TOS_POINTER_AND_CONTENTS)
        b = CircularRas(8, RepairMechanism.TOS_POINTER_AND_CONTENTS,
                        contents_depth=1)
        for ras in (a, b):
            ras.push(100)
            ras.push(200)
        token_a, token_b = a.checkpoint(), b.checkpoint()
        for ras, token in ((a, token_a), (b, token_b)):
            ras.pop()
            ras.push(666)
            ras.restore(token)
        assert a.logical_entries() == b.logical_entries()

    def test_depth_two_repairs_second_entry(self):
        ras = CircularRas(8, RepairMechanism.TOS_POINTER_AND_CONTENTS,
                          contents_depth=2)
        for value in (100, 200, 300):
            ras.push(value)
        token = ras.checkpoint()
        ras.pop()
        ras.pop()
        ras.push(666)   # overwrites the 200 slot
        ras.push(667)   # overwrites the 300 slot
        ras.restore(token)
        assert ras.pop() == 300
        assert ras.pop() == 200   # depth-1 could not repair this one

    def test_depth_two_cannot_repair_third_entry(self):
        ras = CircularRas(8, RepairMechanism.TOS_POINTER_AND_CONTENTS,
                          contents_depth=2)
        for value in (100, 200, 300):
            ras.push(value)
        token = ras.checkpoint()
        for _ in range(3):
            ras.pop()
        for value in (61, 62, 63):
            ras.push(value)
        ras.restore(token)
        assert ras.pop() == 300
        assert ras.pop() == 200
        assert ras.pop() == 61    # below the saved window: corrupted

    def test_full_depth_equals_full_stack(self):
        contents = CircularRas(4, RepairMechanism.TOS_POINTER_AND_CONTENTS,
                               contents_depth=4)
        full = CircularRas(4, RepairMechanism.FULL_STACK)
        for ras in (contents, full):
            for value in (1, 2, 3, 4):
                ras.push(value)
        token_c, token_f = contents.checkpoint(), full.checkpoint()
        for ras, token in ((contents, token_c), (full, token_f)):
            for _ in range(4):
                ras.pop()
            for value in (9, 8, 7):
                ras.push(value)
            ras.restore(token)
        assert contents.logical_entries() == full.logical_entries()

    def test_depth_validated(self):
        with pytest.raises(ConfigError):
            CircularRas(4, RepairMechanism.TOS_POINTER_AND_CONTENTS,
                        contents_depth=5)
        with pytest.raises(ConfigError):
            CircularRas(4, RepairMechanism.TOS_POINTER_AND_CONTENTS,
                        contents_depth=0)

    def test_clone_preserves_depth(self):
        ras = CircularRas(8, RepairMechanism.TOS_POINTER_AND_CONTENTS,
                          contents_depth=3)
        assert ras.clone().contents_depth == 3

    def test_config_helper(self):
        from repro.config import baseline_config
        config = baseline_config().with_contents_depth(4)
        assert config.predictor.repair_contents_depth == 4
        assert (config.predictor.ras_repair
                is RepairMechanism.TOS_POINTER_AND_CONTENTS)

    def test_config_depth_validated(self):
        from repro.config import BranchPredictorConfig
        with pytest.raises(ConfigError):
            BranchPredictorConfig(ras_entries=8, repair_contents_depth=9)
