"""Tests for the parallel experiment executor and the result cache."""

import json

import pytest

from repro.cli import main as cli_main
from repro.config import RepairMechanism
from repro.config.defaults import baseline_config
from repro.core import ExperimentJob, JobResult, ResultCache, SweepExecutor
from repro.core import executor as executor_module
from repro.core.experiment import WorkloadSpec, build_program
from repro.core.sweep import mechanism_sweep, stack_depth_sweep
from repro.core.tables import fig_speedup, table3_baseline

SPEC = WorkloadSpec("li", seed=1, scale=0.05)
MECHANISMS = (RepairMechanism.NONE, RepairMechanism.TOS_POINTER_AND_CONTENTS)


def _jobs():
    return [ExperimentJob(SPEC, baseline_config().with_repair(m), "cycle")
            for m in MECHANISMS]


class TestFingerprint:
    def test_stable_across_equal_configs(self):
        assert (baseline_config().fingerprint()
                == baseline_config().fingerprint())

    def test_differs_on_any_field(self):
        base = baseline_config()
        assert base.fingerprint() != base.without_ras().fingerprint()
        assert (base.fingerprint()
                != base.with_ras_entries(16).fingerprint())
        assert (base.with_repair(RepairMechanism.NONE).fingerprint()
                != base.with_repair(RepairMechanism.FULL_STACK).fingerprint())

    def test_construction_path_irrelevant(self):
        direct = baseline_config().with_repair(
            RepairMechanism.TOS_POINTER_AND_CONTENTS)
        assert direct.fingerprint() == baseline_config().fingerprint()


class TestJobs:
    def test_unknown_engine_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            ExperimentJob(SPEC, baseline_config(), "warp-drive")

    def test_program_workload_is_uncacheable(self):
        job = ExperimentJob(build_program(SPEC), baseline_config(), "cycle")
        assert not job.cacheable
        assert job.cache_key() is None

    def test_spec_workload_key_is_stable_and_input_sensitive(self):
        job = ExperimentJob(SPEC, baseline_config(), "cycle")
        assert job.cache_key() == job.cache_key()
        other_engine = ExperimentJob(SPEC, baseline_config(), "fast")
        other_config = ExperimentJob(SPEC, baseline_config().without_ras(),
                                     "cycle")
        other_spec = ExperimentJob(WorkloadSpec("li", seed=2, scale=0.05),
                                   baseline_config(), "cycle")
        keys = {job.cache_key(), other_engine.cache_key(),
                other_config.cache_key(), other_spec.cache_key()}
        assert len(keys) == 4


class TestExecutor:
    def test_parallel_matches_serial_rows(self):
        serial = SweepExecutor(jobs=1, cache=None).run(_jobs())
        parallel = SweepExecutor(jobs=2, cache=None).run(_jobs())
        assert [r.as_dict() for r in serial] == [r.as_dict() for r in parallel]

    def test_table_builder_parallel_identical(self):
        serial = fig_speedup(names=("li",), seed=1, scale=0.05,
                             executor=SweepExecutor(jobs=1, cache=None))
        parallel = fig_speedup(names=("li",), seed=1, scale=0.05,
                               executor=SweepExecutor(jobs=2, cache=None))
        assert serial == parallel

    def test_engines_populate_expected_stats(self):
        cycle, = SweepExecutor(cache=None).run(
            [ExperimentJob(SPEC, baseline_config(), "cycle")])
        assert cycle.instructions > 100
        assert cycle.btb_hit_rate is not None
        assert cycle.counter("mispredictions") > 0
        fast, = SweepExecutor(cache=None).run(
            [ExperimentJob(SPEC, baseline_config(), "fast")])
        assert fast.return_accuracy is not None and fast.ipc > 0


class TestResultCache:
    def test_hit_skips_simulation(self, tmp_path):
        cold = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        first = cold.run(_jobs())
        assert cold.cache_misses == len(MECHANISMS)
        before = executor_module.simulation_calls()
        warm = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        second = warm.run(_jobs())
        assert executor_module.simulation_calls() == before  # zero re-sims
        assert warm.cache_hits == len(MECHANISMS) and warm.cache_misses == 0
        assert [r.as_dict() for r in first] == [r.as_dict() for r in second]

    def test_corrupted_entry_is_a_miss_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.run(_jobs())
        entries = list(cache.root.rglob("*.json"))
        assert len(entries) == len(MECHANISMS)
        entries[0].write_text("{ not json !!")
        entries[1].write_text(json.dumps({"key": "stale", "result": {}}))
        rerun = SweepExecutor(jobs=1, cache=cache)
        results = rerun.run(_jobs())
        assert rerun.cache_misses == 2  # both bad entries re-simulated
        assert results[0].instructions > 0

    def test_roundtrip_preserves_none_rates(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = JobResult(engine="cycle", instructions=1, cycles=2.0,
                           ipc=0.5, counters={"mispredictions": 3},
                           rates={"indirect_accuracy": None,
                                  "return_accuracy": 0.75})
        key = "ab" + "0" * 62
        cache.put(key, result)
        loaded = cache.get(key)
        assert loaded == result

    def test_program_jobs_never_touch_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.run([ExperimentJob(build_program(SPEC), baseline_config(),
                                    "cycle")])
        assert executor.cache_hits == 0 and executor.cache_misses == 0
        assert not list(cache.root.rglob("*.json"))


class TestSweepsThroughExecutor:
    def test_mechanism_sweep_accepts_spec_and_program(self):
        executor = SweepExecutor(cache=None)
        by_spec = mechanism_sweep(SPEC, MECHANISMS, executor=executor)
        by_program = mechanism_sweep(build_program(SPEC), MECHANISMS,
                                     executor=executor)
        assert by_spec == by_program

    def test_stack_depth_sweep_shares_one_build(self):
        results = stack_depth_sweep(SPEC, (1, 32),
                                    executor=SweepExecutor(cache=None))
        assert results[32] >= results[1]
        # the memoisation contract: both jobs resolved the same Program
        assert build_program(SPEC) is build_program(SPEC)


class TestCliFlags:
    def test_jobs_and_json_flags(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "speedup.json"
        assert cli_main([
            "speedup", "--names", "li", "--scale", "0.05",
            "--jobs", "2", "--json", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        assert payload["command"] == "speedup"
        assert payload["headers"][0] == "benchmark"
        assert payload["rows"][0][0] == "li"
        assert payload["scale"] == 0.05

    def test_no_cache_leaves_cache_dir_empty(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli_main([
            "hit-rates", "--names", "li", "--scale", "0.05", "--no-cache",
        ]) == 0
        assert not (tmp_path / "cache").exists()

    def test_warm_cli_rerun_simulates_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli_main(["speedup", "--names", "li", "--scale", "0.05"]) == 0
        before = executor_module.simulation_calls()
        assert cli_main(["speedup", "--names", "li", "--scale", "0.05"]) == 0
        assert executor_module.simulation_calls() == before


class TestTables:
    def test_table3_btb_rate_survives_summarisation(self):
        title, headers, rows = table3_baseline(
            names=("li",), seed=1, scale=0.05,
            executor=SweepExecutor(cache=None))
        btb_column = headers.index("btb hit %")
        assert rows[0][btb_column] is not None
        assert 0.0 < rows[0][btb_column] <= 100.0
