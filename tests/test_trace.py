"""Unit tests for the trace subsystem."""

import io

import pytest

from repro.config import RepairMechanism
from repro.emu import Emulator
from repro.isa.opcodes import ControlClass
from repro.trace import (
    ControlFlowEvent,
    TraceRasEvaluator,
    TraceReader,
    TraceWriter,
    record_trace,
)
from repro.trace.format import TraceFormatError
from repro.workloads import build_workload
from repro.workloads.kernels import fibonacci_kernel, loop_sum_kernel


class TestFormatRoundtrip:
    def _events(self):
        return [
            ControlFlowEvent(ControlClass.CALL_DIRECT, 100, 400, gap=3),
            ControlFlowEvent(ControlClass.RETURN, 440, 104, gap=9),
            ControlFlowEvent(ControlClass.COND_BRANCH, 104, 108, gap=0),
        ]

    def test_write_read_roundtrip(self):
        buffer = io.BytesIO()
        writer = TraceWriter(buffer)
        for event in self._events():
            writer.append(event)
        assert writer.close() == 3
        buffer.seek(0)
        reader = TraceReader(buffer)
        assert reader.count == 3
        assert reader.read_all() == self._events()

    def test_taken_property(self):
        assert ControlFlowEvent(ControlClass.CALL_DIRECT, 100, 400).taken
        assert not ControlFlowEvent(ControlClass.COND_BRANCH, 100, 104).taken

    def test_bad_magic_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceReader(io.BytesIO(b"NOTATRACE" + b"\x00" * 16))

    def test_truncated_header_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceReader(io.BytesIO(b"RA"))

    def test_truncated_body_rejected(self):
        buffer = io.BytesIO()
        writer = TraceWriter(buffer)
        writer.append(self._events()[0])
        writer.close()
        truncated = buffer.getvalue()[:-2]
        reader = TraceReader(io.BytesIO(truncated))
        with pytest.raises(TraceFormatError):
            reader.read_all()


class TestRecording:
    def test_event_count_matches_emulator(self):
        program = fibonacci_kernel(8)
        stats = Emulator(program).run()
        trace = record_trace(program)
        events = TraceReader(io.BytesIO(trace)).read_all()
        expected_controls = (stats.calls + stats.returns
                             + stats.cond_branches + stats.direct_jumps
                             + stats.indirect_jumps)
        assert len(events) == expected_controls

    def test_gaps_account_for_every_instruction(self):
        program = loop_sum_kernel(20)
        stats = Emulator(program).run()
        events = TraceReader(io.BytesIO(record_trace(program))).read_all()
        # every instruction is either an event or inside a gap, except
        # the trailing non-control tail (here: the halt).
        covered = len(events) + sum(e.gap for e in events)
        assert covered <= stats.instructions
        assert covered >= stats.instructions - 2

    def test_record_to_file(self, tmp_path):
        path = tmp_path / "t.trace"
        count = record_trace(fibonacci_kernel(6), str(path))
        with open(path, "rb") as stream:
            reader = TraceReader(stream)
            assert reader.count == count
            assert len(reader.read_all()) == count


class TestTraceRasEvaluator:
    @pytest.fixture(scope="class")
    def evaluator(self):
        program = build_workload("vortex", seed=1, scale=0.1)
        return TraceRasEvaluator(record_trace(program))

    def test_calls_balance_returns(self, evaluator):
        calls, returns = evaluator.call_return_counts()
        assert calls == returns > 50

    def test_large_stack_is_perfect_without_wrong_paths(self, evaluator):
        result = evaluator.evaluate(ras_entries=128)
        assert result.accuracy == pytest.approx(1.0)
        assert result.overflows == 0

    def test_tiny_stack_overflows(self, evaluator):
        result = evaluator.evaluate(ras_entries=2)
        assert result.overflows > 0
        assert result.accuracy < 1.0

    def test_depth_sweep_monotone_ends(self, evaluator):
        sweep = evaluator.depth_sweep((1, 4, 64))
        assert sweep[64].accuracy >= sweep[1].accuracy

    def test_accepts_event_list(self):
        events = [
            ControlFlowEvent(ControlClass.CALL_DIRECT, 0, 100),
            ControlFlowEvent(ControlClass.RETURN, 140, 4),
        ]
        result = TraceRasEvaluator(events).evaluate(ras_entries=8)
        assert result.returns == 1
        assert result.accuracy == pytest.approx(1.0)

    def test_empty_trace(self):
        result = TraceRasEvaluator([]).evaluate()
        assert result.returns == 0
        assert result.accuracy is None

    def test_linked_ras_mechanism(self, evaluator):
        result = evaluator.evaluate(
            ras_entries=64, mechanism=RepairMechanism.SELF_CHECKPOINT)
        assert result.accuracy > 0.99
