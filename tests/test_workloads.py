"""Unit tests for workload generation and characterisation."""

import pytest

from repro.emu import Emulator
from repro.errors import WorkloadError
from repro.isa.opcodes import ControlClass
from repro.workloads import (
    BENCHMARK_NAMES,
    DeterministicRng,
    build_workload,
    characterize,
    dispatch_kernel,
    profile_for,
    stack_stress_kernel,
)
from repro.workloads.generator import WorkloadGenerator, _depth_mask
from repro.workloads.profiles import all_profiles


class TestRng:
    def test_determinism(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.bits(32) for _ in range(4)] != [b.bits(32) for _ in range(4)]

    def test_randint_bounds(self):
        rng = DeterministicRng(3)
        values = [rng.randint(5, 9) for _ in range(200)]
        assert min(values) == 5
        assert max(values) == 9

    def test_randint_empty_range(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).randint(3, 2)

    def test_random_in_unit_interval(self):
        rng = DeterministicRng(4)
        assert all(0.0 <= rng.random() < 1.0 for _ in range(100))

    def test_weighted_choice_respects_weights(self):
        rng = DeterministicRng(5)
        picks = [rng.weighted_choice([("a", 0.99), ("b", 0.01)])
                 for _ in range(200)]
        assert picks.count("a") > 150

    def test_weighted_choice_bad_weights(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).weighted_choice([("a", 0.0)])

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(6)
        items = list(range(30))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_sample_indices_distinct(self):
        rng = DeterministicRng(7)
        sample = rng.sample_indices(50, 10)
        assert len(set(sample)) == 10

    def test_sample_too_large(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).sample_indices(3, 4)

    def test_choice_empty(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).choice([])


class TestProfiles:
    def test_all_eight_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 8
        assert set(BENCHMARK_NAMES) == {
            "compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex",
        }

    def test_profile_lookup(self):
        assert profile_for("li").recursive_functions > 0

    def test_unknown_profile(self):
        with pytest.raises(WorkloadError):
            profile_for("nonesuch")

    def test_all_profiles_order(self):
        assert [p.name for p in all_profiles()] == list(BENCHMARK_NAMES)

    def test_footprints_are_powers_of_two(self):
        # the generator masks heap indices, which requires powers of two.
        for profile in all_profiles():
            n = profile.mem_footprint_words
            assert n & (n - 1) == 0, profile.name


class TestDepthMask:
    @pytest.mark.parametrize("max_depth,expected", [
        (1, 1), (2, 1), (3, 3), (6, 3), (7, 7), (24, 15), (31, 31),
    ])
    def test_mask_never_exceeds(self, max_depth, expected):
        assert _depth_mask(max_depth) == expected


class TestGenerator:
    def test_deterministic_across_calls(self):
        a = build_workload("li", seed=9)
        b = build_workload("li", seed=9)
        assert len(a) == len(b)
        assert [repr(i) for i in a.text[:200]] == [repr(i) for i in b.text[:200]]

    def test_seeds_change_program(self):
        a = build_workload("li", seed=1)
        b = build_workload("li", seed=2)
        assert [repr(i) for i in a.text] != [repr(i) for i in b.text]

    def test_scale_changes_dynamic_length_only(self):
        short = characterize(build_workload("m88ksim", seed=1, scale=0.25),
                             max_instructions=2_000_000)
        long = characterize(build_workload("m88ksim", seed=1, scale=1.0),
                            max_instructions=2_000_000)
        assert long.instructions > 2 * short.instructions
        assert long.static_instructions == short.static_instructions

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(profile_for("li"), scale=0.0)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_benchmark_terminates(self, name):
        # Small scale keeps the suite fast; termination at any scale is
        # structural (DAG call graph + bounded recursion).
        program = build_workload(name, seed=1, scale=0.1)
        stats = Emulator(program, max_instructions=2_000_000).run()
        assert stats.halted
        assert stats.calls == stats.returns

    def test_calls_and_returns_balance_across_seeds(self):
        for seed in (3, 4):
            program = build_workload("vortex", seed=seed, scale=0.1)
            stats = Emulator(program, max_instructions=2_000_000).run()
            assert stats.calls == stats.returns

    def test_li_is_call_dense_and_deep(self):
        li = characterize(build_workload("li", seed=1, scale=0.5),
                          max_instructions=2_000_000)
        ijpeg = characterize(build_workload("ijpeg", seed=1, scale=0.5),
                             max_instructions=2_000_000)
        assert li.call_pct > 2 * ijpeg.call_pct
        assert li.max_call_depth > ijpeg.max_call_depth

    def test_vortex_chains_deep(self):
        vortex = characterize(build_workload("vortex", seed=1, scale=0.5),
                              max_instructions=2_000_000)
        assert vortex.max_call_depth >= 8

    def test_indirect_jumps_present_in_perl(self):
        # at least one seed exercises the dispatch tables
        total = 0.0
        for seed in (1, 2, 3):
            c = characterize(build_workload("perl", seed=seed, scale=0.5),
                             max_instructions=2_000_000)
            total += c.indirect_jump_pct
        assert total > 0.0


class TestKernelPrograms:
    def test_stack_stress_depth(self):
        program = stack_stress_kernel(depth=16, repeats=2)
        stats = Emulator(program).run()
        # the initial call to dive is depth 1; recursion adds `depth` more.
        assert stats.call_depth.max_key == 17
        assert stats.calls == 2 * 17

    def test_dispatch_kernel_indirect_jumps(self):
        program = dispatch_kernel(iterations=64, table_size=8)
        stats = Emulator(program).run()
        assert stats.indirect_jumps >= 64

    def test_dispatch_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            dispatch_kernel(table_size=6)

    def test_kernels_have_balanced_calls(self):
        for program in (stack_stress_kernel(8, 2), dispatch_kernel(32, 4)):
            stats = Emulator(program).run()
            assert stats.calls == stats.returns


class TestCharacterize:
    def test_character_fields(self):
        c = characterize(build_workload("go", seed=1, scale=0.1),
                         max_instructions=2_000_000)
        assert c.instructions > 500
        assert 0 < c.cond_branch_pct < 30
        assert c.call_pct == pytest.approx(c.return_pct, rel=0.01)
        row = c.as_row()
        assert row[0] == "go"
        assert len(row) == 11
