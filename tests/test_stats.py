"""Unit tests for the statistics primitives."""

import pytest

from repro.stats import Counter, Histogram, Rate, StatGroup, format_stat_group, format_table


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_increment_default(self):
        c = Counter("c")
        c.increment()
        c.increment()
        assert c.value == 2

    def test_increment_amount(self):
        c = Counter("c")
        c.increment(5)
        assert c.value == 5

    def test_reset(self):
        c = Counter("c")
        c.increment(3)
        c.reset()
        assert c.value == 0

    def test_int_conversion(self):
        c = Counter("c")
        c.increment(7)
        assert int(c) == 7


class TestRate:
    def test_undefined_before_events(self):
        assert Rate("r").value is None

    def test_hit_rate(self):
        r = Rate("r")
        for outcome in (True, True, False, True):
            r.record(outcome)
        assert r.value == pytest.approx(0.75)
        assert r.misses == 1

    def test_record_many(self):
        r = Rate("r")
        r.record_many(30, 40)
        assert r.value == pytest.approx(0.75)

    def test_reset(self):
        r = Rate("r")
        r.record(True)
        r.reset()
        assert r.value is None


class TestHistogram:
    def test_empty(self):
        h = Histogram("h")
        assert h.total == 0
        assert h.mean is None
        assert h.max_key is None
        assert h.percentile(0.5) is None

    def test_mean_and_max(self):
        h = Histogram("h")
        h.record(1, 2)
        h.record(3)
        assert h.total == 3
        assert h.mean == pytest.approx((1 + 1 + 3) / 3)
        assert h.max_key == 3

    def test_percentile(self):
        h = Histogram("h")
        for key in range(1, 11):
            h.record(key)
        assert h.percentile(0.5) == 5
        assert h.percentile(1.0) == 10

    def test_items_sorted(self):
        h = Histogram("h")
        h.record(5)
        h.record(1)
        h.record(3)
        assert [k for k, _ in h.items()] == [1, 3, 5]


class TestStatGroup:
    def test_registers_and_lookups(self):
        g = StatGroup("g")
        c = g.counter("hits")
        r = g.rate("accuracy")
        assert g["hits"] is c
        assert g["accuracy"] is r
        assert "hits" in g
        assert set(g.names()) == {"hits", "accuracy"}

    def test_duplicate_name_rejected(self):
        g = StatGroup("g")
        g.counter("x")
        with pytest.raises(ValueError):
            g.rate("x")

    def test_reset_propagates(self):
        g = StatGroup("g")
        c = g.counter("c")
        c.increment(4)
        g.reset()
        assert c.value == 0

    def test_format_stat_group(self):
        g = StatGroup("demo")
        g.counter("events").increment(3)
        g.rate("rate").record(True)
        g.histogram("depth").record(2)
        text = format_stat_group(g)
        assert "demo" in text
        assert "events" in text
        assert "depth.mean" in text


class TestFormatTable:
    def test_alignment_and_values(self):
        text = format_table(
            ["name", "value"],
            [["a", 1.23456], ["bb", None]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.235" in text
        assert "n/a" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_bool_rendering(self):
        text = format_table(["x"], [[True], [False]])
        assert "yes" in text and "no" in text
