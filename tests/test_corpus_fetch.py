"""Tests for trace-set manifests, resumable fetch, parallel ingestion.

Everything runs offline: "remote" traces are relative paths resolved
against the manifest's directory, exactly how the corpus-smoke CI job
builds its corpus from the checked-in sample trace
(docs/validation.md §3).
"""

import hashlib
import json
import pathlib

import pytest

from repro.corpus import (
    CorpusError,
    CorpusStore,
    ImportStats,
    TraceSetManifest,
    champsim_events,
    check_manifest,
    fetch_and_build,
    fetch_entry,
    fetch_set,
    ingest_traces,
)
from repro.corpus.champsim import (
    RECORD,
    REG_FLAGS,
    REG_INSTRUCTION_POINTER,
    REG_STACK_POINTER,
)

DATA = pathlib.Path(__file__).parent / "data"
SAMPLE_CHAMPSIM = DATA / "sample_champsim.trace.xz"

SAMPLE_SHA = hashlib.sha256(SAMPLE_CHAMPSIM.read_bytes()).hexdigest()


def _write_manifest(path, traces, name="testset", schema=1):
    path.write_text(json.dumps({
        "schema": schema,
        "name": name,
        "description": "test trace set",
        "traces": traces,
    }))
    return path


def _sample_manifest(tmp_path, trace_name="sample"):
    source = tmp_path / "source.trace.xz"
    source.write_bytes(SAMPLE_CHAMPSIM.read_bytes())
    return _write_manifest(tmp_path / "set.json", [
        {"name": trace_name, "url": "source.trace.xz",
         "sha256": SAMPLE_SHA, "bytes": source.stat().st_size},
    ])


class TestManifestValidation:
    def test_check_manifest_accepts_the_checked_in_set(self):
        manifest = check_manifest(
            pathlib.Path("benchmarks/tracesets/sample.json"))
        assert manifest.name == "sample"
        assert manifest.traces[0].sha256 == SAMPLE_SHA

    def test_all_problems_reported_at_once(self, tmp_path):
        path = _write_manifest(tmp_path / "bad.json", [
            {"name": "../evil", "url": "a.xz", "sha256": "0" * 64},
            {"name": "ok", "url": "ftp://host/x", "sha256": "0" * 64},
            {"name": "ok", "url": "b.xz", "sha256": "nothex"},
        ])
        with pytest.raises(CorpusError) as error:
            check_manifest(path)
        message = str(error.value)
        assert "bad shard name" in message
        assert "scheme 'ftp'" in message
        assert "duplicate trace name 'ok'" in message
        assert "64 lowercase hex" in message

    def test_unsupported_schema_and_shapes(self, tmp_path):
        with pytest.raises(CorpusError, match="schema"):
            check_manifest(_write_manifest(
                tmp_path / "s.json", [], schema=99))
        with pytest.raises(CorpusError, match="non-empty"):
            check_manifest(_write_manifest(tmp_path / "e.json", []))
        with pytest.raises(CorpusError, match="not valid JSON"):
            (tmp_path / "j.json").write_text("{")
            check_manifest(tmp_path / "j.json")

    def test_entry_filename_keeps_compression_suffixes(self, tmp_path):
        manifest = TraceSetManifest.load(_sample_manifest(tmp_path))
        entry = manifest.entry("sample")
        assert entry.filename == "sample.trace.xz"
        with pytest.raises(CorpusError, match="no trace named"):
            manifest.entry("missing")


class TestFetch:
    def test_fetch_verifies_and_skips_when_present(self, tmp_path):
        manifest = TraceSetManifest.load(_sample_manifest(tmp_path))
        dest = tmp_path / "downloads"
        lines = []
        fetched = fetch_set(manifest, dest, progress=lines.append)
        assert [p.name for _, p in fetched] == ["sample.trace.xz"]
        assert any("verified 312 bytes" in line for line in lines)
        again = fetch_entry(manifest, manifest.entry("sample"), dest,
                            progress=lines.append)
        assert again == fetched[0][1]
        assert any("already fetched" in line for line in lines)

    def test_resume_completes_a_partial_transfer(self, tmp_path):
        manifest = TraceSetManifest.load(_sample_manifest(tmp_path))
        dest = tmp_path / "downloads"
        dest.mkdir()
        payload = SAMPLE_CHAMPSIM.read_bytes()
        (dest / "sample.trace.xz.part").write_bytes(payload[:100])
        lines = []
        path = fetch_entry(manifest, manifest.entry("sample"), dest,
                           progress=lines.append)
        assert path.read_bytes() == payload
        assert any("resuming" in line and "at byte 100" in line
                   for line in lines)
        assert not (dest / "sample.trace.xz.part").exists()

    def test_digest_mismatch_fails_and_cleans_the_partial(self, tmp_path):
        source = tmp_path / "source.trace.xz"
        source.write_bytes(SAMPLE_CHAMPSIM.read_bytes())
        manifest = TraceSetManifest.load(_write_manifest(
            tmp_path / "set.json",
            [{"name": "sample", "url": "source.trace.xz",
              "sha256": "0" * 64}]))
        dest = tmp_path / "downloads"
        with pytest.raises(CorpusError, match="digest mismatch"):
            fetch_entry(manifest, manifest.entry("sample"), dest)
        assert not list(dest.glob("*.part"))

    def test_existing_wrong_file_refuses_to_overwrite(self, tmp_path):
        manifest = TraceSetManifest.load(_sample_manifest(tmp_path))
        dest = tmp_path / "downloads"
        dest.mkdir()
        (dest / "sample.trace.xz").write_bytes(b"not the trace")
        with pytest.raises(CorpusError, match="remove it to re-fetch"):
            fetch_entry(manifest, manifest.entry("sample"), dest)

    def test_missing_local_source_is_a_typed_error(self, tmp_path):
        manifest = TraceSetManifest.load(_write_manifest(
            tmp_path / "set.json",
            [{"name": "gone", "url": "nope.trace.xz",
              "sha256": "0" * 64}]))
        with pytest.raises(CorpusError, match="does not exist"):
            fetch_entry(manifest, manifest.entry("gone"),
                        tmp_path / "downloads")


class TestIngestTraces:
    def _copies(self, tmp_path, count):
        items = []
        for index in range(count):
            path = tmp_path / f"copy{index}.trace.xz"
            path.write_bytes(SAMPLE_CHAMPSIM.read_bytes())
            items.append((f"shard{index}", path))
        return items

    def test_parallel_matches_serial(self, tmp_path):
        serial = CorpusStore.create(tmp_path / "serial")
        parallel = CorpusStore.create(tmp_path / "parallel")
        items = self._copies(tmp_path, 3)
        ingest_traces(serial, items, jobs=1)
        ingest_traces(parallel, items, jobs=3)
        for name in ("shard0", "shard1", "shard2"):
            ours = serial.manifest.get(name)
            theirs = parallel.manifest.get(name)
            assert ours.checksum == theirs.checksum
            assert (ours.events, ours.calls, ours.returns) == \
                (theirs.events, theirs.calls, theirs.returns)

    def test_all_or_nothing_on_failure(self, tmp_path):
        store = CorpusStore.create(tmp_path / "corpus")
        items = self._copies(tmp_path, 2)
        items.append(("broken", tmp_path / "missing.trace.xz"))
        with pytest.raises(Exception):
            ingest_traces(store, items, jobs=1)
        assert len(store.manifest) == 0
        assert not list(store.root.glob("*.rastrace"))

    def test_duplicate_names_rejected_up_front(self, tmp_path):
        store = CorpusStore.create(tmp_path / "corpus")
        items = self._copies(tmp_path, 1)
        with pytest.raises(CorpusError, match="duplicate shard name"):
            ingest_traces(store, items + items, jobs=1)
        ingest_traces(store, items, jobs=1)
        with pytest.raises(CorpusError, match="duplicate shard name"):
            ingest_traces(store, items, jobs=1)


class TestFetchAndBuild:
    def test_build_then_idempotent_rerun(self, tmp_path):
        manifest = TraceSetManifest.load(_sample_manifest(tmp_path))
        store = CorpusStore.create(tmp_path / "corpus")
        first = fetch_and_build(manifest, store, jobs=2)
        assert len(first) == 1
        record, stats = first[0]
        assert record.name == "sample"
        assert record.returns == 93
        assert stats.offset_mismatches == 0
        lines = []
        second = fetch_and_build(manifest, store, progress=lines.append)
        assert second == []
        assert any("already in corpus" in line for line in lines)
        store.verify()


def _pack(ip, is_branch, taken, dests, sources):
    dests = tuple(dests) + (0,) * (2 - len(dests))
    sources = tuple(sources) + (0,) * (4 - len(sources))
    return RECORD.pack(ip, is_branch, taken, *dests, *sources,
                       0, 0, 0, 0, 0, 0)


def _call(ip):
    return _pack(ip, 1, 1, (REG_INSTRUCTION_POINTER, REG_STACK_POINTER),
                 (REG_INSTRUCTION_POINTER, REG_STACK_POINTER))


def _ret(ip):
    return _pack(ip, 1, 1, (REG_INSTRUCTION_POINTER, REG_STACK_POINTER),
                 (REG_STACK_POINTER,))


def _plain(ip):
    return _pack(ip, 0, 0, (1,), (REG_FLAGS,))


class TestOffsetMismatchCounter:
    def test_variable_call_sizes_are_counted(self, tmp_path):
        """A return landing at call+5 (and one *below* its call) is
        exactly what ``offset_mismatches`` / ``backwards_returns``
        quantify — the returns where champsim calibration can beat the
        fixed pc+4 convention."""
        records = [
            _call(1000), _plain(2000),   # call size 5:
            _ret(2004), _plain(1005),    #   return to 1000 + 5
            _call(3000), _plain(4000),   # backwards return:
            _ret(4004), _plain(2990),    #   2990 < call ip 3000
            _call(5000), _plain(6000),   # conventional call size 4:
            _ret(6004), _plain(5004),    #   no mismatch
        ]
        trace = tmp_path / "var.trace"
        trace.write_bytes(b"".join(records))
        stats = ImportStats()
        events = list(champsim_events(trace, stats=stats))
        assert stats.by_class["return"] == 3
        assert stats.offset_mismatches == 2
        assert stats.backwards_returns == 1
        assert len(events) == 6  # one event per branch record
