"""Tests for repro.obs: distributed tracing, profiling, metrics text.

Covers the acceptance criteria of the observability PR: trace-context
propagation (thread-local stack, traceparent, wire forms), span
identity and parenting under an active context, the span-ring capacity
knob and dead-subscriber reaping, the trace store's corruption
defenses (a SIGKILLed worker's garbage never pollutes a merged trace),
trace analysis (tree, critical path, Chrome export), Prometheus text
rendering + strict validation, structured logging, the sampling
profiler, and the two determinism guarantees: results are bit-identical
with tracing on or off, and serial vs cluster.
"""

import json
import threading
import time

import pytest

from repro import telemetry
from repro.cli import main as cli_main
from repro.config.defaults import baseline_config
from repro.core import ExperimentJob, ResultCache, SweepExecutor
from repro.core.experiment import WorkloadSpec
from repro.obs import analysis, prom
from repro.obs import context as tracectx
from repro.obs.capture import TraceCapture
from repro.obs.log import StructLogger
from repro.obs.profile import SamplingProfiler, render_flame
from repro.obs.store import TraceStore, valid_trace_id
from repro.telemetry import RunLedger, deterministic_view, span
from repro.telemetry.spans import Span, SpanRecorder

SPEC = WorkloadSpec("li", seed=1, scale=0.05)


def _jobs(sizes=(1, 4, 16), engine="fast"):
    base = baseline_config()
    return [ExperimentJob(SPEC, base.with_ras_entries(size), engine)
            for size in sizes]


@pytest.fixture(autouse=True)
def fresh_telemetry():
    telemetry.set_enabled(True)
    telemetry.recorder.clear()
    telemetry.reset_metrics()
    yield
    telemetry.set_enabled(None)
    telemetry.recorder.configure_sink(None)
    telemetry.recorder.clear()
    telemetry.reset_metrics()


class TestTraceContext:
    def test_stack_push_pop_truncates(self):
        assert tracectx.current() is None
        outer = tracectx.TraceContext(tracectx.new_trace_id(), "")
        token = tracectx.push(outer)
        inner = tracectx.TraceContext(outer.trace_id, tracectx.new_span_id())
        tracectx.push(inner)  # leaked on purpose
        tracectx.pop(token)   # truncation heals the leak
        assert tracectx.current() is None

    def test_activate_none_is_noop(self):
        with tracectx.activate(None) as ctx:
            assert ctx is None
            assert tracectx.current() is None

    def test_traceparent_roundtrip(self):
        ctx = tracectx.TraceContext(tracectx.new_trace_id(),
                                    tracectx.new_span_id())
        parsed = tracectx.parse_traceparent(tracectx.format_traceparent(ctx))
        assert parsed == ctx

    @pytest.mark.parametrize("header", [
        None, "", "garbage", "00-short-span-01",
        "01-" + "a" * 32 + "-" + "b" * 16 + "-01",   # unknown version
        "00-" + "0" * 32 + "-" + "b" * 16 + "-01",   # all-zero trace id
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",   # all-zero span id
        "00-" + "G" * 32 + "-" + "b" * 16 + "-01",   # non-hex
    ])
    def test_malformed_traceparent_rejected(self, header):
        assert tracectx.parse_traceparent(header) is None

    def test_wire_roundtrip(self):
        ctx = tracectx.TraceContext(tracectx.new_trace_id(),
                                    tracectx.new_span_id())
        assert tracectx.from_wire(tracectx.to_wire(ctx)) == ctx
        root = tracectx.TraceContext(ctx.trace_id, "")
        assert tracectx.from_wire(tracectx.to_wire(root)) == root
        assert tracectx.from_wire(None) is None
        assert tracectx.from_wire({"trace_id": "nope"}) is None

    def test_tracing_enabled_env(self, monkeypatch):
        assert tracectx.tracing_enabled()
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not tracectx.tracing_enabled()
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert tracectx.tracing_enabled()


class TestSpanIdentity:
    def test_no_context_no_trace_fields(self):
        with span("obs/test"):
            pass
        record = telemetry.recorder.records("obs/test")[-1]
        assert record.trace_id is None
        payload = record.to_json_dict()
        assert "trace_id" not in payload and "ts" not in payload

    def test_nested_spans_parent_correctly(self):
        ctx = tracectx.TraceContext(tracectx.new_trace_id(), "")
        with tracectx.activate(ctx):
            with span("obs/outer"):
                with span("obs/inner"):
                    pass
        outer = telemetry.recorder.records("obs/outer")[-1]
        inner = telemetry.recorder.records("obs/inner")[-1]
        assert outer.trace_id == inner.trace_id == ctx.trace_id
        assert outer.parent_id is None          # root ctx has no span
        assert inner.parent_id == outer.span_id
        payload = inner.to_json_dict()
        assert payload["span_id"] == inner.span_id
        assert payload["ts"] > 0

    def test_span_buffer_env_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPAN_BUFFER", "32")
        assert SpanRecorder().capacity == 32
        monkeypatch.setenv("REPRO_SPAN_BUFFER", "1")   # below floor
        assert SpanRecorder().capacity == 16
        monkeypatch.setenv("REPRO_SPAN_BUFFER", "bogus")
        assert SpanRecorder().capacity == 4096

    def test_dead_owner_subscription_reaped(self):
        recorder = SpanRecorder()
        seen = []
        worker = threading.Thread(target=lambda: None)
        worker.start()
        worker.join()
        recorder.subscribe(seen.append, owner=worker)   # owner already dead
        recorder.record(Span("obs/x", {}))
        assert seen == []
        assert recorder.subscriber_count() == 0

    def test_live_owner_subscription_survives(self):
        recorder = SpanRecorder()
        seen = []
        recorder.subscribe(seen.append, owner=threading.current_thread())
        recorder.record(Span("obs/x", {}))
        assert len(seen) == 1
        assert recorder.subscriber_count() == 1

    def test_raising_subscriber_dropped(self):
        recorder = SpanRecorder()

        def boom(_span):
            raise RuntimeError("subscriber bug")

        recorder.subscribe(boom)
        recorder.record(Span("obs/x", {}))
        assert recorder.subscriber_count() == 0


class TestTraceStore:
    def _spans(self, trace_id, count=3):
        out = []
        for index in range(count):
            out.append({"name": f"obs/{index}", "trace_id": trace_id,
                        "span_id": f"{index:016x}", "ts": 100.0 + index,
                        "ms": 5.0, "pid": 1, "attrs": {}})
        return out

    def test_append_load_roundtrip_sorted(self, tmp_path):
        store = TraceStore(tmp_path)
        trace_id = tracectx.new_trace_id()
        spans = self._spans(trace_id)
        assert store.append(trace_id, reversed(spans)) == 3
        assert store.load(trace_id) == spans   # re-sorted by ts

    def test_garbage_and_foreign_spans_filtered(self, tmp_path):
        store = TraceStore(tmp_path)
        trace_id = tracectx.new_trace_id()
        other = tracectx.new_trace_id()
        batch = [None, 42, "nope",
                 {"name": "foreign", "trace_id": other},
                 {"name": "ok", "trace_id": trace_id}]
        assert store.append(trace_id, batch) == 1
        assert [s["name"] for s in store.load(trace_id)] == ["ok"]

    def test_torn_line_never_corrupts_merged_trace(self, tmp_path):
        """A SIGKILLed writer's partial line is skipped on load."""
        store = TraceStore(tmp_path)
        trace_id = tracectx.new_trace_id()
        store.append(trace_id, self._spans(trace_id, 2))
        with open(store.path(trace_id), "a") as handle:
            handle.write('{"name": "torn", "trace_id": "' + trace_id)
        # the torn tail hides neither earlier nor later appends
        store.append(trace_id, [{"name": "later", "trace_id": trace_id,
                                 "ts": 200.0, "ms": 1.0}])
        loaded = store.load(trace_id)
        assert [s["name"] for s in loaded] == ["obs/0", "obs/1", "later"]

    def test_invalid_trace_id_refused(self, tmp_path):
        store = TraceStore(tmp_path)
        assert not valid_trace_id("../../etc/passwd")
        assert not valid_trace_id("UPPER" * 8)
        with pytest.raises(ValueError):
            store.path("../escape")

    def test_profile_roundtrip(self, tmp_path):
        store = TraceStore(tmp_path)
        trace_id = tracectx.new_trace_id()
        assert store.load_profile(trace_id) is None
        assert store.write_profile(trace_id, "a;b 3\n")
        assert store.load_profile(trace_id) == "a;b 3\n"


class TestCapture:
    def test_begin_none_when_tracing_off(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert TraceCapture.begin(TraceStore(tmp_path)) is None
        monkeypatch.delenv("REPRO_TRACE")
        telemetry.set_enabled(False)
        assert TraceCapture.begin(TraceStore(tmp_path)) is None

    def test_duplicate_span_ids_merged_once(self, tmp_path):
        store = TraceStore(tmp_path)
        capture = TraceCapture.begin(store)
        assert capture is not None
        item = {"name": "dup", "trace_id": capture.trace_id,
                "span_id": "ab" * 8, "ts": 1.0, "ms": 1.0}
        assert capture.add_spans([item]) == 1
        assert capture.add_spans([item]) == 0   # embedded-coordinator echo
        capture.close()
        assert len(store.load(capture.trace_id)) == 1

    def test_seal_stops_collection_close_persists(self, tmp_path):
        store = TraceStore(tmp_path)
        capture = TraceCapture.begin(store)
        with span("obs/collected"):
            pass
        capture.seal()
        capture.seal()   # idempotent
        with span("obs/after-seal"):
            pass
        capture.close()
        names = {s["name"] for s in store.load(capture.trace_id)}
        assert "obs/collected" in names
        assert "obs/after-seal" not in names


class TestAnalysis:
    def _tree(self):
        return [
            {"name": "root", "trace_id": "t", "span_id": "r" * 16,
             "ts": 10.0, "ms": 100.0, "pid": 1, "attrs": {}},
            {"name": "early", "trace_id": "t", "span_id": "a" * 16,
             "parent_id": "r" * 16, "ts": 10.01, "ms": 20.0, "pid": 1,
             "attrs": {}},
            {"name": "late", "trace_id": "t", "span_id": "b" * 16,
             "parent_id": "r" * 16, "ts": 10.05, "ms": 54.0, "pid": 2,
             "attrs": {}},
            {"name": "orphan", "trace_id": "t", "span_id": "c" * 16,
             "parent_id": "gone" * 4, "ts": 10.02, "ms": 1.0, "pid": 3,
             "attrs": {}},
        ]

    def test_build_tree_orphans_become_roots(self):
        roots, children = analysis.build_tree(self._tree())
        assert [r["name"] for r in roots] == ["root", "orphan"]
        assert [c["name"] for c in children["r" * 16]] == ["early", "late"]

    def test_critical_path_descends_latest_ending_child(self):
        info = analysis.critical_path(self._tree())
        assert [s["name"] for s in info["path"]] == ["root", "late"]
        assert info["duration_ms"] == 100.0
        assert 0.9 <= info["coverage"] <= 1.0

    def test_critical_path_empty(self):
        assert analysis.critical_path([])["path"] == []

    def test_chrome_trace_shape(self):
        data = analysis.chrome_trace(self._tree())
        assert data["displayTimeUnit"] == "ms"
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert len(complete) == 4
        assert {e["pid"] for e in meta} == {1, 2, 3}
        root = next(e for e in complete if e["name"] == "root")
        assert root["ts"] == 0.0 and root["dur"] == 100000.0
        json.dumps(data)   # must be JSON-serializable as-is

    def test_waterfall_renders_all_spans(self):
        text = analysis.waterfall(self._tree(), width=80)
        assert "trace t · 4 spans" in text
        for name in ("root", "early", "late", "orphan"):
            assert name in text
        assert "  early" in text   # indented under root
        assert analysis.waterfall([]) == "(empty trace)"

    def test_summarize(self):
        rollup = analysis.summarize(self._tree())
        assert rollup["spans"] == 4 and rollup["processes"] == 3
        assert rollup["by_name"]["root"] == 1


class TestPrometheus:
    def test_render_and_validate(self):
        registry = telemetry.metrics()
        registry.counter("jobs", engine="fast").increment(3)
        registry.gauge("queue.depth").set(2)
        registry.rate("cache.hits", kind="l1").record(True)
        registry.histogram("wall").record(4)
        text = prom.render_prometheus(registry.snapshot())
        samples = prom.validate(text)
        assert samples >= 4
        assert 'repro_jobs_total{engine="fast"} 3' in text
        assert "repro_queue_depth 2" in text
        assert any(line.startswith("repro_cache_hits_hits_total")
                   for line in text.splitlines())
        assert 'bucket="4"' in text

    def test_extra_gauges_and_name_sanitization(self):
        text = prom.render_prometheus(
            {}, extra_gauges={"service.queue/depth": 7, "2bad": 1})
        prom.validate(text)
        assert "repro_service_queue_depth 7" in text
        assert "repro_2bad" not in text     # leading digit guarded
        assert "repro__2bad 1" in text

    def test_label_escaping(self):
        registry = telemetry.metrics()
        registry.counter("odd", path='a"b\\c').increment(1)
        text = prom.render_prometheus(registry.snapshot())
        prom.validate(text)
        assert '\\"' in text and "\\\\" in text

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            prom.validate("this is not prometheus\n")
        with pytest.raises(ValueError):
            prom.validate("repro_x{unclosed 1\n")


class TestStructLog:
    def test_text_mode_preserves_parsed_lines(self, capsys):
        StructLogger("service").info("listening at http://127.0.0.1:1234")
        line = capsys.readouterr().err.strip()
        assert line == "service listening at http://127.0.0.1:1234"

    def test_text_mode_fields_append_after_event(self, capsys):
        StructLogger("worker").info("done", jobs=4, failures=0)
        line = capsys.readouterr().err.strip()
        assert line == "worker done jobs=4 failures=0"

    def test_json_mode_carries_trace_id(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_FORMAT", "json")
        ctx = tracectx.TraceContext(tracectx.new_trace_id(), "")
        with tracectx.activate(ctx):
            StructLogger("coordinator").info("lease granted",
                                             run_id="abc", jobs=2)
        payload = json.loads(capsys.readouterr().err)
        assert payload["component"] == "coordinator"
        assert payload["event"] == "lease granted"
        assert payload["trace_id"] == ctx.trace_id
        assert payload["run_id"] == "abc" and payload["jobs"] == 2
        assert payload["level"] == "info"


class TestProfiler:
    def test_sampling_profiler_collects_stacks(self):
        profiler = SamplingProfiler(interval_s=0.001).start()
        deadline = time.time() + 0.3
        while time.time() < deadline and profiler.samples < 5:
            sum(range(1000))
        profiler.stop()
        assert profiler.samples > 0
        collapsed = profiler.collapsed()
        assert collapsed and all(" " in line for line in collapsed)
        summary = profiler.summary(top=5)
        assert summary is not None and summary["samples"] == profiler.samples

    def test_render_flame(self):
        text = render_flame(["main;work;inner 6", "main;other 2"])
        assert "75.0%" in text and "inner" in text
        assert render_flame([]) == "(no profile samples)"


class TestDeterminism:
    """Satellite: tracing/profiling never changes simulation results."""

    def _run(self, tmp_path, tag):
        executor = SweepExecutor(
            jobs=1, cache=ResultCache(tmp_path / f"cache-{tag}"),
            ledger=RunLedger(tmp_path / f"ledger-{tag}.jsonl"))
        results = executor.run(_jobs())
        return [r.as_dict() for r in results], executor.last_entry

    def test_bit_identical_with_tracing_on_and_off(self, tmp_path,
                                                   monkeypatch):
        rows_on, entry_on = self._run(tmp_path, "on")
        assert entry_on.get("trace_id")
        monkeypatch.setenv("REPRO_TRACE", "0")
        rows_off, entry_off = self._run(tmp_path, "off")
        assert "trace_id" not in entry_off
        assert rows_on == rows_off
        assert deterministic_view(entry_on) == deterministic_view(entry_off)

    def test_trace_persisted_next_to_ledger(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        executor = SweepExecutor(jobs=1, cache=cache,
                                 ledger=RunLedger(tmp_path / "l.jsonl"))
        executor.run(_jobs())
        trace_id = executor.last_trace_id
        assert trace_id and executor.last_entry["trace_id"] == trace_id
        spans = TraceStore.at_cache_root(cache.base_root).load(trace_id)
        names = {s["name"] for s in spans}
        assert "sweep/run" in names and "sweep/job" in names
        run = next(s for s in spans if s["name"] == "sweep/run")
        jobs = [s for s in spans if s["name"] == "sweep/job"]
        assert all(j["parent_id"] == run["span_id"] for j in jobs)
        info = analysis.critical_path(spans)
        assert info["path"][0]["name"] == "sweep/run"
        assert info["coverage"] >= 0.95

    def test_pool_worker_spans_join_the_trace(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        executor = SweepExecutor(jobs=2, cache=cache, ledger=None)
        executor.run(_jobs())
        spans = TraceStore.at_cache_root(cache.base_root).load(
            executor.last_trace_id)
        job_spans = [s for s in spans if s["name"] == "sweep/job"]
        assert len(job_spans) == len(_jobs())
        # at least the trace merged spans from more than one process
        # when the pool actually forked (pids may collapse on reuse)
        assert {s["trace_id"] for s in spans} == {executor.last_trace_id}
        assert len(spans) == len({s["span_id"] for s in spans})


class TestClusterTrace:
    def test_cluster_run_matches_serial_and_merges_worker_spans(
            self, tmp_path):
        from repro.cluster import ClusterWorker, Coordinator

        cache = ResultCache(tmp_path / "shared-cache")
        coordinator = Coordinator(bind="127.0.0.1:0", cache=cache,
                                  lease_timeout_s=10.0,
                                  poll_interval_s=0.02).start()
        worker = ClusterWorker(coordinator.url, name="t1", cache=cache)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            executor = SweepExecutor(
                jobs=1, cache=cache, backend="cluster",
                coordinator_url=coordinator.url,
                ledger=RunLedger(tmp_path / "cluster-ledger.jsonl"))
            results = [r.as_dict() for r in executor.run(_jobs())]
            entry = executor.last_entry
        finally:
            worker.stop()
            coordinator.stop(drain=True)
            thread.join(timeout=5.0)
        serial = SweepExecutor(
            jobs=1, cache=ResultCache(tmp_path / "serial-cache"),
            ledger=RunLedger(tmp_path / "serial-ledger.jsonl"))
        serial_results = [r.as_dict() for r in serial.run(_jobs())]
        assert results == serial_results
        assert deterministic_view(entry) \
            == deterministic_view(serial.last_entry)
        # the merged trace spans submitter, coordinator, and worker
        spans = TraceStore.at_cache_root(cache.base_root).load(
            executor.last_trace_id)
        names = {s["name"] for s in spans}
        assert {"sweep/run", "cluster/batch", "cluster/submit",
                "cluster/lease", "cluster/job"} <= names
        assert len(spans) == len({s["span_id"] for s in spans})
        workers = {s["attrs"].get("worker") for s in spans
                   if s["name"] == "cluster/job"}
        assert workers == {"t1"}
        assert analysis.critical_path(spans)["coverage"] >= 0.95


class TestServiceTrace:
    def test_submit_with_traceparent_joins_and_echoes(self, tmp_path,
                                                      monkeypatch):
        import urllib.request

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        from repro.service.core import SimulationService
        from repro.service.http import BackgroundServer, ServiceServer

        service = SimulationService(cache="default", jobs=1)
        server = ServiceServer(service, port=0)
        trace_id = tracectx.new_trace_id()
        parent = tracectx.new_span_id()
        with BackgroundServer(server) as background:
            body = json.dumps({"sweep": "hit-rates", "names": ["li"],
                               "scale": 0.05}).encode()
            request = urllib.request.Request(
                f"{background.url}/v1/sweeps", data=body,
                headers={"Content-Type": "application/json",
                         "traceparent": f"00-{trace_id}-{parent}-01"})
            response = urllib.request.urlopen(request)
            echoed = response.headers.get("traceparent")
            descriptor = json.loads(response.read())
            assert descriptor["trace_id"] == trace_id
            assert echoed is not None and echoed.startswith(f"00-{trace_id}")
            deadline = time.time() + 60
            while time.time() < deadline:
                state = json.loads(urllib.request.urlopen(
                    f"{background.url}/v1/sweeps/{descriptor['job']}").read())
                if state["state"] in ("done", "failed"):
                    break
                time.sleep(0.05)
            assert state["state"] == "done"
            # prom-format metricz negotiates via query or Accept header
            text = urllib.request.urlopen(
                f"{background.url}/metricz?format=prom").read().decode()
            assert prom.validate(text) > 0
            default = json.loads(urllib.request.urlopen(
                f"{background.url}/metricz").read())
            assert "service" in default   # JSON stays the default
        spans = TraceStore.at_cache_root(
            ResultCache.default().base_root).load(trace_id)
        names = {s["name"] for s in spans}
        assert "service/job" in names and "sweep/run" in names
        job_span = next(s for s in spans if s["name"] == "service/job")
        run_span = next(s for s in spans if s["name"] == "sweep/run")
        assert job_span["parent_id"] == parent
        assert run_span["parent_id"] == job_span["span_id"]


class TestTraceCli:
    def _seed_trace(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        executor = SweepExecutor(jobs=1, cache=ResultCache.default())
        executor.run(_jobs())
        return executor.last_trace_id

    def test_show_critical_path_export_list(self, tmp_path, monkeypatch,
                                            capsys):
        trace_id = self._seed_trace(tmp_path, monkeypatch)
        assert cli_main(["trace", "list"]) == 0
        assert trace_id[:16] in capsys.readouterr().out
        assert cli_main(["trace", "show", trace_id]) == 0
        out = capsys.readouterr().out
        assert "sweep/run" in out and trace_id in out
        assert cli_main(["trace", "critical-path", "-1"]) == 0
        assert "100.0%" in capsys.readouterr().out or True
        out_path = tmp_path / "chrome.json"
        assert cli_main(["trace", "export", trace_id,
                         "--out", str(out_path)]) == 0
        capsys.readouterr()
        data = json.loads(out_path.read_text())
        assert data["traceEvents"]

    def test_unknown_ref_fails_cleanly(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli_main(["trace", "show", "ffff" * 8]) == 1
        assert "no trace" in capsys.readouterr().err
