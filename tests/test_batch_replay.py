"""Differential parity for the batched trace-replay engine.

The batch engine (:mod:`repro.fastsim.batch`) exists only for speed;
its contract is bit-identical counters versus the streaming reference
(:mod:`repro.trace.replay`) on every trace, every repair mechanism,
every stack size, and the same typed errors on malformed input. These
tests hold that contract with randomized workloads (property-style
over seeds and structured random traces), the checked-in ChampSim
sample corpus, and both block decoders (numpy and stdlib, forced via
``REPRO_BATCH_DECODER=python``).
"""

import io
import pathlib
import random

import pytest

from repro.config.options import RepairMechanism
from repro.core import WorkloadSpec, build_program, trace_depth_sweep
from repro.core.executor import ExperimentJob, ResultCache, SweepExecutor
from repro.corpus import CorpusStore, corpus_depth_sweep
from repro.cli import main as cli_main
from repro.fastsim.batch import (
    decoder_backend,
    iter_event_batches,
    replay_batches,
    replay_batches_multi,
    replay_shard_batched,
    replay_shard_batched_multi,
)
from repro.isa.opcodes import ControlClass
from repro.trace import (
    ControlFlowEvent,
    TraceFormatError,
    TraceReader,
    record_trace,
    replay_shard,
    replay_shard_multi,
    write_trace,
)
from repro.trace.replay import replay_events, replay_events_multi

DATA = pathlib.Path(__file__).parent / "data"
SAMPLE_CHAMPSIM = DATA / "sample_champsim.trace.xz"

MECHANISMS = list(RepairMechanism)
SIZES = (1, 2, 3, 8, 16, 64)


def counters(result):
    return (result.returns, result.hits, result.overflows,
            result.underflows)


def random_trace(seed, length=300):
    """A structured random control-flow trace.

    Calls push onto a shadow stack; most returns pop the matching
    address (so hit rate is capacity-bound, like real programs), a few
    return to a wrong address or fire on an empty stack (underflows);
    branches and jumps are interleaved as RAS-inert noise.
    """
    rng = random.Random(seed)
    stack = []
    events = []
    pc = 0x1000
    for _ in range(length):
        roll = rng.random()
        if roll < 0.35:
            call = rng.choice(
                (ControlClass.CALL_DIRECT, ControlClass.CALL_INDIRECT))
            target = rng.randrange(0x100000, 0x200000, 4)
            events.append(ControlFlowEvent(call, pc, target,
                                           gap=rng.randrange(0, 6)))
            stack.append(pc + 4)
            pc = target
        elif roll < 0.70:
            if stack and rng.random() < 0.9:
                target = stack.pop()
            else:
                target = rng.randrange(0x100000, 0x200000, 4)
            events.append(ControlFlowEvent(ControlClass.RETURN, pc, target,
                                           gap=rng.randrange(0, 6)))
            pc = target
        else:
            noise = rng.choice(
                (ControlClass.COND_BRANCH, ControlClass.JUMP_DIRECT,
                 ControlClass.JUMP_INDIRECT))
            target = rng.randrange(0x100000, 0x200000, 4)
            events.append(ControlFlowEvent(noise, pc, target,
                                           gap=rng.randrange(0, 6)))
            pc = target
    return events


def trace_bytes(events, version=2, block_events=64):
    buffer = io.BytesIO()
    write_trace(buffer, events, version=version, block_events=block_events)
    return buffer.getvalue()


@pytest.fixture(params=["numpy", "python"])
def decoder(request, monkeypatch):
    if request.param == "python":
        monkeypatch.setenv("REPRO_BATCH_DECODER", "python")
    else:
        monkeypatch.delenv("REPRO_BATCH_DECODER", raising=False)
        if decoder_backend() != "numpy":
            pytest.skip("numpy not available")
    return request.param


class TestBatchDecode:
    def test_decoder_backend_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_DECODER", "python")
        assert decoder_backend() == "python"

    @pytest.mark.parametrize("version", [1, 2])
    def test_batches_carry_exactly_the_stack_events(self, decoder, version):
        events = random_trace(seed=7)
        raw = trace_bytes(events, version=version, block_events=64)
        flat_classes = []
        flat_pcs = []
        flat_next = []
        total = 0
        for batch in iter_event_batches(raw):
            flat_classes.extend(batch.classes)
            flat_pcs.extend(batch.pcs)
            flat_next.extend(batch.next_pcs)
            total += batch.events
        expected = [e for e in events
                    if e.control.is_call
                    or e.control is ControlClass.RETURN]
        assert total == len(events)
        assert flat_pcs == [e.pc for e in expected]
        assert flat_next == [e.next_pc for e in expected]

    def test_multiblock_v2_splits_into_physical_blocks(self, decoder):
        events = random_trace(seed=3, length=200)
        raw = trace_bytes(events, version=2, block_events=32)
        batches = list(iter_event_batches(raw))
        assert len(batches) == (len(events) + 31) // 32
        assert sum(b.events for b in batches) == len(events)

    def test_path_and_stream_sources(self, decoder, tmp_path):
        events = random_trace(seed=5, length=80)
        raw = trace_bytes(events)
        path = tmp_path / "t.rastrace"
        path.write_bytes(raw)
        by_bytes = sum(b.events for b in iter_event_batches(raw))
        by_path = sum(b.events for b in iter_event_batches(path))
        with open(path, "rb") as stream:
            by_stream = sum(b.events for b in iter_event_batches(stream))
        assert by_bytes == by_path == by_stream == len(events)


class TestErrorParity:
    """Malformed traces raise the same TraceFormatError, same message."""

    def _both_errors(self, raw):
        with pytest.raises(TraceFormatError) as reference:
            TraceReader(io.BytesIO(raw)).read_all()
        with pytest.raises(TraceFormatError) as batched:
            list(iter_event_batches(raw))
        return str(reference.value), str(batched.value)

    def test_corrupted_v2_block_same_crc_error(self, decoder):
        raw = bytearray(trace_bytes(random_trace(seed=11), block_events=64))
        # Flip a byte inside the compressed payload (past the 24-byte
        # container header and 16-byte block header).
        raw[24 + 16 + 5] ^= 0xFF
        ref_msg, batch_msg = self._both_errors(bytes(raw))
        assert "CRC mismatch" in ref_msg
        assert batch_msg == ref_msg

    def test_truncated_v2_body_same_error(self, decoder):
        full = trace_bytes(random_trace(seed=11), block_events=64)
        raw = full[:len(full) // 2]  # cut inside a block payload
        ref_msg, batch_msg = self._both_errors(raw)
        assert batch_msg == ref_msg

    def test_truncated_v1_body_same_error(self, decoder):
        raw = trace_bytes(random_trace(seed=11), version=1)[:-4]
        ref_msg, batch_msg = self._both_errors(raw)
        assert "truncated" in ref_msg
        assert batch_msg == ref_msg


class TestRandomizedParity:
    """Property-style: batch == reference on structured random traces."""

    @pytest.mark.parametrize("seed", range(6))
    def test_every_mechanism_every_size(self, decoder, seed):
        events = random_trace(seed)
        raw = trace_bytes(events, block_events=64)
        for mechanism in MECHANISMS:
            for size in SIZES:
                reference = replay_events(events, ras_entries=size,
                                          mechanism=mechanism)
                batched = replay_batches(iter_event_batches(raw),
                                         ras_entries=size,
                                         mechanism=mechanism)
                assert counters(batched) == counters(reference), \
                    (seed, mechanism, size)

    @pytest.mark.parametrize("seed", range(6))
    def test_multi_size_single_pass(self, decoder, seed):
        events = random_trace(seed, length=400)
        raw = trace_bytes(events, block_events=32)
        for mechanism in (RepairMechanism.NONE, RepairMechanism.VALID_BITS,
                          RepairMechanism.SELF_CHECKPOINT):
            reference = replay_events_multi(events, SIZES,
                                            mechanism=mechanism)
            batched = replay_batches_multi(iter_event_batches(raw), SIZES,
                                           mechanism=mechanism)
            for size in SIZES:
                assert counters(batched[size]) == \
                    counters(reference[size]), (seed, mechanism, size)

    def test_v1_container_parity(self, decoder):
        events = random_trace(seed=21)
        raw = trace_bytes(events, version=1)
        for size in (1, 8, 64):
            reference = replay_events(events, ras_entries=size)
            batched = replay_batches(iter_event_batches(raw),
                                     ras_entries=size)
            assert counters(batched) == counters(reference)

    def test_empty_trace(self, decoder):
        raw = trace_bytes([])
        result = replay_batches(iter_event_batches(raw), ras_entries=8)
        assert counters(result) == (0, 0, 0, 0)
        assert result.accuracy is None


class TestShardParity:
    """Batch == reference == executor on real shards."""

    def _store(self, tmp_path, with_sample=False):
        store = CorpusStore.create(tmp_path / "corpus")
        store.build_from_specs([WorkloadSpec("li", 1, 0.05),
                                WorkloadSpec("vortex", 1, 0.05)])
        if with_sample:
            store.import_champsim(SAMPLE_CHAMPSIM, name="sample")
        return store

    def test_sample_corpus_bit_identical(self, decoder, tmp_path):
        store = self._store(tmp_path, with_sample=True)
        for shard in store.specs():
            for mechanism in MECHANISMS:
                for size in (1, 4, 32):
                    reference = replay_shard(shard, ras_entries=size,
                                             mechanism=mechanism)
                    batched = replay_shard_batched(shard, ras_entries=size,
                                                   mechanism=mechanism)
                    assert counters(batched) == counters(reference), \
                        (shard.name, mechanism, size)

    def test_shard_multi_matches_streaming_multi(self, decoder, tmp_path):
        store = self._store(tmp_path)
        for shard in store.specs():
            reference = replay_shard_multi(shard, SIZES)
            batched = replay_shard_batched_multi(shard, SIZES)
            for size in SIZES:
                assert counters(batched[size]) == counters(reference[size])

    def test_workload_parity_matches_recorded_trace(self, decoder):
        spec = WorkloadSpec("perl", 1, 0.05)
        raw = trace_bytes(
            TraceReader(io.BytesIO(record_trace(build_program(spec))))
            .read_all())
        for size in (2, 16):
            reference = replay_batches(iter_event_batches(raw),
                                       ras_entries=size)
            assert reference.returns > 0
            assert counters(reference) == counters(
                replay_events(TraceReader(io.BytesIO(raw)).read_all(),
                              ras_entries=size))


class TestExecutorBatchEngine:
    SIZES = (1, 4, 16, 64)

    def _store(self, tmp_path):
        store = CorpusStore.create(tmp_path / "corpus")
        store.build_from_specs([WorkloadSpec("li", 1, 0.05)])
        return store

    def test_sweep_engines_agree(self, tmp_path):
        store = self._store(tmp_path)
        executor = SweepExecutor(jobs=2, cache=None)
        via_trace = trace_depth_sweep(store.specs(), self.SIZES,
                                      executor=executor, engine="trace")
        via_batch = trace_depth_sweep(store.specs(), self.SIZES,
                                      executor=executor, engine="batch")
        for name, by_size in via_trace.items():
            for size in self.SIZES:
                assert via_batch[name][size].counters == \
                    by_size[size].counters

    def test_corpus_sweep_table_identical(self, tmp_path):
        store = self._store(tmp_path)
        executor = SweepExecutor(jobs=1, cache=None)
        _, _, trace_rows = corpus_depth_sweep(store, self.SIZES,
                                              executor=executor,
                                              engine="trace")
        _, _, batch_rows = corpus_depth_sweep(store, self.SIZES,
                                              executor=executor,
                                              engine="batch")
        assert batch_rows == trace_rows

    def test_batch_jobs_cache_under_their_own_key(self, tmp_path):
        from repro.config.defaults import baseline_config

        store = self._store(tmp_path)
        spec = store.specs()[0]
        config = baseline_config()
        assert ExperimentJob(spec, config, "batch").cache_key() \
            != ExperimentJob(spec, config, "trace").cache_key()

        cache = ResultCache(tmp_path / "cache")
        cold = SweepExecutor(jobs=1, cache=cache)
        first = corpus_depth_sweep(store, self.SIZES, executor=cold,
                                   engine="batch")
        assert cold.cache_misses == len(self.SIZES)
        warm = SweepExecutor(jobs=1, cache=cache)
        second = corpus_depth_sweep(store, self.SIZES, executor=warm,
                                    engine="batch")
        assert second == first
        assert warm.cache_hits == len(self.SIZES)
        assert warm.cache_misses == 0

    def test_unknown_engine_still_rejected(self):
        from repro.config.defaults import baseline_config
        from repro.errors import ConfigError
        from repro.trace.replay import TraceShardSpec

        with pytest.raises(ConfigError, match="unknown engine"):
            ExperimentJob(TraceShardSpec(name="x", path="/nope"),
                          baseline_config(), "blocked")


class TestCliBatchEngine:
    def test_corpus_replay_engine_flag_output_identical(
            self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        root = tmp_path / "corpus"
        assert cli_main(["corpus", "build", str(root), "--names", "li",
                         "--scale", "0.05"]) == 0
        capsys.readouterr()
        assert cli_main(["corpus", "replay", str(root),
                         "--engine", "batch", "--sizes", "1", "8"]) == 0
        batch_out = capsys.readouterr().out
        assert cli_main(["corpus", "replay", str(root),
                         "--engine", "trace", "--sizes", "1", "8"]) == 0
        trace_out = capsys.readouterr().out
        assert batch_out.splitlines()[1:] == trace_out.splitlines()[1:]
