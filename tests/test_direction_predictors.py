"""Unit tests for the alternative direction predictors and the factory."""

import dataclasses

import pytest

from repro.bpred import (
    BimodalPredictor,
    FrontEndPredictor,
    GsharePredictor,
    HybridPredictor,
    make_direction_predictor,
)
from repro.config import BranchPredictorConfig
from repro.errors import ConfigError


class TestBimodal:
    def test_learns_bias(self):
        p = BimodalPredictor(entries=64)
        for _ in range(5):
            p.update(0, True)
            p.update(4, False)
        assert p.predict(0)
        assert not p.predict(4)

    def test_cannot_learn_alternation(self):
        """No history: a T/NT alternation pins the counter mid-range
        and accuracy hovers at chance."""
        p = BimodalPredictor(entries=64)
        outcome = True
        correct = 0
        for i in range(200):
            if i >= 100 and p.predict(8) == outcome:
                correct += 1
            p.update(8, outcome)
            outcome = not outcome
        assert correct <= 60


class TestGshare:
    def test_learns_alternation(self):
        p = GsharePredictor(entries=256)
        outcome = True
        correct = 0
        for i in range(400):
            if i >= 200 and p.predict(8) == outcome:
                correct += 1
            p.update(8, outcome)
            outcome = not outcome
        assert correct == 200

    def test_opposite_biases_learned_in_context(self):
        """Two opposite-biased branches trained in a fixed alternation:
        predicting each at its own point in the pattern must recover its
        bias (the XOR separates them even though they share history)."""
        p = GsharePredictor(entries=256)
        for _ in range(100):
            p.update(0, True)
            p.update(4, False)
        # Continue the pattern, predicting just before each update.
        assert p.predict(0) is True
        p.update(0, True)
        assert p.predict(4) is False


class TestFactory:
    @pytest.mark.parametrize("kind,expected", [
        ("hybrid", HybridPredictor),
        ("gshare", GsharePredictor),
        ("bimodal", BimodalPredictor),
    ])
    def test_kinds(self, kind, expected):
        config = dataclasses.replace(
            BranchPredictorConfig(), direction_kind=kind)
        assert isinstance(make_direction_predictor(config), expected)

    def test_unknown_kind_rejected_by_config(self):
        with pytest.raises(ConfigError):
            BranchPredictorConfig(direction_kind="nonesuch")

    def test_facade_uses_configured_kind(self):
        config = dataclasses.replace(
            BranchPredictorConfig(
                gag_entries=64, pag_history_entries=64,
                pag_history_bits=6, selector_entries=64,
                btb_sets=16, btb_assoc=2, ras_entries=8),
            direction_kind="bimodal")
        frontend = FrontEndPredictor(config)
        assert isinstance(frontend.direction, BimodalPredictor)

    def test_facade_trains_non_hybrid_without_error(self):
        from repro.isa import Instruction, Opcode
        config = dataclasses.replace(
            BranchPredictorConfig(
                gag_entries=64, pag_history_entries=64,
                pag_history_bits=6, selector_entries=64,
                btb_sets=16, btb_assoc=2, ras_entries=8),
            direction_kind="gshare")
        frontend = FrontEndPredictor(config)
        branch = Instruction(Opcode.BNEZ, rs=1, target=64)
        p = frontend.predict(0, branch)
        frontend.train_commit(0, branch, taken=True, target=64, prediction=p)
        assert frontend.cond_accuracy is not None
