"""Tests for the documentation link-and-anchor checker.

The checker is a CI gate (the lint job runs ``python -m
repro.docscheck``), so beyond the clean-repo integration check these
tests hold both directions: every staleness class it exists to catch
(broken links, dead anchors, renumbered sections, missing files) must
be reported, and the template/generated-path idioms the docs
legitimately use must not be.
"""

from pathlib import Path

import pytest

from repro import docscheck


@pytest.fixture
def repo(tmp_path):
    """A miniature doc tree: root with docs/, a source file, README."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "thing.py").write_text("x = 1\n")
    (tmp_path / "docs" / "other.md").write_text(
        "# Other notes\n\n## 1. First\n\ntext\n\n## 2. Second\n\ntext\n")
    return tmp_path


def _check(repo, body, name="docs/page.md"):
    page = repo / name
    page.write_text(body)
    return docscheck.check_file(page, repo)


class TestMarkdownLinks:
    def test_valid_relative_link_passes(self, repo):
        assert _check(repo, "See [other](other.md).") == []

    def test_root_relative_link_passes(self, repo):
        assert _check(repo, "See [thing](src/thing.py).") == []

    def test_broken_link_reported_with_line(self, repo):
        problems = _check(repo, "intro\n\nSee [gone](missing.md).")
        assert len(problems) == 1
        assert "docs/page.md:3" in problems[0]
        assert "missing.md" in problems[0]

    def test_external_links_skipped(self, repo):
        assert _check(repo, "[x](https://example.com/a.md)") == []

    def test_anchor_resolves_against_target_headings(self, repo):
        assert _check(repo, "[ok](other.md#1-first)") == []
        problems = _check(repo, "[bad](other.md#9-ninth)")
        assert len(problems) == 1
        assert "#9-ninth" in problems[0]

    def test_same_file_anchor(self, repo):
        body = "# Page\n\n## My Heading\n\n[jump](#my-heading)\n"
        assert _check(repo, body) == []
        assert len(_check(repo, "# Page\n\n[jump](#nope)\n")) == 1


class TestPathTokens:
    def test_existing_code_token_passes(self, repo):
        assert _check(repo, "Edit `src/thing.py` first.") == []

    def test_missing_code_token_reported(self, repo):
        problems = _check(repo, "Edit `src/gone.py` first.")
        assert len(problems) == 1
        assert "src/gone.py" in problems[0]

    def test_bare_md_mention_checked(self, repo):
        assert _check(repo, "see docs/other.md for more") == []
        problems = _check(repo, "see docs/vanished.md for more")
        assert "docs/vanished.md" in problems[0]

    def test_globs_templates_and_generated_paths_ignored(self, repo):
        body = ("`benchmarks/bench_*.py` and `traces/<name>.rastrace`\n"
                "`$REPRO_CACHE_DIR/ledger.jsonl` and `~/.cache/x.json`\n"
                "`benchmarks/out/table.txt` is generated\n")
        assert _check(repo, body) == []

    def test_pytest_node_id_suffix_stripped(self, repo):
        assert _check(repo, "`src/thing.py::TestX::test_y`") == []

    def test_directory_token(self, repo):
        assert _check(repo, "code in `src/`") == []
        assert len(_check(repo, "code in `lib/`")) == 1


class TestSectionRefs:
    def test_valid_cross_file_section_ref(self, repo):
        assert _check(repo, "see docs/other.md §2 for why") == []
        assert _check(repo, "see `other.md` section 2 for why",
                      name="docs/page.md") == []

    def test_stale_cross_file_section_ref_reported(self, repo):
        problems = _check(repo, "see docs/other.md §7 for why")
        assert len(problems) == 1
        assert "no section 7" in problems[0]
        assert "1..2" in problems[0]

    def test_bare_section_ref_checks_own_headings(self, repo):
        body = "# P\n\n## 1. Only\n\nas §1 said\n"
        assert _check(repo, body) == []
        bad = "# P\n\n## 1. Only\n\nas §4 said\n"
        problems = _check(repo, bad)
        assert len(problems) == 1
        assert "no section 4" in problems[0]

    def test_bare_refs_unchecked_without_numbered_headings(self, repo):
        # Prose quoting the *paper's* sections in a file that has no
        # numbered headings of its own must not be flagged.
        assert _check(repo, "# P\n\nthe paper's §5 result\n") == []


class TestFencedBlocks:
    def test_fenced_content_not_checked(self, repo):
        body = ("```\n[broken](gone.md) `src/absent.py` docs/no.md §9\n"
                "```\n")
        assert _check(repo, body) == []

    def test_checking_resumes_after_fence(self, repo):
        body = "```\nanything\n```\n\n[broken](gone.md)\n"
        assert len(_check(repo, body)) == 1


class TestRealRepo:
    def test_shipped_docs_are_clean(self):
        root = Path(__file__).resolve().parent.parent
        checked, problems = docscheck.run([], root)
        assert problems == []
        assert checked >= 8  # docs/*.md + README + CONTRIBUTING

    def test_main_exit_codes(self, repo, monkeypatch, capsys):
        monkeypatch.chdir(repo)
        (repo / "README.md").write_text("[gone](missing.md)\n")
        assert docscheck.main([]) == 1
        assert "missing.md" in capsys.readouterr().err
        (repo / "README.md").write_text("fine\n")
        assert docscheck.main([]) == 0
        assert "ok" in capsys.readouterr().out
