"""Finer-grained pipeline behaviour: stalls, forwarding, recovery."""

import pytest

from repro.config import baseline_config
from repro.isa import ProgramBuilder
from repro.pipeline import SinglePathCPU
from repro.workloads.kernels import loop_sum_kernel


def run(builder_or_program, **kwargs):
    program = builder_or_program
    if isinstance(program, ProgramBuilder):
        program = program.build(entry="main")
    cpu = SinglePathCPU(program, baseline_config(), **kwargs)
    return cpu.run(), cpu


class TestStallAttribution:
    def test_stall_counters_exist_and_bounded(self):
        result, _ = run(loop_sum_kernel(200))
        stall_names = ["stall_frontend", "stall_memory", "stall_execute",
                       "stall_dependency", "stall_issue"]
        total_stalls = sum(result.counter(name) for name in stall_names)
        assert 0 < total_stalls < result.cycles

    def test_pointer_chase_blames_memory(self):
        """A dependent chain of cache-missing loads: the RUU head is an
        in-flight load most of the time."""
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 0)
        b.li(2, 100)
        b.label("loop")
        # stride of 8KB defeats the 64KB L1 quickly across 100 sites
        b.load(3, 1, 0)
        b.addi(1, 1, 8192)
        b.add(3, 3, 3)
        b.addi(2, 2, -1)
        b.bnez(2, "loop")
        b.halt()
        result, _ = run(b)
        assert result.counter("stall_memory") > result.counter("stall_execute")
        assert result.counter("l1d_misses") > 50

    def test_serial_multiplies_blame_execute_or_dependency(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 3)
        b.li(2, 200)
        b.label("loop")
        b.mul(1, 1, 1)   # serial 3-cycle chain
        b.mul(1, 1, 1)
        b.addi(2, 2, -1)
        b.bnez(2, "loop")
        b.halt()
        result, _ = run(b)
        blocked = (result.counter("stall_execute")
                   + result.counter("stall_dependency"))
        assert blocked > result.cycles * 0.3


class TestStoreToLoadForwarding:
    def test_forwarded_load_sees_store_value(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 0x4000)
        b.li(2, 77)
        b.store(2, 1, 0)
        b.load(3, 1, 0)      # must forward from the in-flight store
        b.halt()
        result, cpu = run(b)
        assert cpu.state.regs[3] == 77

    def test_store_load_different_addresses_no_alias(self):
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 0x4000)
        b.li(2, 5)
        b.store(2, 1, 0)
        b.load(3, 1, 64)     # different address, reads 0
        b.halt()
        _, cpu = run(b)
        assert cpu.state.regs[3] == 0


class TestRecoveryDetails:
    def _mispredicting_loop(self, iterations=200):
        """Alternating-depth call pattern with an unlearnable branch."""
        b = ProgramBuilder()
        b.label("main")
        b.li(29, 0x80000)
        b.li(20, 0x9E3779B97F4A7C15)
        b.li(21, 6364136223846793005)
        b.li(10, iterations)
        b.label("loop")
        b.mul(20, 20, 21)
        b.addi(20, 20, 12345)
        b.srli(22, 20, 40)
        b.andi(23, 22, 1)
        b.beqz(23, "skip")
        b.jal("callee")
        b.label("skip")
        b.addi(10, 10, -1)
        b.bnez(10, "loop")
        b.halt()
        b.label("callee")
        b.addi(1, 1, 1)
        b.ret()
        return b.build(entry="main")

    def test_squashed_instructions_are_counted(self):
        result, _ = run(self._mispredicting_loop())
        assert result.counter("squashed") > 0
        assert result.counter("mispredictions_cond") > 30

    def test_architectural_state_survives_heavy_speculation(self):
        from repro.emu import Emulator
        program = self._mispredicting_loop()
        emulator = Emulator(program)
        emulator.run()
        _, cpu = run(program)
        assert cpu.state.regs == emulator.state.regs

    def test_no_shadow_slot_leak_under_recovery(self):
        program = self._mispredicting_loop()
        _, cpu = run(program)
        assert cpu.frontend.shadow_pool.in_use == 0

    def test_wrong_path_touches_the_caches(self):
        """Mis-speculated fetch must reach the I-cache (the paper's
        'wrong-path prefetching and pollution' modelling point)."""
        program = self._mispredicting_loop()
        result, cpu = run(program)
        fetched = result.counter("fetched")
        dispatched = result.counter("dispatched")
        assert fetched > dispatched  # some fetched, never dispatched
