"""Golden equivalence across machine-geometry extremes.

The timing model must stay functionally transparent on narrow, wide,
tiny-window and cache-starved machines alike — these are the configs
where structural-hazard code paths (full RUU, full LSQ, single-issue)
actually execute.
"""

import dataclasses

import pytest

from repro.config import CacheConfig, CoreConfig, MachineConfig, baseline_config
from repro.emu import Emulator
from repro.multipath import MultipathCPU
from repro.pipeline import SinglePathCPU
from repro.workloads import build_workload
from repro.workloads.kernels import fibonacci_kernel


def narrow_machine():
    return dataclasses.replace(
        baseline_config(),
        core=CoreConfig(
            fetch_width=1, decode_width=1, issue_width=1, commit_width=1,
            ifq_size=2, ruu_size=4, lsq_size=2,
            int_alus=1, int_multipliers=1, memory_ports=1,
            frontend_depth=0,
        ),
    )


def wide_machine():
    return dataclasses.replace(
        baseline_config(),
        core=CoreConfig(
            fetch_width=8, decode_width=8, issue_width=8, commit_width=8,
            ifq_size=32, ruu_size=128, lsq_size=64,
            int_alus=8, int_multipliers=2, memory_ports=4,
            frontend_depth=6,
        ),
    )


def tiny_cache_machine():
    base = baseline_config()
    return dataclasses.replace(
        base,
        memory=dataclasses.replace(
            base.memory,
            l1i=CacheConfig("l1i", 512, 1, 64, 1),
            l1d=CacheConfig("l1d", 512, 1, 64, 3),
            l2=CacheConfig("l2", 4096, 2, 64, 12),
        ),
    )


def golden(program):
    return [(r.pc, r.next_pc) for r in Emulator(program).trace()]


def committed(cpu_class, program, config):
    stream = []
    cpu = cpu_class(program, config, commit_hook=lambda e: stream.append(
        (e.pc, e.pc if e.outcome.is_halt else e.outcome.next_pc)))
    result = cpu.run()
    return stream, result


@pytest.fixture(scope="module")
def program():
    return build_workload("go", seed=3, scale=0.05)


class TestGeometryExtremes:
    @pytest.mark.parametrize("factory", [
        narrow_machine, wide_machine, tiny_cache_machine,
    ], ids=["narrow", "wide", "tiny-cache"])
    def test_single_path_golden(self, program, factory):
        stream, _ = committed(SinglePathCPU, program, factory())
        assert stream == golden(program)

    def test_narrow_machine_is_slower(self, program):
        _, narrow = committed(SinglePathCPU, program, narrow_machine())
        _, wide = committed(SinglePathCPU, program, wide_machine())
        assert narrow.ipc < wide.ipc

    def test_tiny_caches_add_misses_not_errors(self, program):
        _, starved = committed(SinglePathCPU, program, tiny_cache_machine())
        _, normal = committed(SinglePathCPU, program, baseline_config())
        assert starved.counter("l1i_misses") > normal.counter("l1i_misses")
        assert starved.ipc < normal.ipc

    def test_multipath_on_narrow_machine(self):
        from repro.config import StackOrganization
        program = fibonacci_kernel(8)
        config = narrow_machine().with_multipath(
            2, StackOrganization.PER_PATH)
        stream, _ = committed(MultipathCPU, program, config)
        assert stream == golden(program)


class TestDeterminism:
    def test_identical_runs_identical_stats(self, program):
        results = []
        for _ in range(2):
            cpu = SinglePathCPU(program, baseline_config())
            result = cpu.run()
            results.append((result.cycles, result.instructions,
                            result.counter("mispredictions"),
                            result.counter("squashed"),
                            result.return_accuracy))
        assert results[0] == results[1]

    def test_multipath_deterministic(self):
        from repro.config import StackOrganization
        program = build_workload("li", seed=5, scale=0.05)
        config = baseline_config().with_multipath(
            4, StackOrganization.PER_PATH)
        first = MultipathCPU(program, config).run()
        second = MultipathCPU(program, config).run()
        assert first.cycles == second.cycles
        assert first.counter("forks") == second.counter("forks")

    def test_fastsim_final_state_matches_emulator(self):
        from repro.fastsim import FastFrontEndSim
        program = fibonacci_kernel(9)
        emulator = Emulator(program)
        emulator.run()
        sim = FastFrontEndSim(program)
        sim.run()
        # The fast model executes the architectural path only — wrong-
        # path walks are front-end-only — so its final state must equal
        # the emulator's exactly.
        assert sim.final_state is not None
        assert sim.final_state.regs == emulator.state.regs
