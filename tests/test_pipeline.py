"""Integration tests for the single-path out-of-order pipeline.

The central invariant: whatever the pipeline speculates about, the
*committed* instruction stream and final architectural state must be
identical to the reference emulator's. Everything else — IPC, hit
rates, penalties — is timing, checked for plausibility.
"""

import pytest

from repro.config import MachineConfig, RepairMechanism, baseline_config
from repro.emu import Emulator
from repro.errors import SimulationError
from repro.isa import ProgramBuilder
from repro.pipeline import SinglePathCPU
from repro.workloads.generator import build_workload
from repro.workloads.kernels import (
    dispatch_kernel,
    fibonacci_kernel,
    loop_sum_kernel,
    mutual_recursion_kernel,
    stack_stress_kernel,
)


def committed_stream(program, config=None, **kwargs):
    committed = []

    def hook(entry):
        next_pc = entry.pc if entry.outcome.is_halt else entry.outcome.next_pc
        committed.append((entry.pc, next_pc))

    cpu = SinglePathCPU(program, config, commit_hook=hook, **kwargs)
    result = cpu.run()
    return committed, result, cpu


def golden_stream(program):
    return [(r.pc, r.next_pc) for r in Emulator(program).trace()]


class TestGoldenEquivalence:
    @pytest.mark.parametrize("program_factory", [
        lambda: loop_sum_kernel(50),
        lambda: fibonacci_kernel(10),
        lambda: mutual_recursion_kernel(20),
        lambda: stack_stress_kernel(40, 3),
        lambda: dispatch_kernel(150, 8),
    ], ids=["loop", "fib", "mutual", "stack", "dispatch"])
    def test_kernels_commit_golden_stream(self, program_factory):
        program = program_factory()
        committed, _, _ = committed_stream(program)
        assert committed == golden_stream(program)

    @pytest.mark.parametrize("name", ["li", "go", "vortex"])
    def test_workloads_commit_golden_stream(self, name):
        program = build_workload(name, seed=2, scale=0.1)
        committed, _, _ = committed_stream(program)
        assert committed == golden_stream(program)

    @pytest.mark.parametrize("mechanism", list(RepairMechanism))
    def test_every_repair_mechanism_is_functionally_transparent(self, mechanism):
        """Repair affects timing and hit rates, never correctness."""
        program = build_workload("li", seed=3, scale=0.05)
        config = baseline_config().with_repair(mechanism)
        committed, _, _ = committed_stream(program, config)
        assert committed == golden_stream(program)

    def test_final_register_state_matches_emulator(self):
        program = fibonacci_kernel(11)
        emulator = Emulator(program)
        emulator.run()
        _, _, cpu = committed_stream(program)
        assert cpu.state.regs == emulator.state.regs

    def test_final_memory_matches_emulator(self):
        program = stack_stress_kernel(20, 2)
        emulator = Emulator(program)
        emulator.run()
        _, _, cpu = committed_stream(program)
        for address in emulator.state.memory:
            assert cpu.state.read_mem(address) == emulator.state.read_mem(address)

    def test_btb_only_config_still_correct(self):
        program = build_workload("compress", seed=1, scale=0.05)
        committed, _, _ = committed_stream(program, baseline_config().without_ras())
        assert committed == golden_stream(program)

    def test_limited_shadow_slots_still_correct(self):
        import dataclasses
        base = baseline_config()
        config = dataclasses.replace(
            base,
            predictor=dataclasses.replace(
                base.predictor, shadow_checkpoint_slots=4),
        )
        program = build_workload("li", seed=4, scale=0.05)
        committed, _, _ = committed_stream(program, config)
        assert committed == golden_stream(program)


class TestTimingPlausibility:
    def test_superscalar_ipc_on_independent_work(self):
        program = loop_sum_kernel(500)
        _, result, _ = committed_stream(program)
        assert result.ipc > 0.8

    def test_mispredictions_cost_cycles(self):
        easy = loop_sum_kernel(300)
        hard = dispatch_kernel(100, 8)
        _, easy_result, _ = committed_stream(easy)
        _, hard_result, _ = committed_stream(hard)
        assert hard_result.ipc < easy_result.ipc
        assert hard_result.counter("mispredictions") > 0

    def test_repair_improves_return_accuracy(self):
        program = build_workload("li", seed=1, scale=0.15)
        accuracies = {}
        for mechanism in (RepairMechanism.NONE,
                          RepairMechanism.TOS_POINTER,
                          RepairMechanism.TOS_POINTER_AND_CONTENTS,
                          RepairMechanism.FULL_STACK):
            config = baseline_config().with_repair(mechanism)
            _, result, _ = committed_stream(program, config)
            accuracies[mechanism] = result.return_accuracy
        assert accuracies[RepairMechanism.NONE] < accuracies[
            RepairMechanism.TOS_POINTER_AND_CONTENTS]
        assert accuracies[RepairMechanism.TOS_POINTER] <= accuracies[
            RepairMechanism.FULL_STACK]
        assert accuracies[RepairMechanism.FULL_STACK] >= 0.99

    def test_cycles_monotone_with_work(self):
        _, short_result, _ = committed_stream(loop_sum_kernel(50))
        _, long_result, _ = committed_stream(loop_sum_kernel(500))
        assert long_result.cycles > short_result.cycles

    def test_stats_are_consistent(self):
        program = fibonacci_kernel(10)
        committed, result, cpu = committed_stream(program)
        assert result.instructions == len(committed)
        assert result.counter("fetched") >= result.counter("dispatched")
        assert result.counter("dispatched") == (
            result.instructions + result.counter("squashed"))
        assert cpu.frontend.shadow_pool.in_use == 0  # all slots returned


class TestLimitsAndFailures:
    def test_max_cycles_stops_early(self):
        program = loop_sum_kernel(10_000)
        cpu = SinglePathCPU(program, max_cycles=100)
        result = cpu.run()
        assert result.cycles <= 101
        assert not cpu.done

    def test_max_instructions_stops_early(self):
        program = loop_sum_kernel(10_000)
        cpu = SinglePathCPU(program, max_instructions=500)
        result = cpu.run()
        assert 500 <= result.instructions <= 504

    def test_correct_path_jump_into_the_weeds_is_detected(self):
        """A program whose *architectural* path leaves the text segment
        can never commit past the bad jump; the deadlock guard trips."""
        b = ProgramBuilder()
        b.label("main")
        b.li(1, 1 << 30)
        b.jr(1)
        b.halt()
        cpu = SinglePathCPU(b.build(entry="main"))
        with pytest.raises(SimulationError):
            cpu.run()

    def test_step_is_externally_drivable(self):
        program = loop_sum_kernel(5)
        cpu = SinglePathCPU(program)
        for _ in range(10_000):
            if cpu.done:
                break
            cpu.step()
        assert cpu.done
