"""Unit tests for the fast front-end simulator."""

import dataclasses

import pytest

from repro.config import RepairMechanism, baseline_config
from repro.emu import Emulator
from repro.errors import EmulationError
from repro.fastsim import FastFrontEndSim
from repro.workloads.generator import build_workload
from repro.workloads.kernels import fibonacci_kernel, loop_sum_kernel


def predictor(mechanism=RepairMechanism.TOS_POINTER_AND_CONTENTS, **over):
    config = baseline_config().with_repair(mechanism).predictor
    return dataclasses.replace(config, **over) if over else config


class TestBasics:
    def test_instruction_count_matches_emulator(self):
        program = fibonacci_kernel(10)
        golden = Emulator(program).run()
        result = FastFrontEndSim(program, predictor()).run()
        assert result.instructions == golden.instructions

    def test_loop_kernel_near_perfect(self):
        program = loop_sum_kernel(300)
        result = FastFrontEndSim(program, predictor()).run()
        assert result.cond_accuracy > 0.97

    def test_watchdog(self):
        from repro.isa import ProgramBuilder
        b = ProgramBuilder()
        b.label("main")
        b.j("main")
        sim = FastFrontEndSim(b.build(entry="main"), predictor(),
                              max_instructions=500)
        with pytest.raises(EmulationError):
            sim.run()

    def test_negative_wrong_path_rejected(self):
        with pytest.raises(ValueError):
            FastFrontEndSim(fibonacci_kernel(5), predictor(),
                            wrong_path_instructions=-1)

    def test_estimate_model(self):
        program = fibonacci_kernel(8)
        result = FastFrontEndSim(program, predictor(),
                                 branch_penalty=8.0, base_cpi=0.75).run()
        expected = result.instructions * 0.75 + result.mispredictions * 8.0
        assert result.estimated_cycles == pytest.approx(expected)
        assert 0 < result.estimated_ipc < 2


class TestWrongPathCorruption:
    def test_zero_wrong_path_means_no_corruption(self):
        """With no wrong-path walk the stack never corrupts, so even
        the no-repair stack predicts essentially perfectly."""
        program = build_workload("li", seed=1, scale=0.1)
        clean = FastFrontEndSim(
            program, predictor(RepairMechanism.NONE),
            wrong_path_instructions=0).run()
        dirty = FastFrontEndSim(
            program, predictor(RepairMechanism.NONE),
            wrong_path_instructions=24).run()
        assert clean.return_accuracy > 0.99
        assert dirty.return_accuracy < clean.return_accuracy
        assert dirty.counter("wrong_path_fetched") > 0

    def test_wrong_path_calls_and_returns_counted(self):
        program = build_workload("li", seed=1, scale=0.1)
        result = FastFrontEndSim(program, predictor()).run()
        assert result.counter("wrong_path_calls") > 0
        assert result.counter("wrong_path_returns") > 0

    def test_mechanism_ordering(self):
        program = build_workload("li", seed=1, scale=0.2)
        accuracy = {}
        for mechanism in (RepairMechanism.NONE,
                          RepairMechanism.TOS_POINTER,
                          RepairMechanism.TOS_POINTER_AND_CONTENTS,
                          RepairMechanism.FULL_STACK):
            result = FastFrontEndSim(program, predictor(mechanism)).run()
            accuracy[mechanism] = result.return_accuracy
        assert (accuracy[RepairMechanism.NONE]
                < accuracy[RepairMechanism.TOS_POINTER_AND_CONTENTS])
        assert accuracy[RepairMechanism.FULL_STACK] >= 0.999

    def test_longer_wrong_paths_corrupt_more(self):
        program = build_workload("vortex", seed=1, scale=0.1)
        short = FastFrontEndSim(program, predictor(RepairMechanism.NONE),
                                wrong_path_instructions=4).run()
        long = FastFrontEndSim(program, predictor(RepairMechanism.NONE),
                               wrong_path_instructions=48).run()
        assert long.return_accuracy <= short.return_accuracy + 0.01

    def test_btb_only_mode(self):
        program = build_workload("vortex", seed=1, scale=0.1)
        config = dataclasses.replace(predictor(), ras_enabled=False)
        result = FastFrontEndSim(program, config).run()
        assert result.return_accuracy < 0.9

    def test_small_stack_overflows(self):
        program = build_workload("vortex", seed=1, scale=0.1)
        config = dataclasses.replace(predictor(), ras_entries=2)
        result = FastFrontEndSim(program, config).run()
        assert result.counter("ras_overflows") > 0
