"""Property tests for the ChampSim ``return_stack`` port.

The port (:class:`repro.bpred.ras.ChampSimRas`) must stay bit-identical
to :class:`repro.corpus.diffcheck.ReferenceReturnStack`, the deliberate
straight-line transliteration of ChampSim's
``btb/basic_btb/return_stack.cc`` — over *randomized* call/return
streams, including deque overflow (drop-from-bottom) and the
backwards-return path. The corpus-level counterpart of these unit
properties is :mod:`repro.corpus.diffcheck` (see docs/validation.md).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.bpred import ChampSimRas, CircularRas, make_ras
from repro.config import RepairMechanism
from repro.corpus import ReferenceReturnStack
from repro.errors import ConfigError
from repro.isa.opcodes import WORD_SIZE

# ---------------------------------------------------------------------------
# Strategies: interleaved call/return streams over a small address
# space, so tracker slots collide and the deque overflows in practice.

_ips = st.integers(min_value=0, max_value=1 << 14)
_ops = st.lists(
    st.one_of(st.tuples(st.just("call"), _ips),
              st.tuples(st.just("return"), _ips)),
    max_size=200,
)


def _drive(ops, entries):
    """Run one op stream through both models, asserting lockstep."""
    ours = ChampSimRas(entries)
    reference = ReferenceReturnStack(max_size=entries)
    for kind, value in ops:
        if kind == "call":
            ours.push_call(value)
            reference.push(value)
        else:
            assert ours.prediction() == reference.prediction()
            ours.calibrate_call_size(value)
            reference.calibrate_call_size(value)
    return ours, reference


class TestBitIdentityProperties:
    @given(ops=_ops)
    def test_predictions_match_reference_transliteration(self, ops):
        """Every prediction over a random stream equals the reference's,
        and the full final state (stack + trackers) matches too."""
        ours, reference = _drive(ops, entries=8)
        assert ours.depth == len(reference.stack)
        assert ours.call_size_trackers == reference.call_size_trackers
        assert ours.prediction() == reference.prediction()

    @given(ops=_ops, entries=st.integers(min_value=1, max_value=16))
    def test_identity_holds_for_any_capacity(self, ops, entries):
        """Capacity only changes *when* the deque drops from the bottom;
        it must never desynchronise the two models."""
        ours, reference = _drive(ops, entries)
        assert ours.logical_entries() == [
            ip + reference.call_size_trackers[
                ip & (len(reference.call_size_trackers) - 1)]
            for ip in reversed(reference.stack)]

    @given(calls=st.lists(_ips, min_size=9, max_size=40))
    def test_overflow_drops_from_the_bottom(self, calls):
        """Past capacity the *oldest* call is discarded (deque
        ``pop_front``), unlike the wrapping CircularRas."""
        ours = ChampSimRas(8)
        for ip in calls:
            ours.push_call(ip)
        kept = calls[-8:]
        assert ours.depth == 8
        assert ours.logical_entries() == [
            ip + ours.call_size_trackers[ip & 1023]
            for ip in reversed(kept)]
        assert ours.stats["overflows"].value == len(calls) - 8


class TestChampSimSemantics:
    def test_calibration_learns_plausible_sizes_only(self):
        ras = ChampSimRas(4)
        ras.push_call(1000)
        ras.calibrate_call_size(1010)  # size 10: the largest accepted
        assert ras.call_size_trackers[1000 & 1023] == 10
        ras.push_call(1000)
        ras.calibrate_call_size(1011)  # size 11: rejected, keeps 10
        assert ras.call_size_trackers[1000 & 1023] == 10
        ras.push_call(2000)
        ras.calibrate_call_size(2005)
        assert ras.call_size_trackers[2000 & 1023] == 5
        ras.push_call(2000)
        assert ras.prediction() == 2005

    def test_backwards_return_counted_and_calibrated(self):
        ras = ChampSimRas(4)
        ras.push_call(1000)
        ras.calibrate_call_size(997)  # 3 bytes *below* the call site
        assert ras.backwards_returns == 1
        assert ras.call_size_trackers[1000 & 1023] == 3
        ras.push_call(3000)
        ras.calibrate_call_size(2000)  # 1000 below: counted, rejected
        assert ras.backwards_returns == 2
        assert ras.call_size_trackers[3000 & 1023] == \
            ChampSimRas.DEFAULT_CALL_SIZE

    def test_empty_stack_prediction_and_calibration(self):
        ras = ChampSimRas(4)
        assert ras.prediction() is None
        ras.calibrate_call_size(123)  # no-op, counted as underflow
        assert ras.stats["underflows"].value == 1

    def test_generic_interface_matches_fixed_width_isa(self):
        """The BaseRas adapters recover the call site from the pushed
        return address, so with untrained trackers pop() round-trips."""
        ras = make_ras(8, RepairMechanism.CHAMPSIM)
        assert isinstance(ras, ChampSimRas)
        ras.push(100 + WORD_SIZE)
        assert ras.top() == 100 + WORD_SIZE
        assert ras.pop() == 100 + WORD_SIZE
        assert ras.pop() is None
        assert ras.checkpoint() is None
        ras.restore(None)  # no repair state: must be a no-op

    def test_circular_ras_rejects_champsim_kind(self):
        with pytest.raises(ConfigError):
            CircularRas(8, RepairMechanism.CHAMPSIM)

    def test_clone_is_independent(self):
        ras = ChampSimRas(4)
        ras.push_call(1000)
        ras.calibrate_call_size(1005)
        ras.push_call(2000)
        twin = ras.clone()
        twin.push_call(3000)
        twin.calibrate_call_size(2000)
        assert ras.depth == 1
        assert ras.call_size_trackers[3000 & 1023] == \
            ChampSimRas.DEFAULT_CALL_SIZE
        assert ras.prediction() == 2000 + ChampSimRas.DEFAULT_CALL_SIZE
        assert twin.call_size_trackers[1000 & 1023] == 5

    def test_champsim_not_in_primary_mechanisms(self):
        from repro.config.options import PRIMARY_MECHANISMS
        assert RepairMechanism.CHAMPSIM not in PRIMARY_MECHANISMS
        assert RepairMechanism("champsim") is RepairMechanism.CHAMPSIM
