"""Tests for the telemetry subsystem: metrics, spans, ledger, CLI.

Covers the acceptance criteria of the telemetry PR: deterministic
metric aggregation (parallel == serial, bit-identical), ledger
round-trip across process "restarts" (fresh RunLedger instances),
``runs compare`` diff output, cache-provenance fields on JobResult,
the temp-file race fix in ResultCache.put, and the <3% overhead budget
on the scale-0.05 smoke sweep.
"""

import json
import time

import pytest

from repro import telemetry
from repro.cli import main as cli_main
from repro.config.defaults import baseline_config
from repro.core import ExperimentJob, JobResult, ResultCache, SweepExecutor
from repro.core.experiment import WorkloadSpec
from repro.core.sweep import stack_depth_sweep
from repro.errors import TelemetryError
from repro.telemetry import (
    MetricsRegistry,
    RunLedger,
    compare_entries,
    deterministic_view,
    metric_key,
    span,
)

SPEC = WorkloadSpec("li", seed=1, scale=0.05)
SIZES = (1, 4, 16)


def _jobs(sizes=SIZES, engine="fast"):
    base = baseline_config()
    return [ExperimentJob(SPEC, base.with_ras_entries(size), engine)
            for size in sizes]


@pytest.fixture(autouse=True)
def fresh_telemetry():
    """Force telemetry on and isolate global recorder/registry state."""
    telemetry.set_enabled(True)
    telemetry.recorder.clear()
    telemetry.reset_metrics()
    yield
    telemetry.set_enabled(None)
    telemetry.recorder.configure_sink(None)
    telemetry.recorder.clear()
    telemetry.reset_metrics()


class TestMetricsRegistry:
    def test_label_order_never_matters(self):
        assert metric_key("jobs", {"b": 2, "a": 1}) == "jobs{a=1,b=2}"
        registry = MetricsRegistry()
        assert (registry.counter("jobs", engine="fast", kind="x")
                is registry.counter("jobs", kind="x", engine="fast"))

    def test_snapshot_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("c", engine="fast").increment(3)
        registry.gauge("g").set(2.5)
        registry.rate("r").record_many(3, 4)
        registry.histogram("h").record(8, 2)
        snap = registry.snapshot()
        assert snap["counters"] == {"c{engine=fast}": 3}
        assert snap["rates"] == {"r": {"hits": 3, "events": 4}}
        assert MetricsRegistry.from_snapshot(snap).snapshot() == snap

    def test_merge_semantics(self):
        a = MetricsRegistry()
        a.counter("c").increment(1)
        a.gauge("g").set(5)
        a.rate("r").record_many(1, 2)
        a.histogram("h").record(1, 1)
        b = MetricsRegistry()
        b.counter("c").increment(2)
        b.gauge("g").set(3)
        b.rate("r").record_many(0, 2)
        b.histogram("h").record(1, 4)
        merged = a.merge(b.snapshot()).snapshot()
        assert merged["counters"]["c"] == 3          # counters add
        assert merged["gauges"]["g"] == 5.0          # gauges keep max
        assert merged["rates"]["r"] == {"hits": 1, "events": 4}
        assert merged["histograms"]["h"] == {"1": 5}

    def test_merge_is_order_independent(self):
        parts = []
        for hits, events, count in ((1, 3, 2), (4, 4, 1), (0, 2, 7)):
            registry = MetricsRegistry()
            registry.counter("c").increment(count)
            registry.rate("r").record_many(hits, events)
            registry.gauge("g").set(count)
            parts.append(registry.snapshot())
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        for snap in parts:
            forward.merge(snap)
        for snap in reversed(parts):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()


class TestSpans:
    def test_span_records_timing_and_attrs(self):
        with span("test/op", flavour="plain") as sp:
            sp.set(extra=1)
        records = telemetry.recorder.records("test/op")
        assert len(records) == 1
        assert records[0].attrs == {"flavour": "plain", "extra": 1}
        assert records[0].duration_ms >= 0.0

    def test_disabled_spans_record_nothing(self):
        telemetry.set_enabled(False)
        with span("test/op") as sp:
            assert sp is None
        assert telemetry.recorder.records("test/op") == []

    def test_span_survives_exceptions(self):
        with pytest.raises(ValueError):
            with span("test/fail"):
                raise ValueError("boom")
        assert len(telemetry.recorder.records("test/fail")) == 1

    def test_jsonl_sink(self, tmp_path):
        sink = tmp_path / "spans.jsonl"
        telemetry.recorder.configure_sink(str(sink))
        with span("test/sink", n=2):
            pass
        telemetry.recorder.configure_sink(None)
        lines = [json.loads(line) for line in
                 sink.read_text().splitlines() if line]
        assert lines and lines[-1]["name"] == "test/sink"
        assert lines[-1]["attrs"] == {"n": 2}
        assert "ms" in lines[-1] and "pid" in lines[-1]


class TestJobResultProvenance:
    def test_cold_then_warm_sets_wall_time_and_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = SweepExecutor(jobs=1, cache=cache).run(_jobs())
        assert all(not result.from_cache for result in cold)
        assert all(result.wall_time_s > 0.0 for result in cold)
        warm = SweepExecutor(jobs=1, cache=cache).run(_jobs())
        assert all(result.from_cache for result in warm)
        # a hit serves the original simulation cost, not ~zero
        assert [r.wall_time_s for r in warm] == [r.wall_time_s for r in cold]

    def test_pre_telemetry_cache_entry_still_loads(self):
        result = JobResult(engine="fast", instructions=10, cycles=5.0,
                           ipc=2.0, counters={}, rates={})
        legacy = result.to_json_dict()
        del legacy["wall_time_s"], legacy["from_cache"]
        loaded = JobResult.from_json_dict(legacy)
        assert loaded.wall_time_s == 0.0 and loaded.from_cache is False

    def test_as_dict_unchanged_by_provenance(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold, = SweepExecutor(jobs=1, cache=cache).run(_jobs(sizes=(4,)))
        warm, = SweepExecutor(jobs=1, cache=cache).run(_jobs(sizes=(4,)))
        assert cold.as_dict() == warm.as_dict()


class TestResultCachePut:
    def test_tmp_names_are_writer_unique(self, tmp_path):
        target = tmp_path / "ab" / "abcd.json"
        first = ResultCache._tmp_path(target)
        second = ResultCache._tmp_path(target)
        assert first != second
        assert first.name.startswith("abcd.json.")
        assert first.suffix == ".tmp"

    def test_put_leaves_no_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = JobResult(engine="fast", instructions=1, cycles=1.0,
                           ipc=1.0, counters={}, rates={})
        key = "ab" + "0" * 62
        cache.put(key, result)
        cache.put(key, result)  # same-key rewrite (the racing pattern)
        assert cache.get(key) == result
        assert not list(cache.root.rglob("*.tmp"))


class TestRunLedger:
    def _entry(self, **overrides):
        entry = {"kind": "sweep", "engines": ["fast"], "jobs": 1,
                 "cache": {"hits": 0, "misses": 3, "hit_rate": 0.0},
                 "configs": ["aa" * 32], "headline": {"return_accuracy": 0.9}}
        entry.update(overrides)
        return entry

    def test_roundtrip_survives_restart(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        first = RunLedger(path).append(self._entry())
        second = RunLedger(path).append(self._entry(jobs=4))
        # a fresh instance (a "restarted process") sees both entries
        reopened = RunLedger(path).entries()
        assert [entry["run_id"] for entry in reopened] \
            == [first["run_id"], second["run_id"]]
        assert all(RunLedger(path).verify(entry) for entry in reopened)

    def test_get_by_index_and_prefix(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        first = ledger.append(self._entry())
        second = ledger.append(self._entry(jobs=2))
        assert ledger.get("-1")["run_id"] == second["run_id"]
        assert ledger.get("0")["run_id"] == first["run_id"]
        assert ledger.get(first["run_id"][:8])["run_id"] == first["run_id"]
        with pytest.raises(TelemetryError):
            ledger.get("zzzz")
        with pytest.raises(TelemetryError):
            ledger.get("99")

    def test_tampered_entry_fails_verification(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        entry = ledger.append(self._entry())
        assert ledger.verify(entry)
        tampered = dict(entry)
        tampered["configs"] = ["bb" * 32]  # claim a different machine
        assert not ledger.verify(tampered)

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.append(self._entry())
        with open(path, "a") as stream:
            stream.write('{"kind": "sweep", "truncated')  # crashed writer
        assert len(RunLedger(path).entries()) == 1

    def test_missing_ledger_is_empty_and_get_raises(self, tmp_path):
        ledger = RunLedger(tmp_path / "nope.jsonl")
        assert ledger.entries() == []
        with pytest.raises(TelemetryError):
            ledger.get("-1")


class TestSweepLedger:
    def test_executor_appends_verified_entry(self, tmp_path):
        executor = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        executor.run(_jobs())
        ledger = RunLedger.at_root(tmp_path)
        entries = ledger.entries()
        assert len(entries) == 1
        entry = entries[0]
        assert ledger.verify(entry)
        assert entry["engines"] == ["fast"]
        assert entry["submitted"] == len(SIZES)
        assert entry["cache"] == {"hits": 0, "misses": len(SIZES),
                                  "hit_rate": 0.0}
        assert entry["workloads"] == [{"kind": "workload", "name": "li",
                                       "seed": 1, "scale": 0.05}]
        assert len(entry["configs"]) == len(SIZES)
        assert entry["wall_time_s"] > 0.0
        assert entry["headline"]["return_accuracy"] is not None
        counters = entry["metrics"]["counters"]
        assert counters["executor.jobs{engine=fast}"] == len(SIZES)
        assert counters["executor.cache_misses"] == len(SIZES)

    def test_parallel_ledger_and_metrics_identical_to_serial(self, tmp_path):
        serial = SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "a"))
        parallel = SweepExecutor(jobs=4, cache=ResultCache(tmp_path / "b"))
        serial.run(_jobs())
        parallel.run(_jobs())
        entry_serial = RunLedger.at_root(tmp_path / "a").entries()[0]
        entry_parallel = RunLedger.at_root(tmp_path / "b").entries()[0]
        # the full metrics snapshot is bit-identical...
        assert entry_serial["metrics"] == entry_parallel["metrics"]
        # ...and so is everything else except timing and the worker count
        view_serial = deterministic_view(entry_serial)
        view_parallel = deterministic_view(entry_parallel)
        assert view_serial.pop("jobs") == 1
        assert view_parallel.pop("jobs") == 4
        assert view_serial == view_parallel

    def test_warm_rerun_ledgers_full_hit_rate(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor(jobs=1, cache=cache).run(_jobs())
        SweepExecutor(jobs=1, cache=cache).run(_jobs())
        warm = RunLedger.at_root(tmp_path).entries()[-1]
        assert warm["cache"]["hits"] == len(SIZES)
        assert warm["cache"]["misses"] == 0
        assert warm["cache"]["hit_rate"] == 1.0

    def test_no_cache_means_no_ledger(self):
        executor = SweepExecutor(jobs=1, cache=None)
        executor.run(_jobs(sizes=(4,)))
        assert executor.ledger is None and executor.run_ids == []
        assert executor.last_entry is not None  # summary still built

    def test_explicit_ledger_without_cache(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        executor = SweepExecutor(jobs=1, cache=None, ledger=path)
        executor.run(_jobs(sizes=(4,)))
        assert len(RunLedger(path).entries()) == 1

    def test_executor_opt_out_suppresses_everything(self, tmp_path):
        executor = SweepExecutor(jobs=1, cache=ResultCache(tmp_path),
                                 telemetry_enabled=False)
        executor.run(_jobs(sizes=(4,)))
        assert RunLedger.at_root(tmp_path).entries() == []
        assert telemetry.recorder.records("sweep/run") == []
        assert telemetry.enabled()  # global switch untouched

    def test_spans_and_global_metrics_flow(self, tmp_path):
        SweepExecutor(jobs=1, cache=ResultCache(tmp_path)).run(_jobs())
        assert len(telemetry.recorder.records("sweep/run")) == 1
        assert len(telemetry.recorder.records("sweep/job")) == len(SIZES)
        snap = telemetry.metrics().snapshot()
        assert snap["counters"]["cache.get{outcome=miss}"] == len(SIZES)
        assert snap["counters"]["cache.put"] == len(SIZES)


class TestCompare:
    def test_compare_reports_config_and_metric_deltas(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.run(_jobs(sizes=(1, 4)))
        executor.run(_jobs(sizes=(1, 8)))  # one config swapped
        a, b = RunLedger.at_root(tmp_path).entries()
        diff = compare_entries(a, b)
        assert diff["a"] == a["run_id"] and diff["b"] == b["run_id"]
        configs = diff["fields"]["configs"]
        assert len(configs["added"]) == 1 and len(configs["removed"]) == 1
        assert diff["metrics"]["cache.misses"]["delta"] == -1.0  # one hit
        accuracy = diff["metrics"]["headline.return_accuracy"]
        assert accuracy["a"] is not None and accuracy["b"] is not None

    def test_identical_sweeps_differ_only_in_timing(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor(jobs=1, cache=cache).run(_jobs())
        SweepExecutor(jobs=1, cache=cache).run(_jobs())
        a, b = RunLedger.at_root(tmp_path).entries()
        diff = compare_entries(a, b)
        assert "configs" not in diff["fields"]
        assert diff["metrics"]["headline.return_accuracy"]["delta"] == 0.0


class TestRunsCli:
    def _sweep_twice(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        argv = ["stack-depth", "--names", "li", "--scale", "0.05"]
        assert cli_main(argv) == 0
        assert cli_main(argv) == 0
        return str(tmp_path / "cache" / "ledger.jsonl")

    def test_runs_list_show_compare(self, tmp_path, monkeypatch, capsys):
        ledger_path = self._sweep_twice(tmp_path, monkeypatch)
        assert cli_main(["runs", "list", "--ledger", ledger_path]) == 0
        listing = capsys.readouterr().out
        assert "Run ledger" in listing and "cache hit %" in listing
        assert cli_main(["runs", "show", "-1", "--ledger", ledger_path]) == 0
        shown = capsys.readouterr().out
        assert "content hash ok" in shown
        out = tmp_path / "diff.json"
        assert cli_main(["runs", "compare", "-2", "-1",
                         "--ledger", ledger_path,
                         "--json", str(out)]) == 0
        compared = capsys.readouterr().out
        assert "identical configuration" in compared
        assert "cache.hits" in compared
        diff = json.loads(out.read_text())
        assert diff["metrics"]["cache.hit_rate"]["b"] == 1.0

    def test_runs_errors_are_friendly(self, tmp_path, capsys):
        missing = str(tmp_path / "none.jsonl")
        assert cli_main(["runs", "list", "--ledger", missing]) == 1
        assert cli_main(["runs", "show", "-1", "--ledger", missing]) == 1
        assert "repro-sim runs" in capsys.readouterr().err

    def test_no_telemetry_flag_writes_no_ledger(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli_main(["stack-depth", "--names", "li", "--scale", "0.05",
                         "--no-telemetry"]) == 0
        assert not (tmp_path / "cache" / "ledger.jsonl").exists()
        assert telemetry.enabled()  # the opt-out is scoped to the call

    def test_env_kill_switch(self, tmp_path, monkeypatch):
        telemetry.set_enabled(None)  # hand control back to the env
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli_main(["stack-depth", "--names", "li",
                         "--scale", "0.05"]) == 0
        assert not (tmp_path / "cache" / "ledger.jsonl").exists()

    def test_json_payload_carries_cache_stats(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "table.json"
        assert cli_main(["stack-depth", "--names", "li", "--scale", "0.05",
                         "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["cache"]["misses"] > 0
        assert payload["cache"]["hits"] == 0
        assert payload["wall_time_s"] > 0.0
        assert len(payload["run_ids"]) >= 1

    def test_cli_summary_line_on_stderr(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli_main(["stack-depth", "--names", "li",
                         "--scale", "0.05"]) == 0
        err = capsys.readouterr().err
        assert "cache:" in err and "hit rate" in err and "run " in err


class TestOverheadBudget:
    def test_overhead_under_three_percent_on_smoke_sweep(self, tmp_path):
        """The acceptance budget: telemetry on (spans + metrics + ledger,
        and trace capture — tracing defaults on) costs <3% wall time on
        the scale-0.05 smoke sweep."""
        from repro.obs import context as tracectx
        assert tracectx.tracing_enabled()
        sizes = (1, 2, 4, 8, 16, 32)
        ledger_path = tmp_path / "ledger.jsonl"

        def timed(telemetry_on: bool) -> float:
            telemetry.set_enabled(telemetry_on)
            executor = SweepExecutor(
                jobs=1, cache=None,
                ledger=ledger_path if telemetry_on else None)
            started = time.perf_counter()
            stack_depth_sweep(SPEC, sizes, executor=executor)
            return time.perf_counter() - started

        timed(False)  # warm the program build memo before timing
        timed(True)
        baseline, instrumented = [], []
        for _ in range(3):
            baseline.append(timed(False))
            instrumented.append(timed(True))
        telemetry.set_enabled(True)
        best_off = min(baseline)
        best_on = min(instrumented)
        # the absolute floor only matters for degenerate sub-ms runs
        budget = max(best_off * 1.03, best_off + 0.004)
        assert best_on <= budget, (
            f"telemetry overhead {(best_on / best_off - 1) * 100:.2f}% "
            f"exceeds the 3% budget ({best_on:.4f}s vs {best_off:.4f}s)")
        # the instrumented runs really did ledger their sweeps
        assert len(RunLedger(ledger_path).entries()) >= 4
