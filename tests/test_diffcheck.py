"""Tests for the differential ChampSim cross-validation harness.

Three layers: :func:`diff_events` on synthetic streams (including the
calibration-win divergence that separates ``none`` from the reference),
the executor-routed :func:`diff_corpus` path with its cached counters,
and the CLI gate — which must exit non-zero, and record context in its
JSON artifact, when ``REPRO_DIFF_CORRUPT_EVENT`` perturbs one event.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.config.options import RepairMechanism
from repro.core.executor import ExperimentJob, ResultCache, SweepExecutor
from repro.corpus import (
    CorpusStore,
    DiffReport,
    DivergenceError,
    diff_corpus,
    diff_events,
    diff_shard,
)
from repro.corpus.diffcheck import CORRUPT_ENV, DIFF_SCHEMA
from repro.isa.opcodes import ControlClass
from repro.trace.format import ControlFlowEvent

DATA = pathlib.Path(__file__).parent / "data"
SAMPLE_CHAMPSIM = DATA / "sample_champsim.trace.xz"


def _sample_store(tmp_path):
    store = CorpusStore.create(tmp_path / "corpus")
    store.import_champsim(SAMPLE_CHAMPSIM, name="sample")
    return store


def _calibration_events():
    """A call whose true size (5) differs from the pc+4 default."""
    return [
        ControlFlowEvent(ControlClass.CALL_DIRECT, 100, 200),
        ControlFlowEvent(ControlClass.RETURN, 240, 105),
        ControlFlowEvent(ControlClass.CALL_DIRECT, 100, 200),
        ControlFlowEvent(ControlClass.RETURN, 240, 105),
    ]


class TestDiffEvents:
    def test_champsim_variant_matches_reference_exactly(self):
        report = diff_events(_calibration_events())
        assert report.ok
        assert report.returns == 2
        # the first return misses (untrained tracker), the second hits
        # on both sides once the 5-byte call size is learned
        assert report.pairs == {"ours": (1, 2), "reference": (1, 2)}
        report.ensure()  # must not raise

    def test_calibration_win_separates_none_from_reference(self):
        """``none`` keeps predicting call+4; the reference learns the
        5-byte call size — the second return is the divergence."""
        report = diff_events(_calibration_events(),
                             mechanism=RepairMechanism.NONE)
        assert report.divergences == 1
        first = report.first_divergence
        assert first["event"] == 3
        assert first["ours"] == 104
        assert first["reference"] == 105
        assert first["ours_hit"] is False
        assert first["reference_hit"] is True
        assert [e["event"] for e in first["context"]] == [0, 1, 2]
        with pytest.raises(DivergenceError):
            report.ensure()

    def test_sample_shard_has_zero_divergences(self, tmp_path):
        """The acceptance bar: the checked-in trace replays clean."""
        store = _sample_store(tmp_path)
        report = diff_shard(store.spec("sample"))
        assert report.ok
        assert report.returns == 93
        assert report.ours_hits == 93
        assert report.reference_hits == 93
        assert report.checksum == store.manifest.get("sample").checksum

    def test_report_json_roundtrip(self):
        report = diff_events(_calibration_events(),
                             mechanism=RepairMechanism.NONE)
        data = report.to_json_dict()
        assert data["schema"] == DIFF_SCHEMA
        assert data["ok"] is False
        assert DiffReport.from_json_dict(
            json.loads(json.dumps(data))) == report
        with pytest.raises(DivergenceError):
            DiffReport.from_json_dict({"schema": 99})


class TestDiffCorpus:
    def test_executor_path_matches_direct_replay(self, tmp_path):
        store = _sample_store(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        executor = SweepExecutor(jobs=1, cache=cache)
        reports = diff_corpus(store, executor=executor)
        assert [r.shard for r in reports] == ["sample"]
        assert reports[0] == diff_shard(store.spec("sample"))
        # warm run: the diffcheck engine result is served from cache
        warm = SweepExecutor(jobs=1, cache=cache)
        assert diff_corpus(store, executor=warm) == reports
        assert warm.cache_stats()["hits"] == 1

    def test_diffcheck_engine_counters(self, tmp_path):
        store = _sample_store(tmp_path)
        from repro.config.defaults import baseline_config
        config = baseline_config() \
            .with_repair(RepairMechanism.CHAMPSIM).with_ras_entries(64)
        job = ExperimentJob(store.spec("sample"), config,
                            engine="diffcheck")
        result = SweepExecutor(jobs=1, cache=None).run([job])[0]
        assert result.counter("divergences") == 0
        assert result.counter("returns") == 93
        assert result.rates["agreement"] == 1.0

    def test_corruption_knob_bypasses_the_cache(self, tmp_path,
                                                monkeypatch):
        """A corrupted run must neither read nor poison cached
        entries: the clean report stays reproducible afterwards."""
        store = _sample_store(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        clean = diff_corpus(store,
                            executor=SweepExecutor(jobs=1, cache=cache))
        monkeypatch.setenv(CORRUPT_ENV, "0")
        corrupted = diff_corpus(
            store, executor=SweepExecutor(jobs=1, cache=cache))
        assert corrupted[0].divergences == 1
        monkeypatch.delenv(CORRUPT_ENV)
        again = diff_corpus(store,
                            executor=SweepExecutor(jobs=1, cache=cache))
        assert again == clean


class TestCliGate:
    def test_clean_run_exits_zero_and_writes_report(self, tmp_path):
        store = _sample_store(tmp_path)
        out = tmp_path / "diffreport.json"
        rc = main(["corpus", "diffcheck", str(store.root),
                   "--report", str(out), "--no-cache", "--no-telemetry"])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["reports"][0]["divergences"] == 0

    def test_injected_divergence_turns_the_gate_red(self, tmp_path,
                                                    monkeypatch):
        """The corpus-smoke CI negative check, as a unit test: corrupt
        one event, and the exact same invocation must exit 1 with the
        divergence (and its context) recorded in the artifact."""
        store = _sample_store(tmp_path)
        out = tmp_path / "corrupted.json"
        monkeypatch.setenv(CORRUPT_ENV, "7")
        rc = main(["corpus", "diffcheck", str(store.root),
                   "--report", str(out), "--no-cache", "--no-telemetry"])
        assert rc == 1
        payload = json.loads(out.read_text())
        assert payload["ok"] is False
        report = payload["reports"][0]
        assert report["divergences"] == 1
        first = report["first_divergence"]
        assert first is not None
        assert first["ours_hit"] != first["reference_hit"]
        assert first["context"], "first divergence carries no context"
