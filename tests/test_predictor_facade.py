"""Unit tests for the front-end predictor facade."""

import pytest

from repro.bpred import FrontEndPredictor
from repro.config import BranchPredictorConfig, RepairMechanism
from repro.isa import Instruction, Opcode
from repro.isa.opcodes import ControlClass


def small_config(**overrides):
    defaults = dict(
        gag_entries=64,
        pag_history_entries=64,
        pag_history_bits=6,
        selector_entries=64,
        btb_sets=16,
        btb_assoc=2,
        ras_entries=8,
    )
    defaults.update(overrides)
    return BranchPredictorConfig(**defaults)


def cond(target=64):
    return Instruction(Opcode.BNEZ, rs=1, target=target)


class TestConditionalPrediction:
    def test_taken_needs_btb_hit(self):
        fe = FrontEndPredictor(small_config())
        branch = cond(target=64)
        # Train taken at commit so the direction predictor says taken
        # and the BTB has the target.
        for _ in range(4):
            fe.train_commit(0, branch, taken=True, target=64)
        p = fe.predict(0, branch)
        assert p.taken
        assert p.target == 64

    def test_taken_with_btb_miss_falls_through(self):
        fe = FrontEndPredictor(small_config())
        branch = cond(target=64)
        # Make the direction predictor strongly taken WITHOUT a BTB
        # entry: train a different PC that aliases in the direction
        # tables but not in the BTB... simplest: train taken, then evict
        # by training not-taken branches is fiddly — instead check the
        # power-on state: weakly-taken counters predict taken, BTB empty.
        p = fe.predict(0, branch)
        assert not p.taken             # decoupled-BTB miss demotes to NT
        assert p.target == 4

    def test_not_taken_predicts_fallthrough(self):
        fe = FrontEndPredictor(small_config())
        branch = cond()
        for _ in range(4):
            fe.train_commit(0, branch, taken=False, target=64)
        p = fe.predict(0, branch)
        assert not p.taken
        assert p.target == 4


class TestDirectTransfers:
    def test_direct_jump_uses_instruction_target(self):
        fe = FrontEndPredictor(small_config())
        p = fe.predict(0, Instruction(Opcode.J, target=120))
        assert p.taken and p.target == 120
        assert p.checkpoint is None    # direct jumps cannot mispredict

    def test_direct_call_pushes_return_address(self):
        fe = FrontEndPredictor(small_config())
        fe.predict(100, Instruction(Opcode.JAL, target=0))
        assert fe.ras.top() == 104


class TestReturns:
    def test_return_pops_matching_call(self):
        fe = FrontEndPredictor(small_config())
        fe.predict(100, Instruction(Opcode.JAL, target=0))
        p = fe.predict(200, Instruction(Opcode.RET))
        assert p.target == 104
        assert p.used_ras
        assert not p.from_btb

    def test_return_without_ras_uses_btb(self):
        fe = FrontEndPredictor(small_config(ras_enabled=False))
        assert fe.ras is None
        ret = Instruction(Opcode.RET)
        fe.train_commit(200, ret, taken=True, target=104)
        p = fe.predict(200, ret)
        assert p.from_btb
        assert p.target == 104

    def test_return_without_ras_and_cold_btb_falls_through(self):
        fe = FrontEndPredictor(small_config(ras_enabled=False))
        p = fe.predict(200, Instruction(Opcode.RET))
        assert p.target == 204

    def test_valid_bits_fallback_to_btb(self):
        fe = FrontEndPredictor(small_config(
            ras_repair=RepairMechanism.VALID_BITS))
        ret = Instruction(Opcode.RET)
        fe.train_commit(200, ret, taken=True, target=444)
        p = fe.predict(200, ret)   # empty stack -> invalid entry
        assert p.from_btb
        assert p.target == 444


class TestIndirects:
    def test_indirect_jump_via_btb(self):
        fe = FrontEndPredictor(small_config())
        jr = Instruction(Opcode.JR, rs=1)
        fe.train_commit(40, jr, taken=True, target=400)
        p = fe.predict(40, jr)
        assert p.from_btb and p.target == 400

    def test_indirect_call_pushes_despite_btb_miss(self):
        fe = FrontEndPredictor(small_config())
        p = fe.predict(40, Instruction(Opcode.JALR, rs=1))
        assert p.target == 44           # no prediction -> fallthrough
        assert fe.ras.top() == 44       # the push still happens


class TestCheckpointDiscipline:
    def test_checkpoint_after_own_ras_action(self):
        """A return's checkpoint must capture the *popped* stack."""
        fe = FrontEndPredictor(small_config())
        fe.predict(0, Instruction(Opcode.JAL, target=0))    # pushes 4
        fe.predict(8, Instruction(Opcode.JAL, target=0))    # pushes 12
        p = fe.predict(200, Instruction(Opcode.RET))        # pops 12
        # wrong-path activity after the return...
        fe.ras.pop()
        fe.ras.push(999)
        fe.repair(p)
        # ...must restore to the post-pop state: top is 4, not 12.
        assert fe.ras.top() == 4

    def test_release_frees_slot(self):
        fe = FrontEndPredictor(small_config(shadow_checkpoint_slots=1))
        p1 = fe.predict(0, cond())
        assert p1.has_slot
        p2 = fe.predict(4, cond())
        assert not p2.has_slot          # pool exhausted: no checkpoint
        fe.release(p1)
        p3 = fe.predict(8, cond())
        assert p3.has_slot

    def test_repair_without_slot_is_noop(self):
        fe = FrontEndPredictor(small_config(shadow_checkpoint_slots=0))
        fe.ras.push(100)
        p = fe.predict(200, Instruction(Opcode.RET))
        fe.ras.push(666)
        fe.repair(p)                    # nothing to restore
        assert fe.ras.top() == 666

    def test_double_release_safe(self):
        fe = FrontEndPredictor(small_config(shadow_checkpoint_slots=4))
        p = fe.predict(0, cond())
        fe.release(p)
        fe.release(p)                   # second release is a no-op
        assert fe.shadow_pool.in_use == 0


class TestCommitTraining:
    def test_return_accuracy_stat(self):
        fe = FrontEndPredictor(small_config())
        fe.predict(100, Instruction(Opcode.JAL, target=0))
        ret = Instruction(Opcode.RET)
        p = fe.predict(200, ret)
        fe.train_commit(200, ret, taken=True, target=104, prediction=p)
        assert fe.return_accuracy == pytest.approx(1.0)

    def test_cond_accuracy_counts_target(self):
        fe = FrontEndPredictor(small_config())
        branch = cond(target=64)
        p = fe.predict(0, branch)          # predicted NT (cold BTB)
        fe.train_commit(0, branch, taken=True, target=64, prediction=p)
        assert fe.cond_accuracy == pytest.approx(0.0)

    def test_indirect_accuracy(self):
        fe = FrontEndPredictor(small_config())
        jr = Instruction(Opcode.JR, rs=1)
        p = fe.predict(40, jr)
        fe.train_commit(40, jr, taken=True, target=400, prediction=p)
        assert fe.indirect_accuracy == pytest.approx(0.0)
        p = fe.predict(40, jr)
        assert p.target == 400
