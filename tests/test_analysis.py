"""Unit tests for the analysis instruments and the target cache."""

import pytest

from repro.analysis import CorruptionAnalyzer, compare_return_predictors
from repro.analysis.corruption import CATEGORIES, CorruptionBreakdown
from repro.bpred.target_cache import TargetCache
from repro.config import RepairMechanism, baseline_config
from repro.workloads import build_workload
from repro.workloads.kernels import fibonacci_kernel, loop_sum_kernel


class TestTargetCache:
    def test_cold_miss(self):
        cache = TargetCache(entries=64)
        assert cache.predict(100) is None

    def test_single_target_learned(self):
        cache = TargetCache(entries=64, history_targets=0)
        cache.update(100, 400)
        assert cache.predict(100) == 400

    def test_history_distinguishes_contexts(self):
        """With target history, the same return PC maps to different
        table entries depending on the recent-target path — so two
        alternating callers can both be predicted correctly."""
        cache = TargetCache(entries=256, history_targets=2)
        # Simulate: call from A (target X) then return to A'; call from
        # B (target X) then return to B'. The call's target update
        # shifts history, contextualising the return.
        for _ in range(8):
            cache.update(40, 100)    # call site A -> f
            cache.update(200, 44)    # return, seen after A's call
            cache.update(80, 100)    # call site B -> f
            cache.update(200, 84)    # return, seen after B's call
        # Continue the same pattern, predicting before each update.
        cache.update(40, 100)
        assert cache.predict(200) == 44
        cache.update(200, 44)
        cache.update(80, 100)
        assert cache.predict(200) == 84

    def test_no_history_cannot_distinguish(self):
        cache = TargetCache(entries=256, history_targets=0)
        for _ in range(4):
            cache.update(200, 44)
            cache.update(200, 84)
        # Only the last target survives.
        assert cache.predict(200) == 84

    def test_validation(self):
        with pytest.raises(ValueError):
            TargetCache(entries=100)
        with pytest.raises(ValueError):
            TargetCache(history_targets=-1)
        with pytest.raises(ValueError):
            TargetCache(bits_per_target=0)

    def test_stats(self):
        # history_targets=0 so the update does not move the index.
        cache = TargetCache(entries=64, history_targets=0)
        cache.predict(0)
        cache.update(0, 40)
        cache.predict(0)
        assert cache.stats["lookups"].value == 2
        assert cache.stats["hits"].value == 1


class TestCorruptionBreakdown:
    def test_empty(self):
        b = CorruptionBreakdown()
        assert b.fraction("clean") is None
        assert b.implied_hit_rate(RepairMechanism.FULL_STACK) is None

    def test_implied_hit_rates_accumulate(self):
        b = CorruptionBreakdown()
        for category, count in (("clean", 6), ("needs_pointer", 2),
                                ("needs_contents", 1), ("needs_full", 1)):
            for _ in range(count):
                b.record(category)
        assert b.implied_hit_rate(RepairMechanism.NONE) == pytest.approx(0.6)
        assert b.implied_hit_rate(
            RepairMechanism.TOS_POINTER) == pytest.approx(0.8)
        assert b.implied_hit_rate(
            RepairMechanism.TOS_POINTER_AND_CONTENTS) == pytest.approx(0.9)
        assert b.implied_hit_rate(
            RepairMechanism.FULL_STACK) == pytest.approx(1.0)

    def test_rows_cover_all_categories(self):
        b = CorruptionBreakdown()
        b.record("clean")
        rows = b.as_rows()
        assert [row[0] for row in rows] == list(CATEGORIES)


class TestCorruptionAnalyzer:
    def test_loop_kernel_is_clean(self):
        """No calls -> no returns -> empty breakdown."""
        breakdown = CorruptionAnalyzer(loop_sum_kernel(100)).run()
        assert breakdown.returns == 0

    def test_fibonacci_mostly_clean(self):
        breakdown = CorruptionAnalyzer(fibonacci_kernel(10)).run()
        assert breakdown.returns > 0
        assert breakdown.counts["unrepairable"] == 0

    def test_paper_shape_on_real_workload(self):
        """needs_full + unrepairable must be a small tail — the paper's
        quantitative argument for pointer+contents."""
        program = build_workload("li", seed=1, scale=0.15)
        breakdown = CorruptionAnalyzer(
            program, baseline_config().predictor).run()
        assert breakdown.returns > 100
        tail = (breakdown.fraction("needs_full") or 0) + (
            breakdown.fraction("unrepairable") or 0)
        assert tail < 0.05
        implied = breakdown.implied_hit_rate(
            RepairMechanism.TOS_POINTER_AND_CONTENTS)
        assert implied > 0.95

    def test_implied_rates_are_monotone(self):
        program = build_workload("go", seed=2, scale=0.1)
        breakdown = CorruptionAnalyzer(program).run()
        ptr = breakdown.implied_hit_rate(RepairMechanism.TOS_POINTER)
        contents = breakdown.implied_hit_rate(
            RepairMechanism.TOS_POINTER_AND_CONTENTS)
        full = breakdown.implied_hit_rate(RepairMechanism.FULL_STACK)
        assert ptr <= contents <= full

    def test_no_wrong_path_means_all_clean(self):
        program = build_workload("vortex", seed=1, scale=0.1)
        breakdown = CorruptionAnalyzer(
            program, wrong_path_instructions=0).run()
        assert breakdown.fraction("clean") == pytest.approx(1.0)


class TestReturnPredictorComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        program = build_workload("vortex", seed=1, scale=0.15)
        return compare_return_predictors(program)

    def test_ras_is_nearly_perfect(self, comparison):
        assert comparison.accuracy["ras"] > 0.99

    def test_history_helps_target_cache(self, comparison):
        assert (comparison.accuracy["target-cache-h4"]
                >= comparison.accuracy["target-cache-h0"])

    def test_general_predictors_fall_short_of_ras(self, comparison):
        """The paper's related-work claim, measured."""
        assert comparison.best_general() < comparison.accuracy["ras"] - 0.1

    def test_return_count_positive(self, comparison):
        assert comparison.returns > 100
