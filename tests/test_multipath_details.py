"""Finer-grained multipath behaviour: forking, zombies, forwarding."""

import pytest

from repro.config import StackOrganization, baseline_config
from repro.emu import Emulator
from repro.isa import ProgramBuilder
from repro.multipath import MultipathCPU


def coin_flip_loop(iterations=120, with_calls=True):
    """A loop around an unlearnable 50/50 branch — every fetch of it is
    low-confidence at first, so forks happen immediately."""
    b = ProgramBuilder()
    b.label("main")
    b.li(29, 0x80000)
    b.li(20, 0x2545F4914F6CDD1D)
    b.li(21, 6364136223846793005)
    b.li(10, iterations)
    b.label("loop")
    b.mul(20, 20, 21)
    b.addi(20, 20, 999331)
    b.srli(22, 20, 37)
    b.andi(23, 22, 1)
    b.beqz(23, "other_site")
    if with_calls:
        b.jal("callee")      # call site A: concurrent paths call the
        b.j("join")          # same callee from different sites, so a
        b.label("other_site")  # unified stack interleaves different
        b.jal("callee")      # return addresses (call site B)
        b.label("join")
        b.jal("callee")      # call site C: a return follows the fork
    else:
        b.addi(1, 1, 1)
        b.j("join")
        b.label("other_site")
        b.addi(1, 1, 2)
        b.label("join")
    b.addi(10, 10, -1)
    b.bnez(10, "loop")
    b.halt()
    if with_calls:
        b.label("callee")
        b.addi(2, 2, 1)
        b.addi(2, 2, 1)
        b.ret()
    return b.build(entry="main")


def run_multipath(program, paths=2, org=StackOrganization.PER_PATH):
    config = baseline_config().with_multipath(paths, org)
    cpu = MultipathCPU(program, config)
    result = cpu.run()
    return result, cpu


class TestForking:
    def test_forks_happen_on_coin_flips(self):
        result, _ = run_multipath(coin_flip_loop())
        assert result.counter("forks") > 20

    def test_fork_saves_mispredictions(self):
        """~half the coin flips mispredict; with a spare context most
        of those should have their correct side already running."""
        result, _ = run_multipath(coin_flip_loop())
        assert result.counter("fork_saved_mispredictions") > 10

    def test_path_budget_respected(self):
        program = coin_flip_loop()
        for paths in (2, 4):
            config = baseline_config().with_multipath(
                paths, StackOrganization.PER_PATH)
            cpu = MultipathCPU(program, config)
            max_alive = 0
            while not cpu.done:
                cpu.step()
                max_alive = max(max_alive, len(cpu._alive_paths()))
            assert max_alive <= paths

    def test_single_context_never_forks(self):
        result, _ = run_multipath(coin_flip_loop(), paths=1)
        assert result.counter("forks") == 0

    def test_confidence_suppresses_forks_on_easy_branches(self):
        """The loop back-edge is almost-always-taken: after warmup the
        JRS counters saturate and it stops forking; the coin flip keeps
        forking. With only easy branches, forks must be rare."""
        easy = coin_flip_loop(with_calls=False)
        hard_result, _ = run_multipath(easy)
        # now a purely easy loop:
        b = ProgramBuilder()
        b.label("main")
        b.li(10, 400)
        b.label("loop")
        b.addi(1, 1, 1)
        b.addi(10, 10, -1)
        b.bnez(10, "loop")
        b.halt()
        easy_result, _ = run_multipath(b.build(entry="main"))
        assert easy_result.counter("forks") < hard_result.counter("forks")

    def test_bubbles_consume_commit_slots(self):
        result, _ = run_multipath(coin_flip_loop())
        assert result.counter("bubbles_retired") > 0


class TestZombiePaths:
    def test_lost_paths_exist_transiently(self):
        """When the explored side wins, the parent becomes a zombie
        (lost but not dead) until its entries drain."""
        program = coin_flip_loop()
        config = baseline_config().with_multipath(
            2, StackOrganization.PER_PATH)
        cpu = MultipathCPU(program, config)
        saw_zombie = False
        while not cpu.done:
            cpu.step()
            if any(p.lost and not p.dead for p in cpu._paths):
                saw_zombie = True
        assert saw_zombie

    def test_dead_paths_are_pruned(self):
        program = coin_flip_loop(iterations=300)
        config = baseline_config().with_multipath(
            4, StackOrganization.PER_PATH)
        cpu = MultipathCPU(program, config)
        cpu.run()
        # pruning keeps the path list bounded even after hundreds of
        # forks (it runs every 512 cycles).
        assert len(cpu._paths) < 64


class TestPerPathStacks:
    def test_per_path_stack_isolated_from_sibling(self):
        """With per-path stacks, heavy forking around calls must not
        degrade return prediction."""
        result, _ = run_multipath(
            coin_flip_loop(), org=StackOrganization.PER_PATH)
        assert result.return_accuracy > 0.95

    def test_unified_stack_contention_visible(self):
        per_path, _ = run_multipath(
            coin_flip_loop(), org=StackOrganization.PER_PATH)
        unified, _ = run_multipath(
            coin_flip_loop(), org=StackOrganization.UNIFIED)
        assert unified.return_accuracy < per_path.return_accuracy

    def test_golden_equivalence_max_paths_8(self):
        program = coin_flip_loop()
        golden = [(r.pc, r.next_pc) for r in Emulator(program).trace()]
        committed = []
        config = baseline_config().with_multipath(
            8, StackOrganization.PER_PATH)
        cpu = MultipathCPU(program, config, commit_hook=lambda e: committed.append(
            (e.pc, e.pc if e.outcome.is_halt else e.outcome.next_pc)))
        cpu.run()
        assert committed == golden


class TestStoreForwardingAcrossForks:
    def test_child_sees_pre_fork_store(self):
        """A store before the forked branch, a dependent load after it:
        whichever side wins, the load must see the stored value."""
        b = ProgramBuilder()
        b.label("main")
        b.li(29, 0x80000)
        b.li(20, 0x2545F4914F6CDD1D)
        b.li(21, 6364136223846793005)
        b.li(10, 60)
        b.li(4, 0x4000)
        b.label("loop")
        b.mul(20, 20, 21)
        b.addi(20, 20, 7)
        b.store(20, 4, 0)          # store LCG state
        b.srli(22, 20, 41)
        b.andi(23, 22, 1)
        b.beqz(23, "skip")
        b.load(5, 4, 0)            # taken side: load it back
        b.xor(6, 6, 5)
        b.label("skip")
        b.load(7, 4, 0)            # both sides: load it back
        b.xor(8, 8, 7)
        b.addi(10, 10, -1)
        b.bnez(10, "loop")
        b.halt()
        program = b.build(entry="main")

        emulator = Emulator(program)
        emulator.run()
        _, cpu = run_multipath(program)
        assert cpu.final_regs == emulator.state.regs
