"""Tests for the CI performance-regression gate (repro.bench.gate)."""

import json

import pytest

from repro.bench import (
    BenchGateError,
    compare_against_baseline,
    load_baseline,
    load_bench_dir,
    render_report,
    snapshot_baseline,
    write_baseline,
)
from repro.cli import main as cli_main


def write_bench(out_dir, name, wall, rows=3, scale=0.05, seed=1):
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": 1,
        "name": name,
        "title": name,
        "headers": ["a", "b"],
        "rows": [["x", i] for i in range(rows)],
        "wall_time_s": wall,
        "scale": scale,
        "seed": seed,
    }
    (out_dir / f"BENCH_{name}.json").write_text(json.dumps(payload))


def make_run(out_dir, walls, **kwargs):
    for name, wall in walls.items():
        write_bench(out_dir, name, wall, **kwargs)


def statuses(checks):
    return {check.name: check.status for check in checks}


class TestSnapshot:
    def test_roundtrip_through_file(self, tmp_path):
        make_run(tmp_path / "out", {"alpha": 1.0, "beta": 0.01})
        payload = write_baseline(tmp_path / "out", tmp_path / "base.json",
                                 tolerance=0.4, note="capture")
        loaded = load_baseline(tmp_path / "base.json")
        assert loaded == payload
        assert loaded["tolerance"] == 0.4
        assert loaded["source"] == {"scale": 0.05, "seed": 1}
        assert set(loaded["benches"]) == {"alpha", "beta"}

    def test_mixed_scale_rejected(self, tmp_path):
        write_bench(tmp_path / "out", "alpha", 1.0, scale=0.05)
        write_bench(tmp_path / "out", "beta", 1.0, scale=0.25)
        with pytest.raises(BenchGateError, match="mixed scale/seed"):
            snapshot_baseline(tmp_path / "out")

    def test_empty_dir_rejected(self, tmp_path):
        (tmp_path / "out").mkdir()
        with pytest.raises(BenchGateError, match="no BENCH_"):
            load_bench_dir(tmp_path / "out")

    def test_bad_schema_rejected(self, tmp_path):
        (tmp_path / "base.json").write_text(
            json.dumps({"schema": 99, "benches": {"a": {}}}))
        with pytest.raises(BenchGateError, match="schema"):
            load_baseline(tmp_path / "base.json")


class TestCompare:
    def _baseline(self, tmp_path, walls=None, tolerance=0.25):
        make_run(tmp_path / "base-run", walls or {"alpha": 1.0, "beta": 2.0})
        return snapshot_baseline(tmp_path / "base-run", tolerance=tolerance)

    def test_identical_run_passes(self, tmp_path):
        baseline = self._baseline(tmp_path)
        make_run(tmp_path / "out", {"alpha": 1.0, "beta": 2.0})
        checks = compare_against_baseline(baseline, tmp_path / "out")
        assert not any(check.failed for check in checks)

    def test_two_x_slowdown_fails(self, tmp_path):
        """The acceptance demo: an artificial 2x slowdown must trip the
        gate even at the widened 75% CI tolerance."""
        baseline = self._baseline(tmp_path)
        make_run(tmp_path / "out", {"alpha": 2.0, "beta": 4.0})
        checks = compare_against_baseline(baseline, tmp_path / "out",
                                          tolerance=0.75)
        assert statuses(checks) == {"alpha": "slower", "beta": "slower"}
        assert all(check.failed for check in checks)
        report = render_report(checks, 0.75)
        assert "REGRESSION" in report and "2.00x" in report

    def test_within_tolerance_passes(self, tmp_path):
        baseline = self._baseline(tmp_path)
        make_run(tmp_path / "out", {"alpha": 1.2, "beta": 2.3})
        checks = compare_against_baseline(baseline, tmp_path / "out")
        assert statuses(checks) == {"alpha": "ok", "beta": "ok"}

    def test_rows_change_fails_even_when_fast(self, tmp_path):
        baseline = self._baseline(tmp_path)
        make_run(tmp_path / "out", {"alpha": 0.5, "beta": 2.0}, rows=7)
        checks = compare_against_baseline(baseline, tmp_path / "out")
        assert statuses(checks)["alpha"] == "rows-changed"

    def test_missing_bench_fails(self, tmp_path):
        baseline = self._baseline(tmp_path)
        make_run(tmp_path / "out", {"alpha": 1.0})
        checks = compare_against_baseline(baseline, tmp_path / "out")
        assert statuses(checks)["beta"] == "missing"
        assert [check for check in checks if check.failed]

    def test_untracked_bench_reported_not_failed(self, tmp_path):
        baseline = self._baseline(tmp_path)
        make_run(tmp_path / "out",
                 {"alpha": 1.0, "beta": 2.0, "gamma": 9.0})
        checks = compare_against_baseline(baseline, tmp_path / "out")
        assert statuses(checks)["gamma"] == "untracked"
        assert not any(check.failed for check in checks)

    def test_faster_reported_not_failed(self, tmp_path):
        baseline = self._baseline(tmp_path)
        make_run(tmp_path / "out", {"alpha": 0.3, "beta": 2.0})
        checks = compare_against_baseline(baseline, tmp_path / "out")
        assert statuses(checks)["alpha"] == "faster"
        assert not any(check.failed for check in checks)

    def test_noise_floor_is_rows_only(self, tmp_path):
        baseline = self._baseline(tmp_path, walls={"tiny": 0.01})
        make_run(tmp_path / "out", {"tiny": 0.15})  # 15x but sub-floor
        checks = compare_against_baseline(baseline, tmp_path / "out",
                                          min_wall_s=0.2)
        assert statuses(checks) == {"tiny": "ok"}

    def test_scale_mismatch_raises(self, tmp_path):
        baseline = self._baseline(tmp_path)
        make_run(tmp_path / "out", {"alpha": 1.0, "beta": 2.0}, scale=0.25)
        with pytest.raises(BenchGateError, match="scale mismatch"):
            compare_against_baseline(baseline, tmp_path / "out")

    def test_tolerance_defaults_to_baseline_value(self, tmp_path):
        baseline = self._baseline(tmp_path, tolerance=1.5)
        make_run(tmp_path / "out", {"alpha": 2.0, "beta": 4.0})
        checks = compare_against_baseline(baseline, tmp_path / "out")
        assert not any(check.failed for check in checks)

    def test_negative_tolerance_rejected(self, tmp_path):
        baseline = self._baseline(tmp_path)
        with pytest.raises(BenchGateError, match="tolerance"):
            compare_against_baseline(baseline, tmp_path / "out",
                                     tolerance=-0.1)


class TestCli:
    def _setup(self, tmp_path):
        make_run(tmp_path / "out", {"alpha": 1.0, "beta": 2.0})
        assert cli_main(["bench", "snapshot", str(tmp_path / "out"),
                         str(tmp_path / "base.json")]) == 0
        return tmp_path / "base.json", tmp_path / "out"

    def test_compare_passes_on_own_snapshot(self, tmp_path, capsys):
        base, out = self._setup(tmp_path)
        assert cli_main(["bench", "compare", str(base), str(out)]) == 0
        assert "all benches within tolerance" in capsys.readouterr().out

    def test_compare_fails_on_slowdown(self, tmp_path, capsys):
        base, out = self._setup(tmp_path)
        make_run(out, {"alpha": 2.0, "beta": 4.0})
        assert cli_main(["bench", "compare", str(base), str(out),
                         "--tolerance", "0.75"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_json_output(self, tmp_path, capsys):
        base, out = self._setup(tmp_path)
        report = tmp_path / "report.json"
        assert cli_main(["bench", "compare", str(base), str(out),
                         "--json", str(report)]) == 0
        payload = json.loads(report.read_text())
        assert {entry["name"] for entry in payload["checks"]} == \
            {"alpha", "beta"}
        assert payload["failed"] is False

    def test_compare_missing_baseline_is_error_exit(self, tmp_path, capsys):
        assert cli_main(["bench", "compare", str(tmp_path / "nope.json"),
                         str(tmp_path)]) == 1
        assert "repro-sim bench" in capsys.readouterr().err
