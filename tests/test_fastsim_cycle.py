"""Tests for the columnar cycle engines and their executor wiring.

The deep parity matrix (every repair mechanism and stack size, both
array backends) lives here; the harness that performs the comparison
is itself tested in ``tests/test_parity_harness.py``.
"""

import pytest

from repro.cli import main as cli_main
from repro.config.defaults import baseline_config
from repro.config.options import RepairMechanism, StackOrganization
from repro.core import ExperimentJob, SweepExecutor
from repro.core.executor import ENGINES
from repro.core.experiment import (
    WorkloadSpec,
    multipath_machine,
    run_cycle,
    run_multipath,
)
from repro.fastsim import cycle as cycle_module
from repro.fastsim.cycle import cycle_backend, run_cycle_fast
from repro.fastsim.multipath import run_multipath_fast
from repro.fastsim.parity import flatten_group
from repro.workloads.generator import build_workload

SPEC = WorkloadSpec("li", seed=1, scale=0.02)


def _program(name="li", scale=0.02):
    return build_workload(name, seed=1, scale=scale)


class TestCycleParityMatrix:
    @pytest.mark.parametrize("mechanism", list(RepairMechanism))
    @pytest.mark.parametrize("entries", [8, 32])
    def test_every_mechanism_and_stack_size(self, mechanism, entries):
        config = (baseline_config()
                  .with_repair(mechanism)
                  .with_ras_entries(entries))
        program = _program()
        reference, _ = run_cycle(program, config)
        fast, _ = run_cycle_fast(program, config)
        assert flatten_group(reference.group) == flatten_group(fast.group)

    def test_no_ras_machine(self):
        config = baseline_config().without_ras()
        program = _program()
        reference, _ = run_cycle(program, config)
        fast, _ = run_cycle_fast(program, config)
        assert flatten_group(reference.group) == flatten_group(fast.group)

    def test_max_instructions_truncation(self):
        program = _program()
        reference, _ = run_cycle(program, baseline_config(),
                                 max_instructions=500)
        fast, _ = run_cycle_fast(program, baseline_config(),
                                 max_instructions=500)
        assert reference.instructions == fast.instructions == 500
        assert flatten_group(reference.group) == flatten_group(fast.group)


class TestMultipathParity:
    @pytest.mark.parametrize("organization", list(StackOrganization))
    def test_every_stack_organization(self, organization):
        config = multipath_machine(2, organization)
        program = _program()
        reference, _ = run_multipath(program, config)
        fast, _ = run_multipath_fast(program, config)
        assert flatten_group(reference.group) == flatten_group(fast.group)

    def test_wider_path_budget(self):
        config = multipath_machine(4, StackOrganization.PER_PATH)
        program = _program()
        reference, _ = run_multipath(program, config)
        fast, _ = run_multipath_fast(program, config)
        assert flatten_group(reference.group) == flatten_group(fast.group)


class TestBackends:
    def test_default_is_stdlib(self, monkeypatch):
        monkeypatch.delenv("REPRO_CYCLE_BACKEND", raising=False)
        assert cycle_backend() == "python"

    def test_numpy_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_CYCLE_BACKEND", "numpy")
        expected = "python" if cycle_module._np is None else "numpy"
        assert cycle_backend() == expected

    def test_explicit_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_cycle_fast(_program(), baseline_config(), backend="rust")

    def test_backends_bit_identical(self):
        if cycle_module._np is None:
            pytest.skip("numpy unavailable; only the stdlib backend runs")
        program = _program()
        via_python, _ = run_cycle_fast(program, baseline_config(),
                                       backend="python")
        via_numpy, _ = run_cycle_fast(program, baseline_config(),
                                      backend="numpy")
        assert flatten_group(via_python.group) == \
            flatten_group(via_numpy.group)


class TestExecutorWiring:
    def test_fast_engines_registered(self):
        assert "cycle-fast" in ENGINES
        assert "multipath-fast" in ENGINES

    def test_cycle_fast_job_matches_cycle_job(self):
        config = baseline_config()
        executor = SweepExecutor(cache=None)
        reference, fast = executor.run([
            ExperimentJob(SPEC, config, "cycle"),
            ExperimentJob(SPEC, config, "cycle-fast"),
        ])
        assert fast.cycles == reference.cycles
        assert fast.instructions == reference.instructions
        assert fast.counters == reference.counters
        assert fast.rates == reference.rates  # includes btb_hit_rate

    def test_multipath_fast_job_matches_multipath_job(self):
        config = multipath_machine(2, StackOrganization.PER_PATH)
        executor = SweepExecutor(cache=None)
        reference, fast = executor.run([
            ExperimentJob(SPEC, config, "multipath"),
            ExperimentJob(SPEC, config, "multipath-fast"),
        ])
        assert fast.cycles == reference.cycles
        assert fast.counters == reference.counters
        assert fast.rates == reference.rates

    def test_fast_engine_has_distinct_cache_key(self):
        config = baseline_config()
        slow = ExperimentJob(SPEC, config, "cycle")
        fast = ExperimentJob(SPEC, config, "cycle-fast")
        assert slow.cache_key() != fast.cache_key()


class TestCli:
    def test_run_engine_fast_single_path(self, capsys):
        assert cli_main(["run", "--benchmark", "li", "--scale", "0.02",
                         "--engine", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert cli_main(["run", "--benchmark", "li",
                         "--scale", "0.02"]) == 0
        reference_out = capsys.readouterr().out
        assert fast_out == reference_out

    def test_run_engine_fast_multipath(self, capsys):
        assert cli_main(["run", "--benchmark", "li", "--scale", "0.02",
                         "--paths", "2", "--engine", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert cli_main(["run", "--benchmark", "li", "--scale", "0.02",
                         "--paths", "2"]) == 0
        assert fast_out == capsys.readouterr().out
