"""Unit tests for the hardware-cost model."""

import pytest

from repro.analysis import cost_table, mechanism_costs
from repro.config import BranchPredictorConfig, RepairMechanism


def costs_by_mechanism(config=None, **kwargs):
    config = config or BranchPredictorConfig()
    return {cost.mechanism: cost
            for cost in mechanism_costs(config, **kwargs)}


class TestMechanismCosts:
    def test_none_is_free(self):
        costs = costs_by_mechanism()
        assert costs[RepairMechanism.NONE].total_bits(20) == 0

    def test_pointer_is_several_bits(self):
        """The paper: 'Saving the TOS pointer merely adds several bits
        per branch.'"""
        costs = costs_by_mechanism()  # 32-entry stack
        assert costs[RepairMechanism.TOS_POINTER].bits_per_checkpoint == 5

    def test_contents_adds_one_address(self):
        costs = costs_by_mechanism()
        pointer = costs[RepairMechanism.TOS_POINTER].bits_per_checkpoint
        contents = costs[
            RepairMechanism.TOS_POINTER_AND_CONTENTS].bits_per_checkpoint
        assert contents == pointer + 64

    def test_full_stack_scales_with_entries(self):
        small = costs_by_mechanism(BranchPredictorConfig(ras_entries=8))
        large = costs_by_mechanism(BranchPredictorConfig(ras_entries=64))
        assert (large[RepairMechanism.FULL_STACK].bits_per_checkpoint
                > 4 * small[RepairMechanism.FULL_STACK].bits_per_checkpoint)

    def test_cost_ordering_matches_capability(self):
        """More repair capability never costs fewer checkpoint bits."""
        costs = costs_by_mechanism()
        assert (costs[RepairMechanism.NONE].bits_per_checkpoint
                < costs[RepairMechanism.TOS_POINTER].bits_per_checkpoint
                < costs[RepairMechanism.TOS_POINTER_AND_CONTENTS]
                .bits_per_checkpoint
                < costs[RepairMechanism.FULL_STACK].bits_per_checkpoint)

    def test_self_checkpoint_pays_in_stack_not_shadow(self):
        """Jourdan-style: tiny per-branch cost, big stack cost — the
        paper's 'requires a larger number of stack entries'."""
        costs = costs_by_mechanism()
        self_ck = costs[RepairMechanism.SELF_CHECKPOINT]
        full = costs[RepairMechanism.FULL_STACK]
        assert self_ck.bits_per_checkpoint < full.bits_per_checkpoint / 10
        assert self_ck.extra_stack_bits > 1000

    def test_address_width_parameter(self):
        narrow = costs_by_mechanism(address_bits=32)
        wide = costs_by_mechanism(address_bits=64)
        assert (narrow[RepairMechanism.FULL_STACK].bits_per_checkpoint
                < wide[RepairMechanism.FULL_STACK].bits_per_checkpoint)

    def test_cost_table_shape(self):
        rows = cost_table(BranchPredictorConfig())
        assert len(rows) == len(RepairMechanism)
        assert all(len(row) == 4 for row in rows)
        # totals are consistent with the per-part columns
        for mechanism, per_branch, stack_extra, total in rows:
            assert total == per_branch * 20 + stack_extra
