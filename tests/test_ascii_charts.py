"""Unit tests for the plain-text chart helpers."""

import pytest

from repro.stats.ascii_charts import grouped_bars, hbar_chart, sparkline


class TestHbar:
    def test_basic_shape(self):
        text = hbar_chart(["aa", "b"], [1.0, 0.5], width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_labels_aligned(self):
        text = hbar_chart(["long-label", "x"], [1, 1], width=4)
        starts = [line.index("|") for line in text.splitlines()]
        assert starts[0] == starts[1]

    def test_max_value_override(self):
        text = hbar_chart(["a"], [50], width=10, max_value=100)
        assert text.count("#") == 5

    def test_values_capped_at_width(self):
        text = hbar_chart(["a"], [200], width=10, max_value=100)
        assert text.count("#") == 10

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            hbar_chart(["a"], [1, 2])

    def test_empty(self):
        assert hbar_chart([], []) == "(no data)"

    def test_all_zero_does_not_crash(self):
        text = hbar_chart(["a"], [0.0], width=8)
        assert "#" not in text


class TestGroupedBars:
    def test_groups_and_series(self):
        text = grouped_bars(
            ["g1", "g2"],
            {"s1": [1, 2], "s2": [2, 1]},
            width=8,
        )
        assert text.count("g1:") == 1
        assert text.count("s1") == 2

    def test_series_length_checked(self):
        with pytest.raises(ValueError):
            grouped_bars(["g1"], {"s": [1, 2]})

    def test_empty(self):
        assert grouped_bars([], {}) == "(no data)"


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "###"

    def test_monotone_rises(self):
        strip = sparkline([0, 1, 2, 3], levels=" ab")
        assert strip[0] == " "
        assert strip[-1] == "b"

    def test_empty(self):
        assert sparkline([]) == ""
