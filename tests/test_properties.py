"""Property-based tests (hypothesis) for the core data structures.

These pin down the invariants everything else leans on: stack LIFO
behaviour within capacity, checkpoint/restore round-trips, undo-log
exactness, copy-on-write fork isolation, and predictor-table bounds.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.bpred import CircularRas, LinkedRas
from repro.bpred.twobit import CounterTable
from repro.caches import Cache
from repro.config import CacheConfig, RepairMechanism
from repro.emu import MachineState
from repro.workloads import DeterministicRng

# ---------------------------------------------------------------------------
# Strategies.

addresses = st.integers(min_value=0, max_value=2 ** 20)
values = st.integers(min_value=0, max_value=2 ** 64 - 1)
#: push(value) or pop()
stack_ops = st.lists(
    st.one_of(st.tuples(st.just("push"), addresses), st.just("pop")),
    max_size=60,
)


class TestStackProperties:
    @given(ops=stack_ops)
    def test_within_capacity_ras_is_a_plain_stack(self, ops):
        """While depth stays within [0, capacity], every mechanism's
        circular RAS behaves exactly like a Python list stack."""
        ras = CircularRas(64, RepairMechanism.FULL_STACK)
        model = []
        for op in ops:
            if op == "pop":
                if not model:
                    continue  # skip underflow: outside the property
                assert ras.pop() == model.pop()
            else:
                _, value = op
                if len(model) == 64:
                    continue  # skip overflow
                ras.push(value)
                model.append(value)
        assert ras.logical_entries() == list(reversed(model))

    @given(setup=st.lists(addresses, min_size=1, max_size=40),
           wrong_path=stack_ops)
    def test_full_stack_checkpoint_roundtrip(self, setup, wrong_path):
        """FULL_STACK: restore undoes *any* intervening activity."""
        ras = CircularRas(16, RepairMechanism.FULL_STACK)
        for value in setup:
            ras.push(value)
        before = ras.logical_entries()
        token = ras.checkpoint()
        for op in wrong_path:
            if op == "pop":
                ras.pop()
            else:
                ras.push(op[1])
        ras.restore(token)
        assert ras.logical_entries() == before

    @given(setup=st.lists(addresses, min_size=1, max_size=40),
           wrong_path=stack_ops)
    def test_pointer_contents_restores_the_top(self, setup, wrong_path):
        """TOS_POINTER_AND_CONTENTS: whatever the wrong path does, the
        *top* entry after restore equals the checkpointed top."""
        ras = CircularRas(16, RepairMechanism.TOS_POINTER_AND_CONTENTS)
        for value in setup:
            ras.push(value)
        top_before = ras.top()
        token = ras.checkpoint()
        for op in wrong_path:
            if op == "pop":
                ras.pop()
            else:
                ras.push(op[1])
        ras.restore(token)
        assert ras.top() == top_before

    @given(setup=st.lists(addresses, min_size=1, max_size=12),
           wrong_path=stack_ops)
    def test_linked_ras_pointer_restore_is_full_restore(self, setup, wrong_path):
        """Self-checkpointing with ample overprovision: a pointer-only
        restore recovers the entire logical stack."""
        ras = LinkedRas(16, overprovision=16)  # pool >> any activity here
        for value in setup:
            ras.push(value)
        before = ras.logical_entries()
        token = ras.checkpoint()
        for op in wrong_path:
            if op == "pop":
                ras.pop()
            else:
                ras.push(op[1])
        ras.restore(token)
        assert ras.logical_entries() == before

    @given(ops=stack_ops)
    def test_clone_equivalence(self, ops):
        """A clone replays identically to the original."""
        ras = CircularRas(8, RepairMechanism.VALID_BITS)
        for op in ops:
            if op == "pop":
                ras.pop()
            else:
                ras.push(op[1])
        twin = ras.clone()
        assert twin.logical_entries() == ras.logical_entries()
        assert twin.pop() == ras.pop()


class TestUndoLogProperties:
    write_ops = st.lists(
        st.one_of(
            st.tuples(st.just("r"), st.integers(0, 31), values),
            st.tuples(st.just("m"), addresses, values),
        ),
        max_size=60,
    )

    @given(initial=st.dictionaries(addresses, values, max_size=10),
           ops=write_ops)
    def test_rewind_restores_exact_state(self, initial, ops):
        state = MachineState(initial_memory=initial)
        regs_before = list(state.regs)
        memory_before = dict(state.memory)
        log = []
        for op in ops:
            if op[0] == "r":
                state.write_reg(op[1], op[2], log)
            else:
                state.write_mem(op[1], op[2], log)
        state.rewind(log)
        assert state.regs == regs_before
        assert state.memory == memory_before

    @given(parent_writes=st.dictionaries(addresses, values, max_size=10),
           child_writes=st.dictionaries(addresses, values, max_size=10))
    def test_fork_isolation(self, parent_writes, child_writes):
        parent = MachineState()
        for address, value in parent_writes.items():
            parent.write_mem(address, value)
        child = parent.fork()
        for address, value in child_writes.items():
            child.write_mem(address, value)
        # Parent view is untouched by child writes.
        for address, value in parent_writes.items():
            assert parent.read_mem(address) == value
        # Child view overlays parent's.
        for address in set(parent_writes) | set(child_writes):
            expected = child_writes.get(address, parent_writes.get(address, 0))
            assert child.read_mem(address) == expected


class TestPredictorTableProperties:
    @given(keys=st.lists(st.tuples(st.integers(0, 10 ** 6), st.booleans()),
                         max_size=200))
    def test_counter_table_stays_in_range(self, keys):
        table = CounterTable(64, bits=2)
        for key, outcome in keys:
            table.update(key, outcome)
            assert 0 <= table.value(key) <= 3

    @given(seq=st.lists(addresses, max_size=200))
    def test_cache_repeat_access_hits(self, seq):
        cache = Cache(CacheConfig("p", 1024, 2, 64, 1))
        for address in seq:
            cache.access(address)
            assert cache.access(address)  # immediate re-access must hit


class TestRngProperties:
    @given(seed=st.integers(0, 2 ** 32), low=st.integers(-1000, 1000),
           span=st.integers(0, 1000))
    def test_randint_bounds(self, seed, low, span):
        rng = DeterministicRng(seed)
        for _ in range(20):
            value = rng.randint(low, low + span)
            assert low <= value <= low + span

    @given(seed=st.integers(0, 2 ** 32),
           items=st.lists(st.integers(), max_size=50))
    def test_shuffle_is_permutation(self, seed, items):
        rng = DeterministicRng(seed)
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == sorted(items)

    @given(seed=st.integers(0, 2 ** 32))
    def test_same_seed_same_stream(self, seed):
        a = DeterministicRng(seed)
        b = DeterministicRng(seed)
        assert [a.bits(16) for _ in range(10)] == [b.bits(16) for _ in range(10)]


class TestEndToEndProperties:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(1, 50),
           name=st.sampled_from(["li", "go", "m88ksim"]))
    def test_generated_programs_terminate_balanced(self, seed, name):
        from repro.emu import Emulator
        from repro.workloads import build_workload
        program = build_workload(name, seed=seed, scale=0.05)
        stats = Emulator(program, max_instructions=2_000_000).run()
        assert stats.halted
        assert stats.calls == stats.returns

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(1, 30),
           mechanism=st.sampled_from(list(RepairMechanism)))
    def test_pipeline_commits_golden_stream(self, seed, mechanism):
        from repro.config import baseline_config
        from repro.emu import Emulator
        from repro.pipeline import SinglePathCPU
        from repro.workloads import build_workload
        program = build_workload("go", seed=seed, scale=0.03)
        golden = [(r.pc, r.next_pc) for r in Emulator(program).trace()]
        committed = []
        cpu = SinglePathCPU(
            program, baseline_config().with_repair(mechanism),
            commit_hook=lambda e: committed.append(
                (e.pc, e.pc if e.outcome.is_halt else e.outcome.next_pc)),
        )
        cpu.run()
        assert committed == golden
