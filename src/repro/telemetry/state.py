"""The process-wide telemetry switch.

Telemetry is **default-on** and stdlib-only; the cost when enabled is a
handful of monotonic-clock reads and dict updates per *sweep* (never
per simulated instruction), budgeted and asserted at <3% overhead in
the tests. It can be turned off two ways:

* ``REPRO_TELEMETRY=0`` in the environment (picked up lazily, so it
  also governs executor worker processes), or
* :func:`set_enabled`/:func:`disabled` in code — the CLI's
  ``--no-telemetry`` flag routes through :func:`disabled`.

This lives in its own module so every telemetry layer (and the
instrumented subsystems) can import the switch without cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

ENV_VAR = "REPRO_TELEMETRY"

#: Programmatic override: ``None`` defers to the environment.
_OVERRIDE: Optional[bool] = None


def enabled() -> bool:
    """Is telemetry currently on? (override first, then the env)."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get(ENV_VAR, "1") != "0"


def set_enabled(value: Optional[bool]) -> None:
    """Force telemetry on/off; ``None`` restores environment control."""
    global _OVERRIDE
    _OVERRIDE = value


@contextmanager
def disabled() -> Iterator[None]:
    """Scope with telemetry forced off; restores the prior state."""
    previous = _OVERRIDE
    set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)
