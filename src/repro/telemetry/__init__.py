"""First-class observability for the experiment harness.

Three layers, all stdlib-only, default-on, and cheap enough to leave
on (<3% overhead on the smoke bench, asserted in the tests — spans and
metrics fire per *sweep* and per *job*, never per simulated
instruction):

* **metrics** — :class:`MetricsRegistry`: labelled
  Counter/Gauge/Rate/Histogram with deterministic snapshot/merge
  semantics, so per-worker metrics aggregate identically at every
  ``--jobs`` setting;
* **spans** — ``with span("sweep/job", engine="cycle"): ...``:
  monotonic timing into a process-global ring, mirrored to JSONL via
  ``REPRO_SPAN_LOG``;
* **run ledger** — :class:`RunLedger`: append-only JSONL under the
  cache root recording every sweep (configs, cache hits, wall time,
  headline rates, metrics), with content-hash run ids and a
  ``repro-sim runs list/show/compare`` CLI.

Kill switches: ``REPRO_TELEMETRY=0`` in the environment, the CLI's
``--no-telemetry``, or :func:`set_enabled`/:func:`disabled` in code.
See docs/observability.md for the full metric/span/ledger reference.
"""

from repro.telemetry.ledger import (
    LEDGER_FILENAME,
    LEDGER_SCHEMA,
    NONDETERMINISTIC_KEYS,
    RunLedger,
    compare_entries,
    deterministic_view,
    entry_digest,
    numeric_leaves,
)
from repro.telemetry.metrics import MetricsRegistry, metric_key
from repro.telemetry.spans import Span, SpanRecorder, recorder, span
from repro.telemetry.state import disabled, enabled, set_enabled

#: Process-global registry: long-lived instrumentation (cache probes,
#: corpus ingests) records here; per-sweep registries merge in too.
_GLOBAL_METRICS = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _GLOBAL_METRICS


def reset_metrics() -> None:
    """Fresh process-global registry (test isolation)."""
    global _GLOBAL_METRICS
    _GLOBAL_METRICS = MetricsRegistry()


__all__ = [
    "LEDGER_FILENAME",
    "LEDGER_SCHEMA",
    "MetricsRegistry",
    "NONDETERMINISTIC_KEYS",
    "RunLedger",
    "Span",
    "SpanRecorder",
    "compare_entries",
    "deterministic_view",
    "disabled",
    "enabled",
    "entry_digest",
    "metric_key",
    "metrics",
    "numeric_leaves",
    "recorder",
    "reset_metrics",
    "set_enabled",
    "span",
]
