"""Labelled metrics with deterministic snapshot/merge semantics.

:class:`MetricsRegistry` generalises the flat
:mod:`repro.stats.counters` primitives the simulators use on their hot
paths: the same ``Counter``/``Rate``/``Histogram`` objects (plus
``Gauge``), but keyed by a *metric key* — a name plus sorted labels,
encoded Prometheus-style as ``name{k=v,k2=v2}`` — and equipped with
``snapshot``/``merge`` so metrics gathered in different places (serial
loop, pool workers, separate sweeps) aggregate to bit-identical state
regardless of arrival order:

* counters and histograms **add**,
* rates add ``hits`` and ``events`` (a weighted aggregate, never a
  mean of means),
* gauges keep the **max** — the one order-independent aggregate of
  per-worker levels.

Snapshots are plain sorted-key dicts of JSON types, so they embed
directly in run-ledger entries (:mod:`repro.telemetry.ledger`) and
compare with ``==``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.stats.counters import Counter, Gauge, Histogram, Rate

Snapshot = Dict[str, Dict[str, object]]

#: Snapshot sections, in emission order.
_SECTIONS = ("counters", "gauges", "rates", "histograms")


def metric_key(name: str, labels: Mapping[str, object]) -> str:
    """Canonical key for ``name`` + ``labels``: ``name{k=v}``.

    Labels are sorted by key, so every construction order yields the
    same key — the property snapshot equality rests on.
    """
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """A set of labelled metrics that snapshots and merges deterministically."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._rates: Dict[str, Rate] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- metric access (creates on first use) --------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = metric_key(name, labels)
        stat = self._counters.get(key)
        if stat is None:
            stat = self._counters[key] = Counter(key)
        return stat

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = metric_key(name, labels)
        stat = self._gauges.get(key)
        if stat is None:
            stat = self._gauges[key] = Gauge(key)
        return stat

    def rate(self, name: str, **labels: object) -> Rate:
        key = metric_key(name, labels)
        stat = self._rates.get(key)
        if stat is None:
            stat = self._rates[key] = Rate(key)
        return stat

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = metric_key(name, labels)
        stat = self._histograms.get(key)
        if stat is None:
            stat = self._histograms[key] = Histogram(key)
        return stat

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> Snapshot:
        """Plain-dict view with sorted keys (JSON-ready, ``==``-able)."""
        return {
            "counters": {key: self._counters[key].value
                         for key in sorted(self._counters)},
            "gauges": {key: self._gauges[key].value
                       for key in sorted(self._gauges)},
            "rates": {key: {"hits": rate.hits, "events": rate.events}
                      for key, rate in sorted(self._rates.items())},
            "histograms": {
                key: {str(bucket): hist.buckets[bucket]
                      for bucket in sorted(hist.buckets)}
                for key, hist in sorted(self._histograms.items())
            },
        }

    def flatten(self) -> Dict[str, object]:
        """One flat sorted ``section.key -> value`` dict.

        The presentation-friendly projection of :meth:`snapshot` —
        ``GET /metricz`` and the dashboard render it directly, and CI
        assertions index it without walking nested sections. Rates
        flatten to their computed value (hit fraction or ``None``);
        histograms to their total observation count.
        """
        flat: Dict[str, object] = {}
        for key in sorted(self._counters):
            flat[f"counters.{key}"] = self._counters[key].value
        for key in sorted(self._gauges):
            flat[f"gauges.{key}"] = self._gauges[key].value
        for key, rate in sorted(self._rates.items()):
            flat[f"rates.{key}"] = rate.value
        for key, hist in sorted(self._histograms.items()):
            flat[f"histograms.{key}"] = sum(hist.buckets.values())
        return flat

    def merge(self, snapshot: Optional[Mapping[str, object]]) -> "MetricsRegistry":
        """Fold a snapshot in (see the module docstring for semantics).

        Accepts any snapshot-shaped mapping — including one loaded back
        from a ledger entry's JSON — and returns ``self`` for chaining.
        Because each metric kind merges with an associative, commutative
        operation, merging per-worker snapshots in *any* order produces
        the same state.
        """
        if not snapshot:
            return self
        for key, value in snapshot.get("counters", {}).items():  # type: ignore[union-attr]
            self.counter(key).increment(int(value))
        for key, value in snapshot.get("gauges", {}).items():  # type: ignore[union-attr]
            gauge = self.gauge(key)
            gauge.set(max(gauge.value, float(value)))
        for key, value in snapshot.get("rates", {}).items():  # type: ignore[union-attr]
            self.rate(key).record_many(int(value["hits"]), int(value["events"]))
        for key, buckets in snapshot.get("histograms", {}).items():  # type: ignore[union-attr]
            hist = self.histogram(key)
            for bucket, count in buckets.items():
                hist.record(int(bucket), int(count))
        return self

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, object]) -> "MetricsRegistry":
        return cls().merge(snapshot)

    def merge_registry(self, other: "MetricsRegistry") -> "MetricsRegistry":
        return self.merge(other.snapshot())

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._rates) + len(self._histograms))

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} metrics)"
