"""The persistent run ledger: append-only JSONL of every sweep.

Each :meth:`SweepExecutor.run <repro.core.executor.SweepExecutor.run>`
appends one entry to ``<cache root>/ledger.jsonl`` recording what ran
and what came out: timestamp, workload descriptors, the distinct
``MachineConfig.fingerprint()``s, engines, worker count, cache
hits/misses, wall time, the code fingerprint, headline rates, and the
sweep's full deterministic metrics snapshot
(:mod:`repro.telemetry.metrics`). The schema is documented in
docs/observability.md.

Integrity: an entry's ``run_id`` is the truncated SHA-256 of its own
canonical JSON (everything but the ``run_id`` field), so every record
is verifiable against the config and code fingerprints it claims —
editing a ledger line by hand breaks :meth:`RunLedger.verify` for that
entry, the same found-vs-expected discipline the corpus applies to
shard checksums.

Determinism: everything except the explicitly timing-valued keys
(:data:`NONDETERMINISTIC_KEYS`) is a pure function of the submitted
jobs and their results, so a parallel ``--jobs N`` sweep ledgers
bit-identically to a serial one — :func:`deterministic_view` is the
comparison the tests (and ``repro-sim runs compare``) build on.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Dict, List, Optional, Union

from repro.errors import TelemetryError

#: Bump when the ledger entry layout changes shape.
LEDGER_SCHEMA = 1

LEDGER_FILENAME = "ledger.jsonl"

#: Entry keys that legitimately differ between two runs of the same
#: sweep: wall-clock identity, timing, and scheduling attribution (the
#: ``cluster`` block records which worker ran what — honest, but a
#: property of the fleet, not of the results). ``trace_id`` and the
#: sampling ``profile`` (repro.obs) are run artifacts of the same kind:
#: stripping them keeps deterministic_view bit-identical with tracing
#: or profiling on or off.
NONDETERMINISTIC_KEYS = ("run_id", "ts", "utc", "wall_time_s", "sim_time_s",
                         "cluster", "trace_id", "profile")

Entry = Dict[str, object]


def entry_digest(entry: Entry) -> str:
    """SHA-256 of the entry's canonical JSON, excluding ``run_id``."""
    payload = {key: value for key, value in entry.items() if key != "run_id"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def deterministic_view(entry: Entry) -> Entry:
    """The entry minus timing — identical across reruns of one sweep."""
    return {key: value for key, value in entry.items()
            if key not in NONDETERMINISTIC_KEYS}


class RunLedger:
    """Append-only JSONL store of run records."""

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)

    @classmethod
    def at_root(cls, root: Union[str, pathlib.Path]) -> "RunLedger":
        """The ledger living under a cache root directory."""
        return cls(pathlib.Path(root) / LEDGER_FILENAME)

    def append(self, entry: Entry) -> Entry:
        """Stamp ``entry`` with schema + content-hash run id and append it.

        Returns the stamped entry. Ledger writes never fail a sweep: an
        unwritable ledger degrades to "no ledger", mirroring the result
        cache's behaviour on read-only cache dirs.
        """
        entry = dict(entry)
        entry.setdefault("schema", LEDGER_SCHEMA)
        entry["run_id"] = entry_digest(entry)[:12]
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as stream:
                # a single write of one "\n"-terminated line keeps
                # concurrent appenders from tearing each other's records
                stream.write(json.dumps(entry, sort_keys=True, default=str)
                             + "\n")
        except OSError:
            pass
        return entry

    def entries(self, limit: Optional[int] = None) -> List[Entry]:
        """All parseable entries, oldest first (torn lines are skipped)."""
        try:
            text = self.path.read_text()
        except OSError:
            return []
        parsed: List[Entry] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn or hand-mangled line
            if isinstance(entry, dict):
                parsed.append(entry)
        if limit is not None:
            return parsed[-limit:]
        return parsed

    def get(self, ref: str) -> Entry:
        """Resolve ``ref``: an integer index (``-1`` = latest) or a
        ``run_id`` prefix. Ambiguous or unknown refs raise
        :class:`~repro.errors.TelemetryError`."""
        entries = self.entries()
        if not entries:
            raise TelemetryError(f"run ledger {self.path} is empty or missing")
        try:
            index = int(ref)
        except ValueError:
            matches = [entry for entry in entries
                       if str(entry.get("run_id", "")).startswith(ref)]
            if len(matches) == 1:
                return matches[0]
            if not matches:
                raise TelemetryError(
                    f"no ledger entry matches run id {ref!r}")
            raise TelemetryError(
                f"run id prefix {ref!r} is ambiguous "
                f"({len(matches)} matches); give more characters")
        try:
            return entries[index]
        except IndexError:
            raise TelemetryError(
                f"ledger index {index} out of range "
                f"({len(entries)} entries)")

    def verify(self, entry: Entry) -> bool:
        """Does the entry's ``run_id`` match its own content digest?"""
        return entry.get("run_id") == entry_digest(entry)[:12]


# ----------------------------------------------------------------------
# Entry comparison (``repro-sim runs compare``).

#: Identity-valued entry keys compared field-wise.
_IDENTITY_FIELDS = ("schema", "kind", "engines", "jobs", "submitted",
                    "workloads", "configs", "code")

#: Numeric-valued entry keys flattened into the metric delta.
_NUMERIC_FIELDS = ("cache", "headline", "metrics", "wall_time_s",
                   "sim_time_s")


def _numeric_leaves(value: object, prefix: str,
                    out: Dict[str, float]) -> None:
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key in value:
            _numeric_leaves(value[key], f"{prefix}.{key}", out)


def numeric_leaves(entry: Entry) -> Dict[str, float]:
    """Flatten an entry's numeric payload to dotted-path -> value."""
    out: Dict[str, float] = {}
    for field in _NUMERIC_FIELDS:
        if field in entry:
            _numeric_leaves(entry[field], field, out)
    return out


def compare_entries(a: Entry, b: Entry) -> Entry:
    """Diff two ledger entries: config delta + metric delta.

    ``fields`` holds every identity field whose values differ (for
    ``configs`` — the sorted list of machine fingerprints — the delta
    also names what was added and removed). ``metrics`` maps every
    numeric leaf present in either entry to its two values and
    ``b - a`` delta; unchanged leaves are included with delta 0 so the
    caller can choose how much to show.
    """
    fields: Dict[str, object] = {}
    for field in _IDENTITY_FIELDS:
        va, vb = a.get(field), b.get(field)
        if va == vb:
            continue
        delta: Dict[str, object] = {"a": va, "b": vb}
        if field == "configs":
            set_a = set(va or [])  # type: ignore[arg-type]
            set_b = set(vb or [])  # type: ignore[arg-type]
            delta["added"] = sorted(set_b - set_a)
            delta["removed"] = sorted(set_a - set_b)
        fields[field] = delta

    leaves_a = numeric_leaves(a)
    leaves_b = numeric_leaves(b)
    metrics: Dict[str, object] = {}
    for name in sorted(set(leaves_a) | set(leaves_b)):
        va_n = leaves_a.get(name)
        vb_n = leaves_b.get(name)
        metrics[name] = {
            "a": va_n,
            "b": vb_n,
            "delta": (None if va_n is None or vb_n is None
                      else round(vb_n - va_n, 9)),
        }
    return {
        "a": a.get("run_id"),
        "b": b.get("run_id"),
        "fields": fields,
        "metrics": metrics,
    }
