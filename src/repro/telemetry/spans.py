"""Span tracing: monotonic timing of named operations, JSONL sink.

A *span* covers one timed operation — a sweep, one job, a cache probe,
a corpus ingest. Usage::

    with span("sweep/job", engine="cycle", workload="li") as sp:
        ...
        if sp is not None:
            sp.set(outcome="hit")      # attach attrs mid-flight

When telemetry is off (:mod:`repro.telemetry.state`) ``span`` yields
``None`` and costs one function call; when on, it costs two
``perf_counter`` reads and one deque append. Spans land in the
process-global :data:`recorder` — a bounded in-memory ring, mirrored
line-by-line to a JSONL file when ``REPRO_SPAN_LOG=<path>`` is set (or
a sink is configured programmatically). Span names form a small
``area/operation`` taxonomy documented in docs/observability.md.

Timing is monotonic (``time.perf_counter``); span ``start_s`` is the
offset from the recorder's epoch, so spans from one process order
correctly even across wall-clock adjustments.
"""

from __future__ import annotations

import collections
import json
import os
import time
from contextlib import contextmanager
from typing import Callable, Deque, Dict, Iterator, List, Optional, TextIO

from repro.telemetry import state

ENV_SINK = "REPRO_SPAN_LOG"

#: In-memory ring capacity; old spans fall off, the JSONL sink keeps all.
DEFAULT_CAPACITY = 4096


class Span:
    """One finished (or in-flight) timed operation."""

    __slots__ = ("name", "attrs", "start_s", "duration_ms")

    def __init__(self, name: str, attrs: Dict[str, object]) -> None:
        self.name = name
        self.attrs = attrs
        self.start_s: float = 0.0
        self.duration_ms: float = 0.0

    def set(self, **attrs: object) -> None:
        """Attach attributes while the span is open."""
        self.attrs.update(attrs)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "ms": round(self.duration_ms, 3),
            "pid": os.getpid(),
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return f"Span({self.name}, {self.duration_ms:.3f}ms, {self.attrs})"


class SpanRecorder:
    """Bounded in-memory span ring with an optional JSONL mirror."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._ring: Deque[Span] = collections.deque(maxlen=capacity)
        self._epoch = time.perf_counter()
        self._sink_path: Optional[str] = None
        self._sink: Optional[TextIO] = None
        self._subscribers: Dict[int, Callable[[Span], None]] = {}
        self._next_token = 1

    @property
    def epoch(self) -> float:
        return self._epoch

    def configure_sink(self, path: Optional[str]) -> None:
        """Mirror spans to ``path`` as JSONL; ``None`` restores the
        environment default (``REPRO_SPAN_LOG``)."""
        if self._sink is not None:
            try:
                self._sink.close()
            except OSError:  # pragma: no cover - close of a dead handle
                pass
        self._sink = None
        self._sink_path = path

    def _sink_handle(self) -> Optional[TextIO]:
        if self._sink is not None:
            return self._sink
        path = self._sink_path or os.environ.get(ENV_SINK)
        if not path:
            return None
        try:
            self._sink = open(path, "a")
        except OSError:
            return None  # an unwritable sink degrades to in-memory only
        return self._sink

    def subscribe(self, callback: Callable[[Span], None]) -> int:
        """Call ``callback`` with every span as it is recorded.

        The callback runs synchronously in the recording thread, so
        subscribers that feed another thread (the service layer's
        server-sent progress events) must hand off rather than block.
        Returns a token for :meth:`unsubscribe`. A callback that raises
        is dropped silently — live progress must never fail a sweep.
        """
        token = self._next_token
        self._next_token += 1
        self._subscribers[token] = callback
        return token

    def unsubscribe(self, token: int) -> None:
        self._subscribers.pop(token, None)

    def record(self, span: Span) -> None:
        self._ring.append(span)
        if self._subscribers:
            for token, callback in list(self._subscribers.items()):
                try:
                    callback(span)
                except Exception:
                    self._subscribers.pop(token, None)
        sink = self._sink_handle()
        if sink is not None:
            try:
                # One write call per line: concurrent appenders (pool
                # workers inherit the sink path) never interleave bytes
                # mid-line on POSIX append-mode files.
                sink.write(json.dumps(span.to_json_dict(),
                                      default=str) + "\n")
                sink.flush()
            except (OSError, ValueError):
                pass

    def records(self, name: Optional[str] = None) -> List[Span]:
        """Spans recorded so far (newest last), optionally by name."""
        if name is None:
            return list(self._ring)
        return [span for span in self._ring if span.name == name]

    def clear(self) -> None:
        self._ring.clear()


#: The process-global recorder every ``span()`` lands in.
recorder = SpanRecorder()


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Optional[Span]]:
    """Time a named operation; yields the :class:`Span` or ``None``.

    The span is recorded when the block exits — including on exceptions,
    so failed operations still show their duration.
    """
    if not state.enabled():
        yield None
        return
    record = Span(name, dict(attrs))
    started = time.perf_counter()
    try:
        yield record
    finally:
        ended = time.perf_counter()
        record.start_s = started - recorder.epoch
        record.duration_ms = (ended - started) * 1000.0
        recorder.record(record)
