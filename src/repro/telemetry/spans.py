"""Span tracing: monotonic timing of named operations, JSONL sink.

A *span* covers one timed operation — a sweep, one job, a cache probe,
a corpus ingest. Usage::

    with span("sweep/job", engine="cycle", workload="li") as sp:
        ...
        if sp is not None:
            sp.set(outcome="hit")      # attach attrs mid-flight

When telemetry is off (:mod:`repro.telemetry.state`) ``span`` yields
``None`` and costs one function call; when on, it costs two
``perf_counter`` reads and one deque append. Spans land in the
process-global :data:`recorder` — a bounded in-memory ring (capacity
``REPRO_SPAN_BUFFER``, default 4096), mirrored line-by-line to a JSONL
file when ``REPRO_SPAN_LOG=<path>`` is set (or a sink is configured
programmatically). Span names form a small ``area/operation`` taxonomy
documented in docs/observability.md.

Timing is monotonic (``time.perf_counter``); span ``start_s`` is the
offset from the recorder's epoch, so spans from one process order
correctly even across wall-clock adjustments. For cross-process trace
merging the recorder also pins a wall-clock epoch captured at the same
instant, so ``to_json_dict`` can emit an absolute ``ts`` comparable
across machines (to NTP accuracy).

When a trace context is active (:mod:`repro.obs.context`), every span
additionally carries ``trace_id``/``span_id``/``parent_id`` and opens
a child context for its duration, so nested spans — on this thread or
any process the context is propagated to — form one coherent tree.
"""

from __future__ import annotations

import collections
import json
import os
import threading
import time
import weakref
from contextlib import contextmanager
from typing import Callable, Deque, Dict, Iterator, List, Optional, TextIO, Tuple

from repro.obs import context as tracectx
from repro.telemetry import state

ENV_SINK = "REPRO_SPAN_LOG"
ENV_CAPACITY = "REPRO_SPAN_BUFFER"

#: In-memory ring capacity; old spans fall off, the JSONL sink keeps all.
DEFAULT_CAPACITY = 4096

#: Floor for ``REPRO_SPAN_BUFFER`` — a ring smaller than this cannot
#: hold even one smoke sweep's spans and breaks live progress.
MIN_CAPACITY = 16


def _capacity_from_env() -> int:
    raw = os.environ.get(ENV_CAPACITY, "").strip()
    if not raw:
        return DEFAULT_CAPACITY
    try:
        return max(MIN_CAPACITY, int(raw))
    except ValueError:
        return DEFAULT_CAPACITY


class Span:
    """One finished (or in-flight) timed operation."""

    __slots__ = ("name", "attrs", "start_s", "duration_ms",
                 "trace_id", "span_id", "parent_id", "tid")

    def __init__(self, name: str, attrs: Dict[str, object]) -> None:
        self.name = name
        self.attrs = attrs
        self.start_s: float = 0.0
        self.duration_ms: float = 0.0
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.tid: int = threading.get_ident()

    def set(self, **attrs: object) -> None:
        """Attach attributes while the span is open."""
        self.attrs.update(attrs)

    def to_json_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "ms": round(self.duration_ms, 3),
            "pid": os.getpid(),
            "attrs": self.attrs,
        }
        if self.trace_id:
            payload["trace_id"] = self.trace_id
            payload["span_id"] = self.span_id
            if self.parent_id:
                payload["parent_id"] = self.parent_id
            payload["tid"] = self.tid
            # Absolute wall-clock start: lets traces merged from many
            # processes share one timeline (perf_counter epochs don't).
            payload["ts"] = round(recorder.epoch_wall + self.start_s, 6)
        return payload

    def __repr__(self) -> str:
        return f"Span({self.name}, {self.duration_ms:.3f}ms, {self.attrs})"


class SpanRecorder:
    """Bounded in-memory span ring with an optional JSONL mirror."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is None:
            capacity = _capacity_from_env()
        self._ring: Deque[Span] = collections.deque(maxlen=capacity)
        # Captured back to back: epoch_wall + (perf_counter() - epoch)
        # approximates wall time for any span this process records.
        self._epoch = time.perf_counter()
        self._epoch_wall = time.time()
        self._sink_path: Optional[str] = None
        self._sink: Optional[TextIO] = None
        self._subscribers: Dict[int, Tuple[Callable[[Span], None],
                                           Optional[object]]] = {}
        self._next_token = 1

    @property
    def epoch(self) -> float:
        return self._epoch

    @property
    def epoch_wall(self) -> float:
        return self._epoch_wall

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or DEFAULT_CAPACITY

    def configure_sink(self, path: Optional[str]) -> None:
        """Mirror spans to ``path`` as JSONL; ``None`` restores the
        environment default (``REPRO_SPAN_LOG``)."""
        if self._sink is not None:
            try:
                self._sink.close()
            except OSError:  # pragma: no cover - close of a dead handle
                pass
        self._sink = None
        self._sink_path = path

    def _sink_handle(self) -> Optional[TextIO]:
        if self._sink is not None:
            return self._sink
        path = self._sink_path or os.environ.get(ENV_SINK)
        if not path:
            return None
        try:
            self._sink = open(path, "a")
        except OSError:
            return None  # an unwritable sink degrades to in-memory only
        return self._sink

    def subscribe(self, callback: Callable[[Span], None],
                  owner: Optional[threading.Thread] = None) -> int:
        """Call ``callback`` with every span as it is recorded.

        The callback runs synchronously in the recording thread, so
        subscribers that feed another thread (the service layer's
        server-sent progress events) must hand off rather than block.
        Returns a token for :meth:`unsubscribe`. A callback that raises
        is dropped silently — live progress must never fail a sweep.

        ``owner`` optionally binds the subscription to a thread's
        lifetime: once that thread is no longer alive the subscription
        is reaped on the next ``record()``, so a job thread that dies
        mid-stream (or forgets to unsubscribe on an unexpected exit
        path) cannot leak a dead subscriber that grows the registry and
        keeps its closure alive forever.
        """
        token = self._next_token
        self._next_token += 1
        ref = weakref.ref(owner) if owner is not None else None
        self._subscribers[token] = (callback, ref)
        return token

    def unsubscribe(self, token: int) -> None:
        self._subscribers.pop(token, None)

    def record(self, span: Span) -> None:
        self._ring.append(span)
        if self._subscribers:
            for token, (callback, owner_ref) in list(self._subscribers.items()):
                if owner_ref is not None:
                    owner = owner_ref()
                    if owner is None or not owner.is_alive():
                        self._subscribers.pop(token, None)
                        continue
                try:
                    callback(span)
                except Exception:
                    self._subscribers.pop(token, None)
        sink = self._sink_handle()
        if sink is not None:
            try:
                # One write call per line: concurrent appenders (pool
                # workers inherit the sink path) never interleave bytes
                # mid-line on POSIX append-mode files.
                sink.write(json.dumps(span.to_json_dict(),
                                      default=str) + "\n")
                sink.flush()
            except (OSError, ValueError):
                pass

    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def records(self, name: Optional[str] = None) -> List[Span]:
        """Spans recorded so far (newest last), optionally by name."""
        if name is None:
            return list(self._ring)
        return [span for span in self._ring if span.name == name]

    def clear(self) -> None:
        self._ring.clear()


#: The process-global recorder every ``span()`` lands in.
recorder = SpanRecorder()


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Optional[Span]]:
    """Time a named operation; yields the :class:`Span` or ``None``.

    The span is recorded when the block exits — including on exceptions,
    so failed operations still show their duration. Under an active
    trace context the span is assigned its identity up front and opens
    a child context, so anything started inside (nested spans, jobs
    shipped to another process with the serialised context) parents
    correctly.
    """
    if not state.enabled():
        yield None
        return
    record = Span(name, dict(attrs))
    ctx = tracectx.current()
    token: Optional[int] = None
    if ctx is not None:
        record.trace_id = ctx.trace_id
        record.span_id = tracectx.new_span_id()
        record.parent_id = ctx.span_id or None
        token = tracectx.push(
            tracectx.TraceContext(ctx.trace_id, record.span_id))
    started = time.perf_counter()
    try:
        yield record
    finally:
        ended = time.perf_counter()
        if token is not None:
            tracectx.pop(token)
        record.start_s = started - recorder.epoch
        record.duration_ms = (ended - started) * 1000.0
        recorder.record(record)
