"""The service core: one engine facade behind two thin frontends.

``SimulationService`` is the layer the ROADMAP's simulation-as-a-service
item asked to extract: everything the CLI's table commands and ``runs``
subcommands used to wire together inline — catalog lookup, executor
construction, ledger reads — lives here once, so ``repro-sim`` (argparse
frontend) and ``repro.service.http`` (asyncio HTTP frontend) are both
thin renderers over the same calls:

* **Sweep catalog** (:data:`SWEEPS`): every table/figure command the CLI
  exposes, keyed by its public name, with one normalised parameter
  schema (``names``/``seed``/``scale`` everywhere, ``sizes`` +
  ``mechanism`` where the builder takes them). :func:`normalize_request`
  turns an untrusted payload (HTTP JSON body or argparse namespace) into
  a validated :class:`SweepRequest`.
* **Request identity** (:meth:`SimulationService.request_key`): the
  coalescing key of the job queue. It hashes exactly the fields that
  determine results — the canonical request plus the installed-code
  fingerprint — i.e. the same identity
  :meth:`~repro.core.executor.ExperimentJob.cache_key` derives per job,
  lifted to sweep granularity. Scheduling options (jobs, backend,
  caching) are deliberately excluded: they change where a sweep runs,
  never what it returns.
* **Execution** (:meth:`SimulationService.run_sweep`): builds the rows
  through :mod:`repro.core.tables` with a per-request
  :class:`~repro.core.executor.SweepExecutor`, and returns a
  :class:`SweepOutcome` carrying rows plus the provenance the frontends
  print (cache stats, run ids, wall time, simulations performed).
* **Read API** (:meth:`runs_table` / :meth:`run_entry` /
  :meth:`compare_runs`): the run-ledger views behind both
  ``repro-sim runs list/show/compare`` and ``GET /v1/runs``.

See docs/service.md for the HTTP surface built on top.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.config.options import RepairMechanism
from repro.core import tables as table_builders
from repro.core.executor import (
    BACKENDS,
    ResultCache,
    SweepExecutor,
    code_fingerprint,
    default_backend,
    default_jobs,
)
from repro.core.experiment import default_scale, default_seed
from repro.errors import ServiceError, TelemetryError
from repro.telemetry import RunLedger, compare_entries
from repro.workloads.profiles import BENCHMARK_NAMES

#: Bump when the request/outcome JSON shapes change.
SERVICE_SCHEMA = 1

TableData = Tuple[str, List[str], List[List[object]]]
Builder = Callable[["SweepRequest", SweepExecutor], TableData]


def _common(request: "SweepRequest", executor: SweepExecutor,
            builder) -> TableData:
    return builder(names=list(request.names), seed=request.seed,
                   scale=request.scale, executor=executor)


def _stack_depth(request: "SweepRequest",
                 executor: SweepExecutor) -> TableData:
    return table_builders.fig_stack_depth(
        names=list(request.names), sizes=list(request.sizes),
        mechanism=RepairMechanism(request.mechanism),
        seed=request.seed, scale=request.scale, executor=executor)


#: The sweep catalog: public name -> row builder. One entry per CLI
#: table command, so anything the CLI can print a client can submit.
SWEEPS: Dict[str, Builder] = {
    "table1": lambda request, executor: table_builders.table1(),
    "table3": lambda request, executor: _common(
        request, executor, table_builders.table3_baseline),
    "table4": lambda request, executor: _common(
        request, executor, table_builders.table4_btb_only),
    "hit-rates": lambda request, executor: _common(
        request, executor, table_builders.fig_hit_rates),
    "speedup": lambda request, executor: _common(
        request, executor, table_builders.fig_speedup),
    "stack-depth": _stack_depth,
    "multipath": lambda request, executor: _common(
        request, executor, table_builders.fig_multipath),
    "ablation-mechanisms": lambda request, executor: _common(
        request, executor, table_builders.ablation_mechanisms),
    "ablation-shadow": lambda request, executor: _common(
        request, executor, table_builders.ablation_shadow_slots),
    "ablation-fastsim": lambda request, executor: _common(
        request, executor, table_builders.ablation_fastsim_crosscheck),
}

#: Default stack sizes for the ``stack-depth`` sweep (the figure grid).
DEFAULT_SIZES = (1, 2, 4, 8, 12, 16, 32, 64)


@dataclasses.dataclass(frozen=True)
class SweepRequest:
    """One validated, canonical sweep request.

    Only result-determining fields live here; scheduling knobs travel
    separately (see :meth:`SimulationService.run_sweep`), so two clients
    asking for the same rows coalesce regardless of how each wanted the
    sweep scheduled.
    """

    sweep: str
    names: Tuple[str, ...]
    seed: int
    scale: float
    sizes: Tuple[int, ...] = DEFAULT_SIZES
    mechanism: str = RepairMechanism.TOS_POINTER_AND_CONTENTS.value

    def canonical(self) -> Dict[str, object]:
        """The JSON identity the request key hashes (sweep-specific:
        parameters a sweep ignores are excluded from its identity)."""
        payload: Dict[str, object] = {"sweep": self.sweep}
        if self.sweep != "table1":
            payload["names"] = list(self.names)
            payload["seed"] = self.seed
            payload["scale"] = self.scale
        if self.sweep == "stack-depth":
            payload["sizes"] = list(self.sizes)
            payload["mechanism"] = self.mechanism
        return payload


def normalize_request(payload: Mapping[str, object]) -> SweepRequest:
    """Validate an untrusted request payload into a :class:`SweepRequest`.

    Raises :class:`~repro.errors.ServiceError` with a client-printable
    message on anything malformed; both frontends surface it verbatim
    (the HTTP layer as a 400).
    """
    if not isinstance(payload, Mapping):
        raise ServiceError("request must be a JSON object")
    sweep = str(payload.get("sweep", ""))
    if sweep not in SWEEPS:
        raise ServiceError(
            f"unknown sweep {sweep!r}; expected one of {sorted(SWEEPS)}")
    names = payload.get("names")
    if names in (None, []):
        names = list(BENCHMARK_NAMES)
    if not isinstance(names, (list, tuple)) or not all(
            isinstance(name, str) for name in names):
        raise ServiceError("names must be a list of benchmark names")
    unknown = sorted(set(names) - set(BENCHMARK_NAMES))
    if unknown:
        raise ServiceError(
            f"unknown benchmark names {unknown}; "
            f"expected a subset of {list(BENCHMARK_NAMES)}")
    try:
        seed = int(payload.get("seed", default_seed()))
        scale = float(payload.get("scale", default_scale()))
    except (TypeError, ValueError) as error:
        raise ServiceError(f"bad seed/scale: {error}")
    if not 0.0 < scale <= 4.0:
        raise ServiceError(f"scale {scale} out of range (0, 4]")
    sizes = payload.get("sizes")
    if sizes in (None, []):
        sizes = DEFAULT_SIZES
    try:
        sizes = tuple(int(size) for size in sizes)  # type: ignore[union-attr]
    except (TypeError, ValueError):
        raise ServiceError("sizes must be a list of integers")
    if any(size < 1 for size in sizes):
        raise ServiceError("sizes must be >= 1")
    mechanism = str(payload.get(
        "mechanism", RepairMechanism.TOS_POINTER_AND_CONTENTS.value))
    try:
        RepairMechanism(mechanism)
    except ValueError:
        raise ServiceError(
            f"unknown mechanism {mechanism!r}; expected one of "
            f"{[m.value for m in RepairMechanism]}")
    return SweepRequest(sweep=sweep, names=tuple(names), seed=seed,
                        scale=scale, sizes=sizes, mechanism=mechanism)


@dataclasses.dataclass
class SweepOutcome:
    """Everything a frontend needs to render one finished sweep."""

    request: SweepRequest
    request_key: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    cache: Dict[str, object]
    wall_time_s: float
    #: Ledger ids this request appended (empty without cache/telemetry).
    run_ids: List[str]
    #: Jobs that missed the result cache and were actually simulated —
    #: the number ``/metricz`` exposes so CI can prove a warm request
    #: performed zero new simulations.
    simulations: int
    summary_line: Optional[str] = None

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "schema": SERVICE_SCHEMA,
            "sweep": self.request.sweep,
            "request": self.request.canonical(),
            "request_key": self.request_key,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "cache": dict(self.cache),
            "wall_time_s": round(self.wall_time_s, 6),
            "run_ids": list(self.run_ids),
            "simulations": self.simulations,
        }


class SimulationService:
    """The one engine facade the CLI and the HTTP layer both call.

    Owns the default scheduling configuration (worker count, backend,
    result cache) a frontend may override per call, and the ledger the
    read API serves. Stateless between calls apart from those defaults:
    every :meth:`run_sweep` builds a fresh executor so cache statistics,
    run ids, and wall time are attributable to exactly one request.
    """

    def __init__(
        self,
        cache: Union[ResultCache, None, str] = "default",
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
        coordinator_url: Optional[str] = None,
    ) -> None:
        if cache == "default":
            self.cache: Optional[ResultCache] = ResultCache.default()
        else:
            self.cache = cache  # type: ignore[assignment]
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.backend = default_backend() if backend is None else backend
        if self.backend not in BACKENDS:
            raise ServiceError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {BACKENDS}")
        self.coordinator_url = coordinator_url

    # -- identity -------------------------------------------------------

    def request_key(self, request: SweepRequest) -> str:
        """The coalescing identity of a request.

        Hashes the canonical request plus the installed-code
        fingerprint — the sweep-level analogue of the executor's
        per-job cache key, so "same key" means "bit-identical rows".
        """
        payload = json.dumps(
            {"schema": SERVICE_SCHEMA, "request": request.canonical(),
             "code": code_fingerprint()},
            sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- execution ------------------------------------------------------

    def make_executor(self, jobs: Optional[int] = None,
                      backend: Optional[str] = None,
                      cache: Union[ResultCache, None, str] = "service",
                      ) -> SweepExecutor:
        """A fresh executor under this service's scheduling defaults."""
        if cache == "service":
            resolved: Optional[ResultCache] = self.cache
        elif cache == "default":
            resolved = ResultCache.default()
        else:
            resolved = cache  # type: ignore[assignment]
        return SweepExecutor(
            jobs=self.jobs if jobs is None else jobs,
            cache=resolved,
            backend=self.backend if backend is None else backend,
            coordinator_url=self.coordinator_url)

    def run_sweep(self, request: SweepRequest,
                  executor: Optional[SweepExecutor] = None) -> SweepOutcome:
        """Run one sweep to completion and package the outcome.

        Synchronous and thread-safe: the job queue calls it from worker
        threads, the CLI from the main thread. A caller-provided
        executor (the CLI path, which builds one from ``--jobs``/
        ``--backend``/``--no-cache``) is used as-is; otherwise the
        service's defaults apply.
        """
        builder = SWEEPS.get(request.sweep)
        if builder is None:
            raise ServiceError(f"unknown sweep {request.sweep!r}")
        if executor is None:
            executor = self.make_executor()
        title, headers, rows = builder(request, executor)
        return SweepOutcome(
            request=request,
            request_key=self.request_key(request),
            title=title,
            headers=list(headers),
            rows=[list(row) for row in rows],
            cache=executor.cache_stats(),
            wall_time_s=executor.wall_time_s,
            run_ids=list(executor.run_ids),
            simulations=executor.cache_misses,
            summary_line=executor.summary_line(),
        )

    # -- the run-ledger read API ---------------------------------------

    def default_ledger_path(self) -> pathlib.Path:
        """This service's ledger file (falls back to the process
        default when the service runs uncached)."""
        if self.cache is not None:
            return self.cache.ledger_path
        return ResultCache.default_ledger_path()

    def ledger(self, path: Union[str, os.PathLike, None] = None) -> RunLedger:
        return RunLedger(path if path is not None
                         else self.default_ledger_path())

    def runs_table(self, limit: Optional[int] = 20,
                   path: Union[str, os.PathLike, None] = None,
                   ) -> Tuple[TableData, List[Dict[str, object]]]:
        """``runs list`` as data: ``(title, headers, rows)`` plus the
        raw entries (newest last) for JSON frontends."""
        ledger = self.ledger(path)
        entries = ledger.entries(limit=limit)
        rows: List[List[object]] = []
        for entry in entries:
            cache = entry.get("cache") or {}
            hit_rate = cache.get("hit_rate")
            headline = entry.get("headline") or {}
            accuracy = headline.get("return_accuracy")
            rows.append([
                entry.get("run_id"),
                entry.get("utc"),
                ",".join(entry.get("engines") or []),
                entry.get("submitted"),
                entry.get("jobs"),
                None if hit_rate is None else round(100 * hit_rate, 1),
                entry.get("wall_time_s"),
                None if accuracy is None else round(100 * accuracy, 2),
            ])
        title = f"Run ledger {ledger.path} ({len(entries)} shown)"
        headers = ["run id", "utc", "engines", "sweeps", "jobs",
                   "cache hit %", "wall s", "return acc %"]
        return (title, headers, rows), entries

    def run_entry(self, ref: str,
                  path: Union[str, os.PathLike, None] = None,
                  ) -> Dict[str, object]:
        """``runs show`` as data: the entry plus its integrity verdict.

        Raises :class:`~repro.errors.TelemetryError` for unknown or
        ambiguous refs (the HTTP layer maps it to 404).
        """
        ledger = self.ledger(path)
        entry = ledger.get(ref)
        return {"entry": entry, "integrity_ok": ledger.verify(entry)}

    def compare_runs(self, a: str, b: str,
                     path: Union[str, os.PathLike, None] = None,
                     ) -> Dict[str, object]:
        """``runs compare`` as data: the full config + metric diff."""
        ledger = self.ledger(path)
        return compare_entries(ledger.get(a), ledger.get(b))

    def overview(self) -> Dict[str, object]:
        """Cache + ledger occupancy for ``/metricz`` and dashboards."""
        ledger_path = self.default_ledger_path()
        try:
            entry_count = len(self.ledger().entries())
        except TelemetryError:  # pragma: no cover - entries() never raises
            entry_count = 0
        return {
            "cache": (self.cache.stats() if self.cache is not None
                      else {"entries": 0, "bytes": 0, "root": None,
                            "schema": None}),
            "ledger": {"path": str(ledger_path), "entries": entry_count},
            "backend": self.backend,
            "jobs": self.jobs,
        }
