"""The in-process job queue: coalescing, bounded concurrency, events.

One :class:`JobQueue` owns every sweep the HTTP layer has accepted.
Its three jobs:

* **Coalescing.** Jobs are keyed by
  :meth:`SimulationService.request_key` — the sweep-level lift of the
  executor cache key. A submit whose key matches a queued, running, *or
  finished* job attaches to it instead of creating work: a thousand
  identical requests cost one simulation, and every subscriber gets the
  same job id (and therefore the same result and the same ledger
  entry). This mirrors the cluster coordinator's key-coalescing lease
  table, one level up.
* **Bounded execution.** Sweeps are synchronous engine work, so they
  run on a dedicated thread pool of ``max_concurrency`` workers while
  the asyncio loop keeps serving reads. Jobs beyond the bound wait in
  ``queued`` state.
* **Progress events.** Each job carries an append-only event list
  (state transitions plus ``sweep/*`` / ``cache/*`` telemetry spans
  recorded by its worker thread), replayed to late subscribers and
  fanned out live to per-job and global subscriber queues — the feed
  behind ``GET /v1/sweeps/{id}/events`` and the dashboard.

Loop discipline: every public method is loop-thread-only; worker
threads re-enter through ``call_soon_threadsafe``. The
``REPRO_SERVICE_SLOW_S`` environment knob (or the ``slow_s``
constructor argument) injects a pre-execution sleep per job — a chaos/
test hook in the spirit of ``REPRO_CHAOS_KILL_MIDJOB``, used by the
drain tests and the CI smoke job to hold a job in flight.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.obs import context as tracectx
from repro.obs.store import TraceStore
from repro.service.core import SimulationService, SweepOutcome, SweepRequest
from repro.telemetry import state as telemetry_state
from repro.telemetry.spans import Span, recorder

#: Span names translated into progress events (the rest are noise at
#: service granularity).
PROGRESS_SPANS = ("sweep/run", "sweep/job", "cache/get", "cache/put",
                  "sweep/mechanisms")

#: Per-job replay buffer bound; the terminal event is always kept.
EVENT_BUFFER = 256

JOB_ID_LEN = 12


def slow_s_from_env() -> float:
    try:
        return float(os.environ.get("REPRO_SERVICE_SLOW_S", "0") or 0.0)
    except ValueError:
        return 0.0


class SweepJob:
    """One coalesced unit of sweep work and its event history."""

    def __init__(self, job_id: str, key: str, request: SweepRequest,
                 tenant: str,
                 trace: Optional[tracectx.TraceContext] = None) -> None:
        self.id = job_id
        self.key = key
        self.request = request
        self.tenant = tenant
        self.state = "queued"
        #: How many submits this job absorbed (1 = never coalesced).
        self.submits = 1
        #: Trace identity for the whole HTTP job (repro.obs): the
        #: context the submitter propagated via ``traceparent``, or a
        #: fresh root. ``span_id`` is reserved up front so the submit
        #: response can emit a ``traceparent`` before execution starts.
        self.trace = trace
        self.span_id = tracectx.new_span_id() if trace is not None else None
        self.created_ts = time.time()
        self.started_ts: Optional[float] = None
        self.finished_ts: Optional[float] = None
        self.outcome: Optional[SweepOutcome] = None
        self.error: Optional[str] = None
        self.events: List[Dict[str, object]] = []

    @property
    def trace_id(self) -> Optional[str]:
        return self.trace.trace_id if self.trace is not None else None

    def traceparent(self) -> Optional[str]:
        if self.trace is None or self.span_id is None:
            return None
        return tracectx.format_traceparent(
            tracectx.TraceContext(self.trace.trace_id, self.span_id))

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    def descriptor(self, include_result: bool = False) -> Dict[str, object]:
        """The JSON shape of ``GET /v1/sweeps/{id}``."""
        payload: Dict[str, object] = {
            "job": self.id,
            "state": self.state,
            "sweep": self.request.sweep,
            "request": self.request.canonical(),
            "tenant": self.tenant,
            "submits": self.submits,
            "created_ts": round(self.created_ts, 3),
            "started_ts": (None if self.started_ts is None
                           else round(self.started_ts, 3)),
            "finished_ts": (None if self.finished_ts is None
                            else round(self.finished_ts, 3)),
            "events": len(self.events),
        }
        if self.trace is not None:
            payload["trace_id"] = self.trace.trace_id
        if self.error is not None:
            payload["error"] = self.error
        if include_result and self.outcome is not None:
            payload["result"] = self.outcome.to_json_dict()
        elif self.outcome is not None:
            payload["run_ids"] = list(self.outcome.run_ids)
        return payload


class JobQueue:
    """Coalescing scheduler over a :class:`SimulationService`."""

    def __init__(self, service: SimulationService, max_concurrency: int = 2,
                 slow_s: Optional[float] = None) -> None:
        self.service = service
        self.max_concurrency = max(1, int(max_concurrency))
        self.slow_s = slow_s_from_env() if slow_s is None else slow_s
        self.jobs: Dict[str, SweepJob] = {}  # request key -> job
        self.by_id: Dict[str, SweepJob] = {}
        self.order: List[SweepJob] = []  # submission order, oldest first
        self.counters: Dict[str, int] = {
            "requests": 0, "coalesced": 0, "executed": 0, "failed": 0,
            "simulations": 0, "cache_hits": 0, "cache_misses": 0,
        }
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[object] = None  # ThreadPoolExecutor, lazy
        self._active = 0
        self._idle = threading.Event()
        self._idle.set()
        self._idle_async: Optional[asyncio.Event] = None
        self._subscribers: Dict[SweepJob, Set[asyncio.Queue]] = {}
        self._global_subscribers: Set[asyncio.Queue] = set()
        #: Loop-thread callback fired once per job on completion; the
        #: HTTP layer hangs tenant-quota release here.
        self.on_finished: Optional[Callable[[SweepJob], None]] = None

    # -- lifecycle ------------------------------------------------------

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach to the serving loop (must run before any submit)."""
        from concurrent.futures import ThreadPoolExecutor
        self._loop = loop
        self._idle_async = asyncio.Event()
        self._idle_async.set()
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_concurrency,
            thread_name_prefix="repro-service-sweep")

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)  # type: ignore[attr-defined]

    async def wait_idle(self) -> None:
        """Block until no job is queued or running (the drain wait)."""
        assert self._idle_async is not None
        await self._idle_async.wait()

    @property
    def active(self) -> int:
        return self._active

    # -- submission -----------------------------------------------------

    def submit(self, request: SweepRequest,
               tenant: str = "anonymous",
               trace: Optional[tracectx.TraceContext] = None,
               ) -> Tuple[SweepJob, bool]:
        """Admit one request; returns ``(job, created)``.

        ``created=False`` means the submit coalesced onto an existing
        job (in any state — a finished job is a warm hit served without
        touching the engine at all). ``trace`` is the submitter's
        propagated context (from a ``traceparent`` header); with none
        given a fresh trace root is minted when tracing is on. A
        coalesced submit keeps the first submitter's trace — one job,
        one trace, however many submits it absorbed.
        """
        assert self._loop is not None, "JobQueue.bind() must run first"
        self.counters["requests"] += 1
        key = self.service.request_key(request)
        job = self.jobs.get(key)
        if job is not None:
            job.submits += 1
            self.counters["coalesced"] += 1
            return job, False
        if (trace is None and telemetry_state.enabled()
                and tracectx.tracing_enabled()):
            trace = tracectx.TraceContext(tracectx.new_trace_id(), "")
        job = SweepJob(key[:JOB_ID_LEN], key, request, tenant, trace=trace)
        self.jobs[key] = job
        self.by_id[job.id] = job
        self.order.append(job)
        self._active += 1
        self._idle.clear()
        if self._idle_async is not None:
            self._idle_async.clear()
        self.publish(job, {"event": "state", "state": "queued"})
        self._loop.create_task(self._run(job))
        return job, True

    def get(self, job_id: str) -> Optional[SweepJob]:
        return self.by_id.get(job_id)

    def snapshot(self, limit: int = 50) -> List[Dict[str, object]]:
        """Newest-first job descriptors for ``GET /v1/sweeps``."""
        return [job.descriptor() for job in reversed(self.order[-limit:])]

    # -- execution ------------------------------------------------------

    async def _run(self, job: SweepJob) -> None:
        assert self._loop is not None and self._pool is not None
        try:
            outcome = await self._loop.run_in_executor(
                self._pool, self._execute, job)  # type: ignore[arg-type]
            job.outcome = outcome
            job.state = "done"
            self.counters["executed"] += 1
            self.counters["simulations"] += outcome.simulations
            self.counters["cache_hits"] += int(outcome.cache.get("hits") or 0)
            self.counters["cache_misses"] += int(
                outcome.cache.get("misses") or 0)
            terminal: Dict[str, object] = {
                "event": "done",
                "rows": len(outcome.rows),
                "run_ids": list(outcome.run_ids),
                "cache": dict(outcome.cache),
                "wall_time_s": round(outcome.wall_time_s, 6),
            }
        except Exception as error:  # noqa: BLE001 - jobs must not kill the loop
            job.error = f"{type(error).__name__}: {error}"
            job.state = "failed"
            self.counters["failed"] += 1
            terminal = {"event": "failed", "error": job.error}
        job.finished_ts = time.time()
        self.publish(job, terminal)
        if self.on_finished is not None:
            self.on_finished(job)
        self._active -= 1
        if self._active == 0:
            self._idle.set()
            if self._idle_async is not None:
                self._idle_async.set()

    def _execute(self, job: SweepJob) -> SweepOutcome:
        """Worker-thread body: chaos delay, span tap, engine call."""
        if self.slow_s > 0:
            time.sleep(self.slow_s)
        assert self._loop is not None
        loop = self._loop
        worker_tid = threading.get_ident()

        def on_span(span: Span) -> None:
            # Only this job's thread: concurrent sweeps share the
            # process-global recorder. (Pool-worker spans live in child
            # processes and never reach this recorder — with --jobs > 1
            # progress granularity degrades to sweep-level spans.)
            if threading.get_ident() != worker_tid:
                return
            if span.name not in PROGRESS_SPANS:
                return
            event = {"event": "progress", "span": span.name,
                     "ms": round(span.duration_ms, 3),
                     "attrs": dict(span.attrs)}
            loop.call_soon_threadsafe(self.publish, job, event)

        job.started_ts = time.time()
        loop.call_soon_threadsafe(
            self.publish, job, {"event": "state", "state": "running"})
        job.state = "running"
        # owner binding: if this worker thread dies without reaching the
        # finally (pool torn down mid-job), the recorder reaps the
        # subscription instead of leaking it forever
        token = recorder.subscribe(on_span, owner=threading.current_thread())
        ctx: Optional[tracectx.TraceContext] = None
        root: Optional[Span] = None
        started = time.perf_counter()
        if (job.trace is not None and job.span_id is not None
                and telemetry_state.enabled()):
            # the job's reserved span becomes the parent of everything
            # the sweep records (the executor's capture joins this
            # trace instead of minting its own)
            ctx = tracectx.TraceContext(job.trace.trace_id, job.span_id)
            root = Span("service/job", {"sweep": job.request.sweep,
                                        "job": job.id})
            root.trace_id = job.trace.trace_id
            root.span_id = job.span_id
            root.parent_id = job.trace.span_id or None
        try:
            with tracectx.activate(ctx):
                return self.service.run_sweep(job.request)
        finally:
            recorder.unsubscribe(token)
            if root is not None:
                # recorded after the sweep's own capture closed, so the
                # root span is appended to the trace store directly
                root.start_s = started - recorder.epoch
                root.duration_ms = (time.perf_counter() - started) * 1000.0
                recorder.record(root)
                cache = self.service.cache
                if cache is not None:
                    TraceStore.at_cache_root(cache.base_root).append(
                        root.trace_id, [root.to_json_dict()])

    # -- events ---------------------------------------------------------

    def publish(self, job: SweepJob, event: Dict[str, object]) -> None:
        """Stamp, buffer, and fan out one job event (loop thread only)."""
        event = {"job": job.id, "ts": round(time.time(), 3), **event}
        job.events.append(event)
        if len(job.events) > EVENT_BUFFER:
            # drop the oldest non-terminal events; keep the first
            # (queued) for context
            del job.events[1:2]
        for queue in list(self._subscribers.get(job, ())):
            queue.put_nowait(event)
        for queue in list(self._global_subscribers):
            queue.put_nowait(event)

    def subscribe(self, job: Optional[SweepJob] = None) -> asyncio.Queue:
        """A live event feed: one job's, or every job's (``None``)."""
        queue: asyncio.Queue = asyncio.Queue()
        if job is None:
            self._global_subscribers.add(queue)
        else:
            self._subscribers.setdefault(job, set()).add(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue,
                    job: Optional[SweepJob] = None) -> None:
        if job is None:
            self._global_subscribers.discard(queue)
        else:
            listeners = self._subscribers.get(job)
            if listeners is not None:
                listeners.discard(queue)
                if not listeners:
                    self._subscribers.pop(job, None)

    # -- introspection --------------------------------------------------

    def stats(self) -> Dict[str, object]:
        states: Dict[str, int] = {}
        for job in self.order:
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "max_concurrency": self.max_concurrency,
            "active": self._active,
            "jobs": len(self.order),
            "states": states,
            **self.counters,
        }
