"""Per-tenant admission control: token buckets and outstanding quotas.

The service identifies a tenant by the ``X-Api-Key`` request header
(absent = the shared ``"anonymous"`` tenant — the service is open by
default). Two independent limits guard submission, both disabled unless
configured:

* **rate** — a classic token bucket per tenant: ``burst`` tokens of
  capacity refilled at ``rate`` tokens/second. A submit takes one
  token; an empty bucket rejects with the seconds until the next token
  (the HTTP layer's 429 ``Retry-After``).
* **quota** — a cap on *outstanding* (queued or running) jobs per
  tenant. Coalesced submits don't consume quota: attaching to someone
  else's identical sweep costs the fleet nothing.

Deterministic by construction: the clock is injectable, so tests drive
time explicitly instead of sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple


class TokenBucket:
    """One tenant's refillable budget of submit tokens."""

    def __init__(self, rate_per_s: float, burst: int,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"rate must be > 0, got {rate_per_s}")
        self.rate_per_s = float(rate_per_s)
        self.burst = max(1, int(burst))
        self._clock = clock
        self._tokens = float(self.burst)
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(float(self.burst),
                           self._tokens + elapsed * self.rate_per_s)
        self._updated = now

    def try_take(self) -> Tuple[bool, float]:
        """Take one token: ``(True, 0.0)`` or ``(False, retry_after_s)``."""
        now = self._clock()
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate_per_s


class TenantLimiter:
    """Admission control over every tenant the service has seen.

    ``rate=None`` disables rate limiting, ``quota=None`` disables the
    outstanding-jobs cap — the "default open" posture the service
    starts with unless ``repro-sim serve`` passes limits.
    """

    def __init__(self, rate_per_s: Optional[float] = None,
                 burst: Optional[int] = None,
                 quota: Optional[int] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate_per_s = rate_per_s
        self.burst = burst if burst is not None else (
            max(1, int(rate_per_s)) if rate_per_s else 1)
        self.quota = quota
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._outstanding: Dict[str, int] = {}
        #: Rejections by kind, for /metricz.
        self.rejected: Dict[str, int] = {"rate": 0, "quota": 0}

    def admit(self, tenant: str) -> Tuple[bool, str, float]:
        """May ``tenant`` submit a *new* (uncoalesced) sweep right now?

        Returns ``(allowed, reason, retry_after_s)``; ``reason`` is
        ``"rate"`` or ``"quota"`` on rejection. The caller must pair an
        allowed new-job submit with :meth:`job_started` /
        :meth:`job_finished` so quotas track outstanding work.
        """
        if self.rate_per_s is not None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.rate_per_s, self.burst, clock=self._clock)
            allowed, retry_after = bucket.try_take()
            if not allowed:
                self.rejected["rate"] += 1
                return False, "rate", retry_after
        if self.quota is not None:
            if self._outstanding.get(tenant, 0) >= self.quota:
                self.rejected["quota"] += 1
                return False, "quota", 1.0
        return True, "", 0.0

    def job_started(self, tenant: str) -> None:
        self._outstanding[tenant] = self._outstanding.get(tenant, 0) + 1

    def job_finished(self, tenant: str) -> None:
        count = self._outstanding.get(tenant, 0) - 1
        if count > 0:
            self._outstanding[tenant] = count
        else:
            self._outstanding.pop(tenant, None)

    def outstanding(self, tenant: str) -> int:
        return self._outstanding.get(tenant, 0)

    def snapshot(self) -> Dict[str, object]:
        return {
            "rate_per_s": self.rate_per_s,
            "burst": self.burst if self.rate_per_s is not None else None,
            "quota": self.quota,
            "tenants": len(self._buckets) or len(self._outstanding),
            "rejected": dict(self.rejected),
        }
