"""Simulation-as-a-service: one engine facade, two thin frontends.

The package the ROADMAP's service item asked for, in four layers:

* :mod:`repro.service.core` — :class:`SimulationService`, the facade
  over :class:`~repro.core.executor.SweepExecutor`, the sweep catalog,
  and the run-ledger read API. The CLI calls it directly.
* :mod:`repro.service.queue` — :class:`JobQueue`: request coalescing on
  result identity, bounded concurrency, live progress events.
* :mod:`repro.service.ratelimit` — :class:`TenantLimiter`: per-API-key
  token buckets and outstanding-job quotas (default open).
* :mod:`repro.service.http` — the asyncio HTTP/SSE frontend and the
  ``repro-sim serve`` entrypoint, plus the ``/`` dashboard
  (:mod:`repro.service.dashboard`).
"""

from repro.service.core import (
    SERVICE_SCHEMA,
    SWEEPS,
    SimulationService,
    SweepOutcome,
    SweepRequest,
    normalize_request,
)
from repro.service.http import BackgroundServer, ServiceServer, serve
from repro.service.queue import JobQueue, SweepJob
from repro.service.ratelimit import TenantLimiter, TokenBucket

__all__ = [
    "SERVICE_SCHEMA",
    "SWEEPS",
    "SimulationService",
    "SweepOutcome",
    "SweepRequest",
    "normalize_request",
    "BackgroundServer",
    "ServiceServer",
    "serve",
    "JobQueue",
    "SweepJob",
    "TenantLimiter",
    "TokenBucket",
]
