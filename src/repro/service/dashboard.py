"""The zero-dependency live-runs dashboard served at ``GET /``.

One self-contained HTML page — no external scripts, stylesheets, fonts,
or build step — that a browser pointed at ``repro-sim serve`` renders
into three live panels:

* **Jobs** — every sweep the queue has seen, updated in place from the
  global SSE feed (``/v1/events``): state, coalesced-submit count,
  wall time once done.
* **Event log** — the raw progress stream, newest first, capped
  client-side.
* **Trace waterfall** — the most recently active job's telemetry spans
  (the same ``progress`` events the log shows) laid out as horizontal
  bars on the job's own timeline: a live, approximate cousin of
  ``repro-sim trace show``. Span start is inferred client-side as
  arrival-time minus duration (events fire when a span *closes*), so
  bars are honest about duration and close-order, approximate about
  absolute offsets.
* **Service** — ``/healthz`` + the queue/cache/ledger numbers from
  ``/metricz``, refreshed on a timer.

The page is deliberately dumb: every number it shows comes verbatim
from the JSON API, so it doubles as living documentation of the
endpoints. Python's role is just to serve the string below.
"""

from __future__ import annotations

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro-sim service</title>
<style>
  body { font: 14px/1.45 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 1.5rem; background: #111418; color: #d8dee4; }
  h1 { font-size: 1.15rem; } h2 { font-size: 0.95rem; color: #8b949e; }
  .pill { display: inline-block; padding: 0 .5em; border-radius: 1em;
          font-size: .85em; }
  .queued  { background: #3a3f44; }  .running { background: #1f4e8c; }
  .done    { background: #1f6f43; }  .failed  { background: #8c2f39; }
  table { border-collapse: collapse; margin: .5rem 0 1.25rem; }
  th, td { padding: .2rem .7rem; border-bottom: 1px solid #2d333b;
           text-align: left; }
  #log { max-height: 16rem; overflow-y: auto; white-space: pre-wrap;
         background: #0d1117; padding: .6rem; border: 1px solid #2d333b; }
  #health span { margin-right: 1.2rem; }
  .drain { color: #e3b341; }
  #trace { background: #0d1117; padding: .6rem; border: 1px solid #2d333b; }
  #trace .row { display: flex; align-items: center; height: 1.2rem; }
  #trace .lbl { width: 13rem; overflow: hidden; text-overflow: ellipsis;
                white-space: nowrap; color: #8b949e; flex: none; }
  #trace .lane { position: relative; flex: 1; height: .7rem; }
  #trace .bar { position: absolute; height: 100%; border-radius: 2px;
                background: #1f4e8c; min-width: 2px; }
  #trace .bar.sweep { background: #1f6f43; }
  #trace .bar.cache { background: #8c6d1f; }
  #tracehdr { color: #8b949e; margin-bottom: .3rem; }
</style>
</head>
<body>
<h1>repro-sim service &mdash; live runs</h1>
<div id="health">connecting&hellip;</div>
<h2>Jobs</h2>
<table id="jobs"><thead><tr>
  <th>job</th><th>sweep</th><th>state</th><th>submits</th>
  <th>tenant</th><th>events</th>
</tr></thead><tbody></tbody></table>
<h2>Event log</h2>
<div id="log"></div>
<h2>Trace waterfall</h2>
<div id="trace"><div id="tracehdr">waiting for spans&hellip;</div>
<div id="tracerows"></div></div>
<h2>Service</h2>
<table id="svc"><tbody></tbody></table>
<script>
"use strict";
const jobs = new Map();
const logBox = document.getElementById("log");
const MAX_LOG = 200;

function renderJobs() {
  const body = document.querySelector("#jobs tbody");
  const rows = [...jobs.values()].sort(
    (a, b) => (b.created_ts || 0) - (a.created_ts || 0));
  body.innerHTML = rows.map(j => `<tr>
    <td>${j.job}</td><td>${j.sweep || ""}</td>
    <td><span class="pill ${j.state}">${j.state}</span></td>
    <td>${j.submits || 1}</td><td>${j.tenant || ""}</td>
    <td>${j.events || 0}</td></tr>`).join("");
}

function logLine(text) {
  const line = document.createElement("div");
  line.textContent = text;
  logBox.prepend(line);
  while (logBox.childElementCount > MAX_LOG) logBox.lastChild.remove();
}

function touch(id, patch) {
  const job = jobs.get(id) || { job: id };
  Object.assign(job, patch);
  job.events = (job.events || 0) + 1;
  jobs.set(id, job);
  renderJobs();
}

const feed = new EventSource("/v1/events");
feed.addEventListener("snapshot", e => {
  const snap = JSON.parse(e.data);
  (snap.jobs || []).forEach(j => jobs.set(j.job, j));
  renderJobs();
  renderHealth(snap.health || {});
});
feed.addEventListener("state", e => {
  const ev = JSON.parse(e.data);
  touch(ev.job, { state: ev.state });
  logLine(`${ev.job} -> ${ev.state}`);
});
feed.addEventListener("progress", e => {
  const ev = JSON.parse(e.data);
  touch(ev.job, {});
  logLine(`${ev.job} ${ev.span} ${ev.ms}ms`);
  traceSpan(ev);
});
feed.addEventListener("done", e => {
  const ev = JSON.parse(e.data);
  touch(ev.job, { state: "done" });
  logLine(`${ev.job} done: ${ev.rows} rows in ${ev.wall_time_s}s ` +
          `(cache ${JSON.stringify(ev.cache)})`);
});
feed.addEventListener("failed", e => {
  const ev = JSON.parse(e.data);
  touch(ev.job, { state: "failed" });
  logLine(`${ev.job} FAILED: ${ev.error}`);
});
feed.onerror = () => logLine("event stream interrupted");

// -- trace waterfall: spans of the most recently active job ----------
const traces = new Map();   // job id -> [{name, start_s, ms}, ...]
const MAX_TRACE_SPANS = 60;
let traceJob = null;

function traceSpan(ev) {
  // a progress event fires when a span closes; ev.ts is the server's
  // wall-clock stamp, so start = ts - duration on the job's own axis
  if (!traces.has(ev.job)) traces.set(ev.job, []);
  const spans = traces.get(ev.job);
  spans.push({ name: ev.span, end_s: ev.ts, ms: ev.ms || 0 });
  if (spans.length > MAX_TRACE_SPANS) spans.shift();
  traceJob = ev.job;
  renderTrace();
}

function renderTrace() {
  const spans = traces.get(traceJob) || [];
  if (!spans.length) return;
  const t0 = Math.min(...spans.map(s => s.end_s - s.ms / 1000));
  const t1 = Math.max(...spans.map(s => s.end_s));
  const extent = Math.max(t1 - t0, 1e-6);
  document.getElementById("tracehdr").textContent =
    `job ${traceJob} · ${spans.length} spans · ` +
    `${(extent * 1000).toFixed(1)}ms window`;
  document.getElementById("tracerows").innerHTML = spans.map(s => {
    const left = ((s.end_s - s.ms / 1000 - t0) / extent * 100).toFixed(2);
    const width = Math.max(s.ms / 1000 / extent * 100, 0.3).toFixed(2);
    const cls = s.name.startsWith("sweep/") ? "sweep"
              : s.name.startsWith("cache/") ? "cache" : "";
    return `<div class="row"><div class="lbl" title="${s.name}">` +
      `${s.name} ${s.ms.toFixed(1)}ms</div><div class="lane">` +
      `<div class="bar ${cls}" style="left:${left}%;width:${width}%">` +
      `</div></div></div>`;
  }).join("");
}

function renderHealth(h) {
  document.getElementById("health").innerHTML =
    `<span>ok: ${h.ok}</span>` +
    `<span class="${h.draining ? "drain" : ""}">draining: ${h.draining}</span>` +
    `<span>uptime: ${Math.round(h.uptime_s || 0)}s</span>` +
    `<span>active jobs: ${h.active_jobs}</span>`;
}

async function pollService() {
  try {
    const [healthz, metricz] = await Promise.all([
      fetch("/healthz").then(r => r.json()),
      fetch("/metricz").then(r => r.json()),
    ]);
    renderHealth(healthz);
    const queue = (metricz.service || {}).queue || {};
    const cache = metricz.cache || {};
    const ledger = metricz.ledger || {};
    const rows = [
      ["requests", queue.requests], ["coalesced", queue.coalesced],
      ["executed", queue.executed], ["failed", queue.failed],
      ["simulations", queue.simulations],
      ["cache entries", cache.entries], ["cache bytes", cache.bytes],
      ["ledger entries", ledger.entries], ["ledger path", ledger.path],
      ["backend", metricz.backend], ["jobs/sweep", metricz.jobs],
    ];
    document.querySelector("#svc tbody").innerHTML = rows.map(
      ([k, v]) => `<tr><th>${k}</th><td>${v ?? ""}</td></tr>`).join("");
  } catch (err) { /* server draining or gone; the feed handler logs it */ }
}
pollService();
setInterval(pollService, 5000);
</script>
</body>
</html>
"""


def dashboard_html() -> str:
    """The dashboard page (a function so the HTTP layer never imports a
    half-megabyte constant eagerly if this ever grows)."""
    return DASHBOARD_HTML
