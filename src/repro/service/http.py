"""The asyncio HTTP frontend: REST + SSE over the service core.

Stdlib only, by the same policy as :mod:`repro.cluster`: one
``asyncio.start_server`` loop, hand-rolled HTTP/1.1 framing
(``Connection: close`` per request — every response carries an explicit
length or streams until close, so framing stays trivial), JSON bodies.
Where the cluster coordinator uses ``ThreadingHTTPServer`` because its
handlers block on leases, the service layer is asyncio because its
defining workload is *many idle readers* (SSE dashboards, pollers)
around a few long engine runs — exactly the shape an event loop serves
cheaply and threads don't.

Surface (see docs/service.md for the contract):

====================================  =====================================
``POST /v1/sweeps``                   submit (202) or coalesce (200/202)
``GET /v1/sweeps``                    job table + queue stats
``GET /v1/sweeps/{id}``               one job, result rows when done
``GET /v1/sweeps/{id}/events``        SSE: replay + live progress
``GET /v1/events``                    SSE: global feed (the dashboard's)
``GET /v1/runs``                      run-ledger list (``?limit=``)
``GET /v1/runs/compare``              ``?a=&b=`` config/metric diff
``GET /v1/runs/{id}``                 one ledger entry + integrity verdict
``GET /healthz``                      liveness + drain state
``GET /metricz``                      queue/cache/ledger/limiter + metrics
``GET /``                             the live-runs dashboard (HTML)
====================================  =====================================

Admission: tenant = ``X-Api-Key`` header (absent → ``anonymous``);
rate/quota rejections are 429 with ``Retry-After``; submits during
drain are 503 with ``Retry-After``. Coalesced submits bypass admission
— they attach to paid-for work.

Shutdown: SIGTERM/SIGINT triggers *graceful drain* — in-flight and
queued jobs finish, reads keep working, new submits get 503 — then the
process exits 0. The startup line ``service listening at
http://host:port`` goes to stderr so scripts (and the CI smoke job) can
bind port 0 and discover the real port.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from typing import Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro import telemetry
from repro.errors import ServiceError, TelemetryError
from repro.obs import context as tracectx
from repro.obs import prom
from repro.obs.log import logger
from repro.service.core import SimulationService, normalize_request
from repro.service.dashboard import dashboard_html
from repro.service.queue import JobQueue, SweepJob
from repro.service.ratelimit import TenantLimiter

log = logger("service")

#: Hard request-framing limits (this is an ops endpoint, not a proxy).
MAX_BODY_BYTES = 1 << 20
MAX_HEADER_LINES = 64
REQUEST_TIMEOUT_S = 30.0

#: Seconds between SSE keepalive comments when no events flow.
SSE_KEEPALIVE_S = 15.0

#: ``Retry-After`` hint for submits rejected because of drain.
DRAIN_RETRY_AFTER_S = 5

STATUS_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """An error with a wire status; the handler renders it as JSON."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Mapping[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})


class ServiceServer:
    """One service instance: engine facade + queue + admission + HTTP."""

    def __init__(
        self,
        service: Optional[SimulationService] = None,
        host: str = "127.0.0.1",
        port: int = 8642,
        max_concurrency: int = 2,
        limiter: Optional[TenantLimiter] = None,
        slow_s: Optional[float] = None,
    ) -> None:
        self.service = service if service is not None else SimulationService()
        self.host = host
        self.port = port
        self.queue = JobQueue(self.service, max_concurrency=max_concurrency,
                              slow_s=slow_s)
        self.limiter = limiter if limiter is not None else TenantLimiter()
        self.draining = False
        self.started_ts = time.time()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._drain_task: Optional[asyncio.Task] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and the queue; resolves ``self.port``."""
        loop = asyncio.get_event_loop()
        self.queue.bind(loop)
        self.queue.on_finished = lambda job: self.limiter.job_finished(
            job.tenant)
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.queue.shutdown()

    def request_drain(self) -> None:
        """Begin graceful drain (idempotent; the SIGTERM handler)."""
        if self._drain_task is None:
            self.draining = True
            self._drain_task = asyncio.get_event_loop().create_task(
                self._drain())

    async def _drain(self) -> None:
        await self.queue.wait_idle()
        assert self._stop_event is not None
        self._stop_event.set()

    async def serve_forever(self) -> None:
        """Start, announce, serve until stopped (drain or ``stop()``)."""
        await self.start()
        # the URL stays inside the event string: scripts (and the CI
        # smoke job) discover ephemeral ports by parsing this exact line
        log.info(f"listening at http://{self.host}:{self.port}")
        loop = asyncio.get_event_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, self.request_drain)
            loop.add_signal_handler(signal.SIGINT, self.request_drain)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or platform without signal support
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self.stop()

    # -- request framing ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, target, headers, body = await asyncio.wait_for(
                    _read_request(reader), REQUEST_TIMEOUT_S)
            except HttpError as error:
                await _send_json(writer, error.status,
                                 {"error": str(error)}, error.headers)
                return
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError, ValueError):
                return
            try:
                await self._route(method, target, headers, body, writer)
            except HttpError as error:
                await _send_json(writer, error.status,
                                 {"error": str(error)}, error.headers)
            except ServiceError as error:
                await _send_json(writer, 400, {"error": str(error)})
            except TelemetryError as error:
                await _send_json(writer, 404, {"error": str(error)})
            except Exception as error:  # noqa: BLE001 - keep the loop alive
                await _send_json(
                    writer, 500,
                    {"error": f"{type(error).__name__}: {error}"})
        except (ConnectionError, asyncio.TimeoutError):
            pass  # client went away mid-response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- routing --------------------------------------------------------

    async def _route(self, method: str, target: str,
                     headers: Dict[str, str], body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        parts = urlsplit(target)
        path = unquote(parts.path)
        query = parse_qs(parts.query)
        if path == "/" and method == "GET":
            await _send_response(writer, 200, dashboard_html().encode(),
                                 "text/html; charset=utf-8")
        elif path == "/healthz" and method == "GET":
            await _send_json(writer, 200, self._healthz())
        elif path == "/metricz" and method == "GET":
            # JSON stays the default shape (scripts assert on its
            # fields); Prometheus text is opt-in via ?format=prom or an
            # Accept header that prefers text/plain
            accept = headers.get("accept", "")
            if (query.get("format", [""])[0] == "prom"
                    or ("text/plain" in accept
                        and "application/json" not in accept)):
                await _send_response(writer, 200,
                                     self._metricz_prom().encode(),
                                     prom.CONTENT_TYPE)
            else:
                await _send_json(writer, 200, self._metricz())
        elif path == "/v1/sweeps" and method == "POST":
            await self._submit(headers, body, writer)
        elif path == "/v1/sweeps" and method == "GET":
            await _send_json(writer, 200, {
                "jobs": self.queue.snapshot(),
                "queue": self.queue.stats(),
            })
        elif path == "/v1/events" and method == "GET":
            await self._stream_global(writer)
        elif path.startswith("/v1/sweeps/") and method == "GET":
            rest = path[len("/v1/sweeps/"):]
            if rest.endswith("/events"):
                await self._stream_job(self._job(rest[:-len("/events")]),
                                       writer)
            else:
                await _send_json(
                    writer, 200,
                    self._job(rest).descriptor(include_result=True))
        elif path == "/v1/runs" and method == "GET":
            await self._runs_list(query, writer)
        elif path == "/v1/runs/compare" and method == "GET":
            refs = (query.get("a", [None])[0], query.get("b", [None])[0])
            if not refs[0] or not refs[1]:
                raise HttpError(400, "compare needs ?a=<run>&b=<run>")
            await _send_json(writer, 200,
                             self.service.compare_runs(refs[0], refs[1]))
        elif path.startswith("/v1/runs/") and method == "GET":
            await _send_json(writer, 200,
                             self.service.run_entry(path[len("/v1/runs/"):]))
        elif path in ("/", "/healthz", "/metricz", "/v1/sweeps",
                      "/v1/events", "/v1/runs") or path.startswith("/v1/"):
            raise HttpError(405, f"{method} not allowed on {path}",
                            {"Allow": "GET, POST"})
        else:
            raise HttpError(404, f"no route for {path}")

    def _job(self, job_id: str) -> SweepJob:
        job = self.queue.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return job

    # -- handlers -------------------------------------------------------

    def _healthz(self) -> Dict[str, object]:
        return {
            "ok": True,
            "draining": self.draining,
            "uptime_s": round(time.time() - self.started_ts, 3),
            "active_jobs": self.queue.active,
        }

    def _metricz(self) -> Dict[str, object]:
        payload = {
            "service": {
                "uptime_s": round(time.time() - self.started_ts, 3),
                "draining": self.draining,
                "queue": self.queue.stats(),
                "limits": self.limiter.snapshot(),
            },
            "metrics": telemetry.metrics().flatten(),
        }
        payload.update(self.service.overview())
        return payload

    def _metricz_prom(self) -> str:
        """The same numbers as ``_metricz``, as Prometheus text."""
        stats = self.queue.stats()
        extra: Dict[str, float] = {
            "service.uptime_s": time.time() - self.started_ts,
            "service.draining": float(self.draining),
        }
        for key, value in stats.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                extra[f"service.queue.{key}"] = float(value)
        return prom.render_prometheus(telemetry.metrics().snapshot(),
                                      extra_gauges=extra)

    async def _submit(self, headers: Dict[str, str], body: bytes,
                      writer: asyncio.StreamWriter) -> None:
        if self.draining:
            raise HttpError(503, "service is draining; resubmit later",
                            {"Retry-After": str(DRAIN_RETRY_AFTER_S)})
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"request body is not JSON: {error}")
        request = normalize_request(payload)
        tenant = headers.get("x-api-key", "").strip() or "anonymous"
        # Coalescing precedes admission: attaching to an existing job
        # consumes neither rate tokens nor quota.
        existing = self.queue.jobs.get(self.service.request_key(request))
        if existing is None:
            allowed, reason, retry_after = self.limiter.admit(tenant)
            if not allowed:
                raise HttpError(
                    429, f"tenant {tenant!r} over {reason} limit",
                    {"Retry-After": str(max(1, int(retry_after + 0.999)))})
        # W3C-style trace propagation: a submitter carrying a
        # ``traceparent`` joins the job to its trace; otherwise the
        # queue mints a fresh root. Coalesced submits keep the first
        # submitter's trace, so the echoed traceparent may differ.
        trace = tracectx.parse_traceparent(headers.get("traceparent"))
        job, created = self.queue.submit(request, tenant=tenant, trace=trace)
        if created:
            self.limiter.job_started(tenant)
        descriptor = job.descriptor(include_result=job.finished)
        descriptor["coalesced"] = not created
        extra: Dict[str, str] = {}
        traceparent = job.traceparent()
        if traceparent is not None:
            extra["traceparent"] = traceparent
        await _send_json(writer, 200 if job.finished else 202, descriptor,
                         extra or None)

    async def _runs_list(self, query: Dict[str, list],
                         writer: asyncio.StreamWriter) -> None:
        raw = query.get("limit", ["20"])[0]
        try:
            limit: Optional[int] = None if raw in ("0", "all") else int(raw)
        except ValueError:
            raise HttpError(400, f"bad limit {raw!r}")
        (title, headers, rows), entries = self.service.runs_table(limit=limit)
        await _send_json(writer, 200, {
            "title": title, "headers": headers, "rows": rows,
            "entries": entries,
        })

    # -- SSE ------------------------------------------------------------

    async def _stream_job(self, job: SweepJob,
                          writer: asyncio.StreamWriter) -> None:
        """Replay a job's history, then stream live until it finishes."""
        await _send_sse_headers(writer)
        for event in list(job.events):
            await _send_sse_event(writer, event)
        if job.finished:
            return
        queue = self.queue.subscribe(job)
        try:
            while True:
                event = await self._next_event(queue)
                if event is None:
                    if job.finished or self._stopping():
                        return
                    await _send_sse_comment(writer, "keepalive")
                    continue
                await _send_sse_event(writer, event)
                if event.get("event") in ("done", "failed"):
                    return
        finally:
            self.queue.unsubscribe(queue, job)

    async def _stream_global(self, writer: asyncio.StreamWriter) -> None:
        """The dashboard feed: a snapshot, then every job's events."""
        await _send_sse_headers(writer)
        await _send_sse_event(writer, {
            "event": "snapshot",
            "jobs": self.queue.snapshot(),
            "health": self._healthz(),
        })
        queue = self.queue.subscribe(None)
        try:
            while not self._stopping():
                event = await self._next_event(queue)
                if event is None:
                    await _send_sse_comment(writer, "keepalive")
                    continue
                await _send_sse_event(writer, event)
        finally:
            self.queue.unsubscribe(queue, None)

    async def _next_event(self,
                          queue: asyncio.Queue) -> Optional[Dict[str, object]]:
        try:
            return await asyncio.wait_for(queue.get(), SSE_KEEPALIVE_S)
        except asyncio.TimeoutError:
            return None

    def _stopping(self) -> bool:
        return self._stop_event is not None and self._stop_event.is_set()


# -- wire helpers -------------------------------------------------------


async def _read_request(reader: asyncio.StreamReader,
                        ) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one request: ``(method, target, lowercase headers, body)``."""
    request_line = (await reader.readline()).decode("latin-1").strip()
    if not request_line:
        raise ConnectionError("empty request")
    try:
        method, target, _version = request_line.split(" ", 2)
    except ValueError:
        raise HttpError(400, f"malformed request line {request_line!r}")
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        line = (await reader.readline()).decode("latin-1")
        if line in ("\r\n", "\n", ""):
            break
        name, _sep, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many headers")
    length = int(headers.get("content-length", "0") or 0)
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"body over {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


async def _send_response(writer: asyncio.StreamWriter, status: int,
                         body: bytes, content_type: str,
                         extra: Optional[Mapping[str, str]] = None) -> None:
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    for name, value in (extra or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)
    await writer.drain()


async def _send_json(writer: asyncio.StreamWriter, status: int,
                     payload: Mapping[str, object],
                     extra: Optional[Mapping[str, str]] = None) -> None:
    body = json.dumps(payload, indent=2, default=str).encode()
    await _send_response(writer, status, body, "application/json", extra)


async def _send_sse_headers(writer: asyncio.StreamWriter) -> None:
    writer.write(b"HTTP/1.1 200 OK\r\n"
                 b"Content-Type: text/event-stream\r\n"
                 b"Cache-Control: no-cache\r\n"
                 b"Connection: close\r\n\r\n")
    await writer.drain()


async def _send_sse_event(writer: asyncio.StreamWriter,
                          event: Mapping[str, object]) -> None:
    kind = str(event.get("event", "message"))
    data = json.dumps(event, default=str)
    writer.write(f"event: {kind}\ndata: {data}\n\n".encode())
    await writer.drain()


async def _send_sse_comment(writer: asyncio.StreamWriter,
                            comment: str) -> None:
    writer.write(f": {comment}\n\n".encode())
    await writer.drain()


def serve(server: ServiceServer) -> None:
    """Run ``server`` on a fresh loop until drained (the CLI entrypoint)."""
    asyncio.run(server.serve_forever())


class BackgroundServer:
    """A :class:`ServiceServer` on a daemon thread, for tests and benches.

    Usage::

        with BackgroundServer(ServiceServer(port=0)) as background:
            url = background.url          # real ephemeral port
            ...
        # exiting the block stops the loop and joins the thread
    """

    def __init__(self, server: ServiceServer) -> None:
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._failure: Optional[BaseException] = None

    @property
    def url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service-http")
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("service did not start within 30s")
        if self._failure is not None:
            raise RuntimeError(
                f"service failed to start: {self._failure}")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    async def _main(self) -> None:
        try:
            await self.server.start()
        except BaseException as error:  # noqa: BLE001 - surfaced to start()
            self._failure = error
            self._started.set()
            return
        self._started.set()
        assert self.server._stop_event is not None
        await self.server._stop_event.wait()
        await self.server.stop()

    def drain(self) -> None:
        """Trigger graceful drain from the caller's thread."""
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self.server.request_drain)

    def join(self, timeout: float = 60.0) -> None:
        """Wait for the serve loop to exit (drain completion)."""
        assert self._thread is not None
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("service did not drain in time")

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None \
                and self._thread.is_alive():
            stop_event = self.server._stop_event

            def _set() -> None:
                if stop_event is not None:
                    stop_event.set()

            self._loop.call_soon_threadsafe(_set)
            self._thread.join(timeout=30)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
