"""The program container: a text segment, entry point, and initial data."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import AssemblyError, EmulationError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, WORD_SIZE


class Program:
    """An assembled program ready for emulation or simulation.

    The text segment starts at byte address 0; instruction *i* lives at
    byte address ``i * WORD_SIZE``. The data segment is a sparse mapping
    from byte address to initial word value (uninitialised memory reads
    as zero). ``labels`` maps symbolic names to byte addresses and is
    kept purely for diagnostics.
    """

    def __init__(
        self,
        text: Sequence[Instruction],
        entry: int = 0,
        data: Optional[Dict[int, int]] = None,
        labels: Optional[Dict[str, int]] = None,
        name: str = "program",
    ) -> None:
        if not text:
            raise AssemblyError("program has no instructions")
        self.text: List[Instruction] = list(text)
        self.data: Dict[int, int] = dict(data or {})
        self.labels: Dict[str, int] = dict(labels or {})
        self.name = name
        self.entry = entry
        self._validate()

    def _validate(self) -> None:
        limit = len(self.text) * WORD_SIZE
        if not 0 <= self.entry < limit or self.entry % WORD_SIZE:
            raise AssemblyError(f"entry point {self.entry} invalid")
        for index, inst in enumerate(self.text):
            if inst.target is not None:
                if not 0 <= inst.target < limit or inst.target % WORD_SIZE:
                    raise AssemblyError(
                        f"instruction {index} ({inst!r}) targets {inst.target}, "
                        f"outside text segment [0, {limit})"
                    )

    def __len__(self) -> int:
        return len(self.text)

    @property
    def text_limit(self) -> int:
        """One past the last valid instruction byte address."""
        return len(self.text) * WORD_SIZE

    def in_text(self, pc: int) -> bool:
        return 0 <= pc < self.text_limit and pc % WORD_SIZE == 0

    def fetch(self, pc: int) -> Instruction:
        """Return the instruction at byte address ``pc``."""
        if not self.in_text(pc):
            raise EmulationError(f"fetch from {pc}: outside text segment")
        return self.text[pc // WORD_SIZE]

    def address_of(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise AssemblyError(f"unknown label {label!r}") from None

    def static_counts(self) -> Dict[str, int]:
        """Count static instructions by opcode name (for workload tables)."""
        counts: Dict[str, int] = {}
        for inst in self.text:
            counts[inst.opcode.value] = counts.get(inst.opcode.value, 0) + 1
        return counts

    def disassemble(self, start: int = 0, count: Optional[int] = None) -> str:
        """Render a human-readable listing (for debugging and examples)."""
        address_to_label = {addr: name for name, addr in self.labels.items()}
        lines = []
        begin = start // WORD_SIZE
        end = len(self.text) if count is None else min(len(self.text), begin + count)
        for index in range(begin, end):
            pc = index * WORD_SIZE
            label = address_to_label.get(pc)
            if label:
                lines.append(f"{label}:")
            lines.append(f"  {pc:6d}: {self.text[index]!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, {len(self.text)} instructions, "
            f"{len(self.data)} data words)"
        )


def halted_on(inst: Instruction) -> bool:
    """True when ``inst`` terminates execution."""
    return inst.opcode is Opcode.HALT
