"""A compact virtual instruction set for execution-driven simulation.

The ISA is a mini-MIPS: 32 integer registers (r0 hard-wired to zero,
r29 the stack pointer, r31 the link register), word-granular memory, and
a control-flow repertoire that distinguishes every class the branch
predictor cares about — conditional branches, direct jumps, direct and
indirect calls, indirect jumps, and returns.
"""

from repro.isa.opcodes import (
    ControlClass,
    Opcode,
    NUM_REGS,
    REG_ZERO,
    REG_SP,
    REG_RA,
    WORD_SIZE,
)
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.isa.assembler import ProgramBuilder

__all__ = [
    "ControlClass",
    "Instruction",
    "NUM_REGS",
    "Opcode",
    "Program",
    "ProgramBuilder",
    "REG_RA",
    "REG_SP",
    "REG_ZERO",
    "WORD_SIZE",
]
