"""A two-pass label-resolving program builder.

The builder is the only way code in this repository creates programs:
the workload generator, the hand-written kernels and the tests all emit
through it, so target/operand validation lives in exactly one place.

Example:
    >>> b = ProgramBuilder("demo")
    >>> b.label("main")
    >>> b.li(1, 3)
    >>> b.jal("double")
    >>> b.halt()
    >>> b.label("double")
    >>> b.add(1, 1, 1)
    >>> b.ret()
    >>> program = b.build(entry="main")
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.errors import AssemblyError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, WORD_SIZE
from repro.isa.program import Program

#: A branch target: either a label name or an absolute byte address.
Target = Union[str, int]


class ProgramBuilder:
    """Accumulates instructions and labels, then assembles a Program."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._text: List[Tuple[Opcode, int, int, int, int, Optional[Target]]] = []
        self._labels: Dict[str, int] = {}
        self._data: Dict[int, Target] = {}

    # ------------------------------------------------------------------
    # Layout.

    @property
    def here(self) -> int:
        """Byte address of the next instruction to be emitted."""
        return len(self._text) * WORD_SIZE

    def label(self, name: str) -> int:
        """Define ``name`` at the current address and return that address."""
        if name in self._labels:
            raise AssemblyError(f"label {name!r} defined twice")
        self._labels[name] = self.here
        return self.here

    def fresh_label(self, stem: str) -> str:
        """Return a label name guaranteed not to collide with existing ones."""
        index = 0
        while f"{stem}_{index}" in self._labels:
            index += 1
        # Reserve the name so repeated calls with the same stem differ.
        name = f"{stem}_{index}"
        self._labels[name] = -1  # placeholder; overwritten by label()
        del self._labels[name]
        return name

    def put_data(self, address: int, value: Target) -> None:
        """Set an initial data-segment word.

        ``value`` may be a label name, in which case the word receives
        that label's address at build time (jump tables, function-pointer
        tables).
        """
        self._data[address] = value

    # ------------------------------------------------------------------
    # Emission primitives.

    def _emit(
        self,
        opcode: Opcode,
        rd: int = 0,
        rs: int = 0,
        rt: int = 0,
        imm: int = 0,
        target: Optional[Target] = None,
    ) -> int:
        pc = self.here
        self._text.append((opcode, rd, rs, rt, imm, target))
        return pc

    # ALU, register-register.
    def add(self, rd: int, rs: int, rt: int) -> int:
        return self._emit(Opcode.ADD, rd=rd, rs=rs, rt=rt)

    def sub(self, rd: int, rs: int, rt: int) -> int:
        return self._emit(Opcode.SUB, rd=rd, rs=rs, rt=rt)

    def and_(self, rd: int, rs: int, rt: int) -> int:
        return self._emit(Opcode.AND, rd=rd, rs=rs, rt=rt)

    def or_(self, rd: int, rs: int, rt: int) -> int:
        return self._emit(Opcode.OR, rd=rd, rs=rs, rt=rt)

    def xor(self, rd: int, rs: int, rt: int) -> int:
        return self._emit(Opcode.XOR, rd=rd, rs=rs, rt=rt)

    def sll(self, rd: int, rs: int, rt: int) -> int:
        return self._emit(Opcode.SLL, rd=rd, rs=rs, rt=rt)

    def srl(self, rd: int, rs: int, rt: int) -> int:
        return self._emit(Opcode.SRL, rd=rd, rs=rs, rt=rt)

    def slt(self, rd: int, rs: int, rt: int) -> int:
        return self._emit(Opcode.SLT, rd=rd, rs=rs, rt=rt)

    def mul(self, rd: int, rs: int, rt: int) -> int:
        return self._emit(Opcode.MUL, rd=rd, rs=rs, rt=rt)

    # ALU, register-immediate.
    def addi(self, rd: int, rs: int, imm: int) -> int:
        return self._emit(Opcode.ADDI, rd=rd, rs=rs, imm=imm)

    def andi(self, rd: int, rs: int, imm: int) -> int:
        return self._emit(Opcode.ANDI, rd=rd, rs=rs, imm=imm)

    def xori(self, rd: int, rs: int, imm: int) -> int:
        return self._emit(Opcode.XORI, rd=rd, rs=rs, imm=imm)

    def slli(self, rd: int, rs: int, imm: int) -> int:
        return self._emit(Opcode.SLLI, rd=rd, rs=rs, imm=imm)

    def srli(self, rd: int, rs: int, imm: int) -> int:
        return self._emit(Opcode.SRLI, rd=rd, rs=rs, imm=imm)

    def li(self, rd: int, imm: int) -> int:
        return self._emit(Opcode.LI, rd=rd, imm=imm)

    # Memory.
    def load(self, rd: int, rs: int, offset: int = 0) -> int:
        return self._emit(Opcode.LOAD, rd=rd, rs=rs, imm=offset)

    def store(self, rt: int, rs: int, offset: int = 0) -> int:
        return self._emit(Opcode.STORE, rt=rt, rs=rs, imm=offset)

    # Control flow.
    def beqz(self, rs: int, target: Target) -> int:
        return self._emit(Opcode.BEQZ, rs=rs, target=target)

    def bnez(self, rs: int, target: Target) -> int:
        return self._emit(Opcode.BNEZ, rs=rs, target=target)

    def bltz(self, rs: int, target: Target) -> int:
        return self._emit(Opcode.BLTZ, rs=rs, target=target)

    def bgez(self, rs: int, target: Target) -> int:
        return self._emit(Opcode.BGEZ, rs=rs, target=target)

    def j(self, target: Target) -> int:
        return self._emit(Opcode.J, target=target)

    def jal(self, target: Target) -> int:
        return self._emit(Opcode.JAL, target=target)

    def jr(self, rs: int) -> int:
        return self._emit(Opcode.JR, rs=rs)

    def jalr(self, rs: int) -> int:
        return self._emit(Opcode.JALR, rs=rs)

    def ret(self) -> int:
        return self._emit(Opcode.RET)

    def nop(self) -> int:
        return self._emit(Opcode.NOP)

    def halt(self) -> int:
        return self._emit(Opcode.HALT)

    # ------------------------------------------------------------------
    # Assembly.

    def _resolve(self, target: Target) -> int:
        if isinstance(target, str):
            try:
                return self._labels[target]
            except KeyError:
                raise AssemblyError(f"undefined label {target!r}") from None
        return target

    def build(self, entry: Target = 0) -> Program:
        """Resolve labels and return the assembled :class:`Program`."""
        if not self._text:
            raise AssemblyError(f"program {self.name!r} is empty")
        text = []
        for opcode, rd, rs, rt, imm, target in self._text:
            resolved = None if target is None else self._resolve(target)
            text.append(
                Instruction(opcode, rd=rd, rs=rs, rt=rt, imm=imm, target=resolved)
            )
        data = {address: self._resolve(value) for address, value in self._data.items()}
        return Program(
            text,
            entry=self._resolve(entry),
            data=data,
            labels=dict(self._labels),
            name=self.name,
        )
