"""The immutable instruction record.

Instructions are created once at assembly time and shared by every
simulator; the hot simulation loops read their attributes directly, so
the class uses ``__slots__`` and precomputes its control classification.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.opcodes import (
    ControlClass,
    Opcode,
    COND_BRANCHES,
    NUM_REGS,
    control_class,
)
from repro.errors import AssemblyError


class Instruction:
    """One decoded instruction.

    Fields not meaningful for an opcode are left at their defaults
    (``0`` / ``None``); the assembler is responsible for populating the
    meaningful ones.

    Attributes:
        opcode: the operation.
        rd: destination register index.
        rs: first source register index.
        rt: second source register index.
        imm: immediate operand (also the load/store displacement).
        target: byte address of a direct branch/jump/call target.
        control: precomputed :class:`ControlClass`.
    """

    __slots__ = ("opcode", "rd", "rs", "rt", "imm", "target", "control")

    def __init__(
        self,
        opcode: Opcode,
        rd: int = 0,
        rs: int = 0,
        rt: int = 0,
        imm: int = 0,
        target: Optional[int] = None,
    ) -> None:
        for name, reg in (("rd", rd), ("rs", rs), ("rt", rt)):
            if not 0 <= reg < NUM_REGS:
                raise AssemblyError(f"{name}={reg} out of range for {opcode}")
        self.opcode = opcode
        self.rd = rd
        self.rs = rs
        self.rt = rt
        self.imm = imm
        self.target = target
        self.control = control_class(opcode)

    @property
    def is_control(self) -> bool:
        return self.control is not ControlClass.NOT_CONTROL

    @property
    def is_cond_branch(self) -> bool:
        return self.opcode in COND_BRANCHES

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.STORE)

    def __repr__(self) -> str:
        parts = [self.opcode.value]
        if self.opcode in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
                           Opcode.XOR, Opcode.SLL, Opcode.SRL, Opcode.SLT,
                           Opcode.MUL):
            parts.append(f"r{self.rd}, r{self.rs}, r{self.rt}")
        elif self.opcode in (Opcode.ADDI, Opcode.ANDI, Opcode.XORI,
                             Opcode.SLLI, Opcode.SRLI):
            parts.append(f"r{self.rd}, r{self.rs}, {self.imm}")
        elif self.opcode is Opcode.LI:
            parts.append(f"r{self.rd}, {self.imm}")
        elif self.opcode is Opcode.LOAD:
            parts.append(f"r{self.rd}, {self.imm}(r{self.rs})")
        elif self.opcode is Opcode.STORE:
            parts.append(f"r{self.rt}, {self.imm}(r{self.rs})")
        elif self.is_cond_branch:
            parts.append(f"r{self.rs}, {self.target}")
        elif self.opcode in (Opcode.J, Opcode.JAL):
            parts.append(str(self.target))
        elif self.opcode in (Opcode.JR, Opcode.JALR):
            parts.append(f"r{self.rs}")
        return " ".join(parts)
