"""Opcode and control-class definitions."""

from __future__ import annotations

import enum

#: Number of architectural integer registers.
NUM_REGS = 32
#: r0 always reads as zero; writes to it are discarded.
REG_ZERO = 0
#: Stack-pointer register by software convention.
REG_SP = 29
#: Link register written by calls and read by returns.
REG_RA = 31
#: Bytes per instruction / memory word; PCs advance in WORD_SIZE steps.
WORD_SIZE = 4


class ControlClass(enum.Enum):
    """How the front end classifies an instruction for prediction.

    These are exactly the categories the paper's predictor distinguishes:
    conditional branches consult the direction predictor; taken direct
    jumps/calls hit the BTB (or compute their target in decode); indirect
    jumps/calls rely entirely on the BTB; returns consult the
    return-address stack.
    """

    NOT_CONTROL = "not-control"
    COND_BRANCH = "cond-branch"
    JUMP_DIRECT = "jump-direct"
    CALL_DIRECT = "call-direct"
    JUMP_INDIRECT = "jump-indirect"
    CALL_INDIRECT = "call-indirect"
    RETURN = "return"

    @property
    def is_control(self) -> bool:
        return self is not ControlClass.NOT_CONTROL

    @property
    def is_call(self) -> bool:
        return self in (ControlClass.CALL_DIRECT, ControlClass.CALL_INDIRECT)

    @property
    def is_return(self) -> bool:
        return self is ControlClass.RETURN

    @property
    def is_indirect(self) -> bool:
        return self in (
            ControlClass.JUMP_INDIRECT,
            ControlClass.CALL_INDIRECT,
            ControlClass.RETURN,
        )


class Opcode(enum.Enum):
    """Every instruction the emulator and pipeline understand."""

    # Register-register ALU.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SLT = "slt"
    MUL = "mul"
    # Register-immediate ALU.
    ADDI = "addi"
    ANDI = "andi"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    LI = "li"
    # Memory.
    LOAD = "load"
    STORE = "store"
    # Control flow.
    BEQZ = "beqz"
    BNEZ = "bnez"
    BLTZ = "bltz"
    BGEZ = "bgez"
    J = "j"
    JAL = "jal"
    JR = "jr"
    JALR = "jalr"
    RET = "ret"
    # Misc.
    NOP = "nop"
    HALT = "halt"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Conditional-branch opcodes.
COND_BRANCHES = frozenset({Opcode.BEQZ, Opcode.BNEZ, Opcode.BLTZ, Opcode.BGEZ})

#: Opcodes executed by the integer multiplier (longer latency).
MULTIPLY_OPS = frozenset({Opcode.MUL})

#: Maps opcode -> ControlClass.
CONTROL_CLASS_OF = {
    Opcode.BEQZ: ControlClass.COND_BRANCH,
    Opcode.BNEZ: ControlClass.COND_BRANCH,
    Opcode.BLTZ: ControlClass.COND_BRANCH,
    Opcode.BGEZ: ControlClass.COND_BRANCH,
    Opcode.J: ControlClass.JUMP_DIRECT,
    Opcode.JAL: ControlClass.CALL_DIRECT,
    Opcode.JR: ControlClass.JUMP_INDIRECT,
    Opcode.JALR: ControlClass.CALL_INDIRECT,
    Opcode.RET: ControlClass.RETURN,
}


def control_class(opcode: Opcode) -> ControlClass:
    """Return the predictor-facing classification of ``opcode``."""
    return CONTROL_CLASS_OF.get(opcode, ControlClass.NOT_CONTROL)
