"""Simulation results shared by the single-path and multipath CPUs."""

from __future__ import annotations

from typing import Dict, Optional

from repro.stats import StatGroup, format_stat_group


class SimResult:
    """Outcome of one cycle-level simulation run."""

    def __init__(self, group: StatGroup) -> None:
        self.group = group

    # -- headline numbers -------------------------------------------------
    @property
    def cycles(self) -> int:
        return self.group["cycles"].value  # type: ignore[attr-defined]

    @property
    def instructions(self) -> int:
        return self.group["committed"].value  # type: ignore[attr-defined]

    @property
    def ipc(self) -> float:
        cycles = self.cycles
        return self.instructions / cycles if cycles else 0.0

    # -- prediction quality ------------------------------------------------
    def rate(self, name: str) -> Optional[float]:
        if name in self.group:
            return self.group[name].value  # type: ignore[attr-defined]
        return None

    def counter(self, name: str) -> int:
        if name in self.group:
            return self.group[name].value  # type: ignore[attr-defined]
        return 0

    @property
    def return_accuracy(self) -> Optional[float]:
        return self.rate("return_accuracy")

    @property
    def cond_accuracy(self) -> Optional[float]:
        return self.rate("cond_accuracy")

    @property
    def indirect_accuracy(self) -> Optional[float]:
        return self.rate("indirect_accuracy")

    def as_dict(self) -> Dict[str, object]:
        """Flatten headline stats for reporting."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "cond_accuracy": self.cond_accuracy,
            "return_accuracy": self.return_accuracy,
            "indirect_accuracy": self.indirect_accuracy,
            "mispredictions": self.counter("mispredictions"),
            "squashed": self.counter("squashed"),
            "ras_overflows": self.counter("ras_overflows"),
            "ras_underflows": self.counter("ras_underflows"),
        }

    def __repr__(self) -> str:
        return (
            f"SimResult(instructions={self.instructions}, cycles={self.cycles}, "
            f"ipc={self.ipc:.3f})"
        )

    def pretty(self) -> str:
        return format_stat_group(self.group)
