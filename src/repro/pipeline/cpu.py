"""The single-path out-of-order CPU model.

Pipeline stages are evaluated back-to-front each cycle (commit,
writeback, issue, dispatch, fetch) so that results flow between stages
with realistic one-cycle boundaries.

Modelling notes (and their Table 1 / Section 3 counterparts):

* Fetch follows the *predicted* stream, fetches through not-taken
  branches and stops at taken ones. RAS pushes/pops happen here,
  speculatively — including on wrong paths.
* Dispatch executes instructions functionally against the live machine
  state, recording per-instruction undo logs; recovery rewinds them.
  This is the execution-driven equivalent of sim-outorder's
  dispatch-time execution.
* Branches resolve at writeback: the RAS is repaired from the branch's
  checkpoint (per the configured mechanism), younger instructions are
  squashed and fetch redirects.
* The branch predictor and BTB train at commit, as the paper notes
  SimpleScalar does.
* Memory disambiguation is perfect (addresses are known at dispatch),
  matching the paper's LSQ policy of letting stores pass only known
  non-conflicting references.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.bpred.predictor import FrontEndPredictor, Prediction
from repro.caches.hierarchy import MemoryHierarchy
from repro.config.machine import MachineConfig
from repro.emu.exec_core import execute
from repro.emu.machine_state import MachineState
from repro.errors import SimulationError
from repro.isa.opcodes import ControlClass, Opcode, WORD_SIZE
from repro.isa.program import Program
from repro.pipeline.inflight import InflightInstruction, exec_latency, source_regs
from repro.pipeline.results import SimResult
from repro.stats import StatGroup

#: Cycles without a commit before the simulator declares itself wedged.
_DEADLOCK_LIMIT = 20_000


class _FetchedInstruction:
    """One IFQ slot: fetched, predicted, waiting to dispatch."""

    __slots__ = ("pc", "inst", "prediction", "ready_cycle", "fetch_cycle")

    def __init__(self, pc, inst, prediction, ready_cycle, fetch_cycle) -> None:
        self.pc = pc
        self.inst = inst
        self.prediction = prediction
        self.ready_cycle = ready_cycle
        self.fetch_cycle = fetch_cycle


class SinglePathCPU:
    """Cycle-level simulation of one program on the Table 1 machine.

    The *reference* single-path engine: stages run back-to-front each
    cycle as readable methods, in-flight instructions are objects, and
    wrong paths execute for real under undo logs
    (docs/architecture.md §3). Written for clarity over speed — the
    columnar twin :class:`repro.fastsim.cycle.ColumnarCycleCPU` must
    stay bit-identical to this machine (enforced by
    :mod:`repro.fastsim.parity`), so behavioural changes belong here
    first, mirrored there, never in the twin alone.
    """

    def __init__(
        self,
        program: Program,
        config: Optional[MachineConfig] = None,
        max_instructions: Optional[int] = None,
        max_cycles: Optional[int] = None,
        commit_hook: Optional[Callable[[InflightInstruction], None]] = None,
    ) -> None:
        self.program = program
        self.config = config or MachineConfig()
        self.max_instructions = max_instructions
        self.max_cycles = max_cycles
        self.commit_hook = commit_hook

        self.state = MachineState(pc=program.entry, initial_memory=program.data)
        self.frontend = FrontEndPredictor(self.config.predictor)
        self.memory = MemoryHierarchy(self.config.memory)

        core = self.config.core
        self._ifq: Deque[_FetchedInstruction] = deque()
        self._ruu: Deque[InflightInstruction] = deque()
        self._lsq_count = 0
        self._last_writer: Dict[int, InflightInstruction] = {}
        self._fetch_pc = program.entry
        self._fetch_stalled_until = 0
        self._fetch_halted = False
        self._last_fetch_line: Optional[int] = None
        self._fetch_line_shift = (
            self.config.memory.l1i.line_bytes.bit_length() - 1
        )
        self._seq = 0
        self.cycle = 0
        self.done = False
        self._ifq_size = core.ifq_size
        self._ruu_size = core.ruu_size
        self._lsq_size = core.lsq_size

        self.stats = StatGroup("cpu")
        self._cycles_stat = self.stats.counter("cycles")
        self._committed = self.stats.counter("committed")
        self._fetched = self.stats.counter("fetched")
        self._dispatched = self.stats.counter("dispatched")
        self._squashed = self.stats.counter("squashed", "squashed wrong-path instructions")
        self._mispredictions = self.stats.counter("mispredictions")
        self._mispred_cond = self.stats.counter("mispredictions_cond")
        self._mispred_return = self.stats.counter("mispredictions_return")
        self._mispred_indirect = self.stats.counter("mispredictions_indirect")
        # Zero-commit cycles, attributed to the oldest obstacle. These
        # are diagnostics (where did the cycles go?), not used by the
        # timing model itself.
        self._stall_frontend = self.stats.counter(
            "stall_frontend", "no commit: window empty (fetch/redirect)")
        self._stall_memory = self.stats.counter(
            "stall_memory", "no commit: head is an in-flight memory op")
        self._stall_execute = self.stats.counter(
            "stall_execute", "no commit: head issued, still executing")
        self._stall_dependency = self.stats.counter(
            "stall_dependency", "no commit: head waits on operands")
        self._stall_issue = self.stats.counter(
            "stall_issue", "no commit: head ready but not yet issued")

    # ------------------------------------------------------------------
    # Stages (called back-to-front each cycle).

    def _commit(self) -> None:
        budget = self.config.core.commit_width
        ruu = self._ruu
        while budget and ruu and ruu[0].completed:
            entry = ruu.popleft()
            inst = entry.inst
            if inst.is_control:
                self.frontend.train_commit(
                    entry.pc, inst, entry.actual_taken,
                    entry.actual_next_pc, entry.prediction,
                )
            if entry.dest is not None and self._last_writer.get(entry.dest) is entry:
                del self._last_writer[entry.dest]
            if entry.is_load or entry.is_store:
                self._lsq_count -= 1
            entry.undo.clear()
            entry.commit_cycle = self.cycle
            self._committed.increment()
            if self.commit_hook is not None:
                self.commit_hook(entry)
            if entry.outcome.is_halt:
                self.done = True
                return
            budget -= 1

    def _writeback(self) -> None:
        cycle = self.cycle
        # Snapshot first: a recovery mutates the RUU mid-walk.
        resolvable = [
            entry for entry in self._ruu
            if entry.issued and not entry.completed
            and entry.complete_cycle <= cycle
        ]
        for entry in resolvable:  # oldest-first: recoveries must be ordered
            entry.completed = True
            prediction = entry.prediction
            if prediction is None:
                continue
            if entry.mispredicted:
                self._record_misprediction(entry)
                self.frontend.repair(prediction)
                self.frontend.release(prediction)
                self._recover(entry)
                # Everything younger was just squashed; stop resolving.
                break
            self.frontend.release(prediction)

    def _record_misprediction(self, entry: InflightInstruction) -> None:
        self._mispredictions.increment()
        control = entry.inst.control
        if control is ControlClass.COND_BRANCH:
            self._mispred_cond.increment()
        elif control is ControlClass.RETURN:
            self._mispred_return.increment()
        else:
            self._mispred_indirect.increment()

    def _recover(self, branch: InflightInstruction) -> None:
        """Squash younger than ``branch`` and redirect fetch.

        The RAS has already been repaired from the branch's checkpoint
        by the caller; this routine unwinds the speculative machine
        state (undo logs, youngest first) and resets the front end.
        """
        for fetched in self._ifq:
            if fetched.prediction is not None:
                self.frontend.release(fetched.prediction)
        self._ifq.clear()
        ruu = self._ruu
        while ruu and ruu[-1].seq > branch.seq:
            entry = ruu.pop()
            self.state.rewind(entry.undo)
            entry.squashed = True
            if entry.prediction is not None:
                self.frontend.release(entry.prediction)
            if entry.is_load or entry.is_store:
                self._lsq_count -= 1
            self._squashed.increment()
        self._last_writer = {
            entry.dest: entry for entry in ruu if entry.dest is not None
        }
        self._fetch_pc = branch.actual_next_pc
        self._fetch_halted = False
        self._fetch_stalled_until = self.cycle + 1
        self._last_fetch_line = None

    def _older_store_conflict(
        self, load: InflightInstruction
    ) -> Optional[InflightInstruction]:
        """Nearest older store to the same address, if any."""
        found_load = False
        nearest = None
        for entry in self._ruu:
            if entry is load:
                found_load = True
                break
            if entry.is_store and entry.mem_address == load.mem_address:
                nearest = entry
        return nearest if found_load else nearest

    def _issue(self) -> None:
        core = self.config.core
        budget = core.issue_width
        alus = core.int_alus
        muls = core.int_multipliers
        ports = core.memory_ports
        cycle = self.cycle
        for entry in self._ruu:
            if budget == 0:
                break
            if entry.issued or entry.dispatched_cycle >= cycle:
                continue
            if not entry.deps_completed():
                continue
            inst = entry.inst
            if entry.is_load:
                if ports == 0:
                    continue
                store = self._older_store_conflict(entry)
                if store is not None and not store.completed:
                    continue  # wait for the producing store
                if store is not None:
                    latency = 1  # store-to-load forwarding inside the LSQ
                else:
                    latency = self.memory.access_data(entry.mem_address)
                ports -= 1
            elif entry.is_store:
                if ports == 0:
                    continue
                self.memory.access_data(entry.mem_address, is_store=True)
                latency = 1
                ports -= 1
            elif inst.opcode is Opcode.MUL:
                if muls == 0:
                    continue
                muls -= 1
                latency = exec_latency(inst)
            else:
                if alus == 0:
                    continue
                alus -= 1
                latency = exec_latency(inst)
            entry.issued = True
            entry.issue_cycle = cycle
            entry.complete_cycle = cycle + latency
            budget -= 1

    def _dispatch(self) -> None:
        budget = self.config.core.decode_width
        cycle = self.cycle
        ifq = self._ifq
        while budget and ifq and ifq[0].ready_cycle <= cycle:
            if len(self._ruu) >= self._ruu_size:
                break
            fetched = ifq[0]
            inst = fetched.inst
            if inst.is_memory and self._lsq_count >= self._lsq_size:
                break
            ifq.popleft()
            self._seq += 1
            undo: List = []
            outcome = execute(inst, fetched.pc, self.state, undo)
            entry = InflightInstruction(
                self._seq, fetched.pc, inst, outcome,
                fetched.prediction, cycle,
            )
            entry.undo = undo
            entry.fetch_cycle = fetched.fetch_cycle
            prediction = fetched.prediction
            if prediction is not None and not outcome.is_halt:
                entry.mispredicted = prediction.target != outcome.next_pc
            for reg in source_regs(inst):
                writer = self._last_writer.get(reg)
                if writer is not None and not writer.completed:
                    entry.deps.append(writer)
            if entry.dest is not None:
                self._last_writer[entry.dest] = entry
            if inst.is_memory:
                self._lsq_count += 1
            self._ruu.append(entry)
            self._dispatched.increment()
            budget -= 1

    def _fetch(self) -> None:
        if self._fetch_halted or self.cycle < self._fetch_stalled_until:
            return
        core = self.config.core
        budget = core.fetch_width
        program = self.program
        while budget and len(self._ifq) < self._ifq_size:
            pc = self._fetch_pc
            if not program.in_text(pc):
                # Only a wrong path can wander out of the text segment;
                # fetch idles until the mispredicted branch resolves.
                self._fetch_halted = True
                return
            line = pc >> self._fetch_line_shift
            if line != self._last_fetch_line:
                latency = self.memory.fetch_instruction(pc)
                self._last_fetch_line = line
                if latency > self.config.memory.l1i.hit_latency:
                    # I-cache miss: the line arrives `latency` cycles on.
                    self._fetch_stalled_until = self.cycle + latency
                    return
            inst = program.fetch(pc)
            prediction: Optional[Prediction] = None
            next_pc = pc + WORD_SIZE
            if inst.is_control:
                prediction = self.frontend.predict(pc, inst)
                next_pc = prediction.target
            self._ifq.append(_FetchedInstruction(
                pc, inst, prediction,
                self.cycle + 1 + core.frontend_depth,
                self.cycle,
            ))
            self._fetched.increment()
            self._fetch_pc = next_pc
            budget -= 1
            if inst.opcode is Opcode.HALT:
                self._fetch_halted = True
                return
            if inst.is_control and next_pc != pc + WORD_SIZE:
                return  # stop fetching at a (predicted-)taken transfer

    # ------------------------------------------------------------------
    # Driver.

    def _attribute_stall(self) -> None:
        """Blame this zero-commit cycle on the oldest obstacle."""
        if not self._ruu:
            self._stall_frontend.increment()
            return
        head = self._ruu[0]
        if head.issued:
            if head.is_load or head.is_store:
                self._stall_memory.increment()
            else:
                self._stall_execute.increment()
        elif head.deps_completed():
            self._stall_issue.increment()
        else:
            self._stall_dependency.increment()

    def step(self) -> None:
        """Advance the machine by one cycle."""
        committed_before = self._committed.value
        self._commit()
        if not self.done:
            if self._committed.value == committed_before:
                self._attribute_stall()
            self._writeback()
            self._issue()
            self._dispatch()
            self._fetch()
        self.cycle += 1

    def run(self) -> SimResult:
        """Simulate until HALT commits (or a configured limit)."""
        last_commit_cycle = 0
        last_committed = 0
        while not self.done:
            if self.max_cycles is not None and self.cycle >= self.max_cycles:
                break
            if (self.max_instructions is not None
                    and self._committed.value >= self.max_instructions):
                break
            self.step()
            if self._committed.value != last_committed:
                last_committed = self._committed.value
                last_commit_cycle = self.cycle
            elif self.cycle - last_commit_cycle > _DEADLOCK_LIMIT:
                raise SimulationError(
                    f"no commit for {_DEADLOCK_LIMIT} cycles at cycle "
                    f"{self.cycle} (pc={self._fetch_pc}, "
                    f"ruu={len(self._ruu)}, ifq={len(self._ifq)})"
                )
        return self._finalize()

    def _finalize(self) -> SimResult:
        self._cycles_stat.increment(self.cycle - self._cycles_stat.value)
        group = self.stats
        # Mirror the front end's accuracy rates and RAS counters into
        # the result group so one object carries the whole story.
        for name in ("return_accuracy", "cond_accuracy", "indirect_accuracy"):
            source = self.frontend.stats[name]
            group.rate(name).record_many(source.hits, source.events)
        group.counter("returns_from_btb").increment(
            self.frontend.stats["returns_from_btb"].value)
        ras = self.frontend.ras
        if ras is not None:
            group.counter("ras_pushes").increment(ras.stats["pushes"].value)
            group.counter("ras_pops").increment(ras.stats["pops"].value)
            group.counter("ras_overflows").increment(ras.stats["overflows"].value)
            group.counter("ras_underflows").increment(ras.stats["underflows"].value)
        group.counter("l1i_misses").increment(self.memory.l1i.stats["misses"].value)
        group.counter("l1d_misses").increment(self.memory.l1d.stats["misses"].value)
        return SimResult(group)
