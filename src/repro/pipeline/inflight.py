"""In-flight instruction records and operand helpers."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bpred.predictor import Prediction
from repro.emu.exec_core import ExecOutcome
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, REG_RA

#: Execution latency by opcode (cycles in a functional unit); loads add
#: the cache latency on top of nothing (the cache *is* their latency).
_LATENCY = {
    Opcode.MUL: 3,
}
_DEFAULT_LATENCY = 1

#: Opcodes that read no registers at all.
_NO_SOURCES = frozenset({
    Opcode.LI, Opcode.J, Opcode.JAL, Opcode.NOP, Opcode.HALT,
})
#: Opcodes reading a single source in ``rs``.
_RS_ONLY = frozenset({
    Opcode.ADDI, Opcode.ANDI, Opcode.XORI, Opcode.SLLI, Opcode.SRLI,
    Opcode.LOAD, Opcode.BEQZ, Opcode.BNEZ, Opcode.BLTZ, Opcode.BGEZ,
    Opcode.JR, Opcode.JALR,
})
#: Opcodes writing ``rd``.
_RD_DEST = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SLL, Opcode.SRL, Opcode.SLT, Opcode.MUL,
    Opcode.ADDI, Opcode.ANDI, Opcode.XORI, Opcode.SLLI, Opcode.SRLI,
    Opcode.LI, Opcode.LOAD,
})


def source_regs(inst: Instruction) -> Tuple[int, ...]:
    """Architectural registers ``inst`` reads (r0 excluded: never waits)."""
    op = inst.opcode
    if op in _NO_SOURCES:
        return ()
    if op is Opcode.RET:
        regs: Tuple[int, ...] = (REG_RA,)
    elif op in _RS_ONLY:
        regs = (inst.rs,)
    elif op is Opcode.STORE:
        regs = (inst.rs, inst.rt)
    else:  # three-operand ALU
        regs = (inst.rs, inst.rt)
    return tuple(r for r in regs if r != 0)


def dest_reg(inst: Instruction) -> Optional[int]:
    """The register ``inst`` writes, or None."""
    op = inst.opcode
    if op in _RD_DEST:
        return inst.rd if inst.rd != 0 else None
    if op in (Opcode.JAL, Opcode.JALR):
        return REG_RA
    return None


def exec_latency(inst: Instruction) -> int:
    """Functional-unit occupancy in cycles (memory adds cache time)."""
    return _LATENCY.get(inst.opcode, _DEFAULT_LATENCY)


class InflightInstruction:
    """One RUU entry: everything between dispatch and commit."""

    __slots__ = (
        "seq", "pc", "inst", "outcome", "prediction", "undo",
        "deps", "dest", "mem_address", "is_load", "is_store",
        "dispatched_cycle", "issued", "complete_cycle", "completed",
        "squashed", "mispredicted", "path_id",
        # Multipath extensions (unused by the single-path CPU):
        "path", "store_value", "fork_child",
        # Timeline diagnostics (filled when the CPU records them):
        "fetch_cycle", "issue_cycle", "commit_cycle",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        inst: Instruction,
        outcome: ExecOutcome,
        prediction: Optional[Prediction],
        dispatched_cycle: int,
        path_id: int = 0,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.outcome = outcome
        self.prediction = prediction
        self.undo: List = []
        #: Producing InflightInstructions this one waits on.
        self.deps: List["InflightInstruction"] = []
        self.dest = dest_reg(inst)
        self.mem_address = outcome.mem_address
        self.is_load = inst.opcode is Opcode.LOAD
        self.is_store = inst.opcode is Opcode.STORE
        self.dispatched_cycle = dispatched_cycle
        self.issued = False
        self.complete_cycle = -1
        self.completed = False
        self.squashed = False
        #: Set at dispatch when the fetch-time prediction disagrees with
        #: the functionally computed next PC.
        self.mispredicted = False
        #: Owning path context (always 0 on a single-path machine).
        self.path_id = path_id
        #: Multipath: owning PathContext object.
        self.path = None
        #: Multipath: value a store will write at commit (stores are
        #: buffered in the LSQ; memory is architectural-only).
        self.store_value: Optional[int] = None
        #: Multipath: the child PathContext forked at this branch.
        self.fork_child = None
        #: Stage timestamps for timeline rendering (-1 = not recorded).
        self.fetch_cycle = -1
        self.issue_cycle = -1
        self.commit_cycle = -1

    @property
    def actual_next_pc(self) -> int:
        return self.outcome.next_pc

    @property
    def actual_taken(self) -> bool:
        return self.outcome.taken

    def deps_completed(self) -> bool:
        return all(dep.completed for dep in self.deps)

    def __repr__(self) -> str:
        flags = "".join((
            "I" if self.issued else "",
            "C" if self.completed else "",
            "S" if self.squashed else "",
            "M" if self.mispredicted else "",
        ))
        return f"Inflight(seq={self.seq}, pc={self.pc}, {self.inst.opcode}, {flags})"
