"""ASCII pipeline timelines (a SimpleScalar `-ptrace` analogue).

Collect committed instructions with a :class:`TimelineRecorder` hook,
then render a classic per-instruction stage diagram::

    pc=  120 addi   F---D.,,IX_____________C
    pc=  124 bnez       F---D.,,IX_________C

Legend: ``F`` fetch, ``D`` dispatch, ``I`` issue, ``X`` execution
cycles, ``C`` commit; ``-`` front-end latency, ``.`` waiting in the
window, ``_`` completed but waiting to retire in order.
"""

from __future__ import annotations

from typing import List, Optional

from repro.pipeline.inflight import InflightInstruction


class TimelineRecord:
    """Stage timestamps of one committed instruction."""

    __slots__ = ("pc", "opcode", "fetch", "dispatch", "issue",
                 "complete", "commit")

    def __init__(self, entry: InflightInstruction) -> None:
        self.pc = entry.pc
        self.opcode = entry.inst.opcode.value
        self.fetch = entry.fetch_cycle
        self.dispatch = entry.dispatched_cycle
        self.issue = entry.issue_cycle
        self.complete = entry.complete_cycle
        self.commit = entry.commit_cycle

    def __repr__(self) -> str:
        return (f"TimelineRecord(pc={self.pc}, {self.opcode}, "
                f"F{self.fetch} D{self.dispatch} I{self.issue} "
                f"W{self.complete} C{self.commit})")


class TimelineRecorder:
    """A commit hook that captures stage timestamps.

    Usage::

        recorder = TimelineRecorder(limit=200)
        cpu = SinglePathCPU(program, commit_hook=recorder)
        cpu.run()
        print(render_timeline(recorder.records))
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        self.records: List[TimelineRecord] = []
        self.limit = limit

    def __call__(self, entry: InflightInstruction) -> None:
        if self.limit is not None and len(self.records) >= self.limit:
            return
        self.records.append(TimelineRecord(entry))


def render_timeline(
    records: List[TimelineRecord],
    start: int = 0,
    count: int = 32,
    max_width: int = 90,
) -> str:
    """Render ``count`` records starting at ``start`` as ASCII rows."""
    window = records[start:start + count]
    if not window:
        return "(no timeline records)"
    base = min(record.fetch for record in window if record.fetch >= 0)
    lines = []
    for record in window:
        end = record.commit
        width = min(max_width, end - base + 1)
        cells = [" "] * width

        def put(cycle: int, char: str) -> None:
            index = cycle - base
            if 0 <= index < width:
                cells[index] = char

        def fill(lo: int, hi: int, char: str) -> None:
            for cycle in range(lo, hi):
                index = cycle - base
                if 0 <= index < width and cells[index] == " ":
                    cells[index] = char

        if record.fetch >= 0:
            put(record.fetch, "F")
            fill(record.fetch + 1, record.dispatch, "-")
        put(record.dispatch, "D")
        if record.issue >= 0:
            fill(record.dispatch + 1, record.issue, ".")
            put(record.issue, "I")
            fill(record.issue + 1, record.complete, "X")
            fill(record.complete, record.commit, "_")
        put(record.commit, "C")
        lines.append(
            f"pc={record.pc:6d} {record.opcode:6s} {''.join(cells)}")
    return "\n".join(lines)
