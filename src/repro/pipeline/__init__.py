"""The single-path out-of-order pipeline (HydraScalar analogue).

Execution-driven and cycle-level: instructions are fetched along the
*predicted* path, executed functionally at dispatch (with per-
instruction undo logs), issued out of order through an RUU/LSQ window,
and committed in order. Mispredicted branches resolve at writeback;
recovery rewinds the undo logs, restores the return-address stack
through the configured repair mechanism and redirects fetch. Wrong-path
instructions therefore really fetch, execute, touch the caches and
corrupt the RAS — the phenomenon the paper measures.
"""

from repro.pipeline.inflight import InflightInstruction, dest_reg, source_regs
from repro.pipeline.results import SimResult
from repro.pipeline.cpu import SinglePathCPU
from repro.pipeline.timeline import TimelineRecorder, render_timeline

__all__ = [
    "InflightInstruction",
    "SimResult",
    "SinglePathCPU",
    "TimelineRecorder",
    "dest_reg",
    "render_timeline",
    "source_regs",
]
