"""Multipath execution (the paper's Section 5).

Rather than predicting a low-confidence conditional branch, the
processor *forks*: both sides fetch, dispatch and execute concurrently,
sharing fetch/dispatch bandwidth and the RUU; when the branch resolves,
the losing side's RUU entries are selectively invalidated and retire as
bubbles (the paper's footnote 3). The return-address stack is the
interesting casualty: concurrent paths interleave pushes and pops on a
unified stack, corrupting it beyond what any checkpoint can repair —
the fix the paper lands on is one stack per path context, copied on
fork.
"""

from repro.multipath.path import PathContext
from repro.multipath.stacks import StackOrganizer
from repro.multipath.cpu import MultipathCPU

__all__ = ["MultipathCPU", "PathContext", "StackOrganizer"]
