"""Return-address-stack organisations under multipath execution.

The three designs the paper compares (Figure: "Relative performance for
different stack organizations under multipath execution"):

* ``UNIFIED`` — every path pushes and pops one shared stack, with the
  baseline repair mechanism. Contention between concurrent paths
  corrupts it regardless of checkpointing.
* ``UNIFIED_CHECKPOINT`` — the shared stack checkpoints its *entire*
  contents at every prediction. Repairs ordinary (non-forked)
  mispredictions perfectly, but fork contention remains unrepairable:
  restoring a fork branch's checkpoint would wipe the surviving
  sibling's legitimate pushes, and not restoring leaves the loser's.
* ``PER_PATH`` — each path context owns a private stack, copied from
  its parent at the fork. No contention, by construction.
"""

from __future__ import annotations

from typing import Optional

from repro.bpred.ras import BaseRas, make_ras
from repro.config.machine import BranchPredictorConfig
from repro.config.options import RepairMechanism, StackOrganization
from repro.multipath.path import PathContext


class StackOrganizer:
    """Creates and hands out stacks according to the organisation."""

    def __init__(
        self,
        organization: StackOrganization,
        predictor_config: BranchPredictorConfig,
    ) -> None:
        self.organization = organization
        self.config = predictor_config
        self._shared: Optional[BaseRas] = None
        if not predictor_config.ras_enabled:
            return
        if organization is StackOrganization.UNIFIED:
            self._shared = make_ras(
                predictor_config.ras_entries,
                predictor_config.ras_repair,
                predictor_config.self_checkpoint_overprovision,
                predictor_config.repair_contents_depth,
            )
        elif organization is StackOrganization.UNIFIED_CHECKPOINT:
            self._shared = make_ras(
                predictor_config.ras_entries,
                RepairMechanism.FULL_STACK,
            )

    @property
    def is_per_path(self) -> bool:
        return self.organization is StackOrganization.PER_PATH

    def root_stack(self) -> Optional[BaseRas]:
        """The stack for the initial path."""
        if not self.config.ras_enabled:
            return None
        if self.is_per_path:
            return make_ras(
                self.config.ras_entries,
                self.config.ras_repair,
                self.config.self_checkpoint_overprovision,
                self.config.repair_contents_depth,
            )
        return self._shared

    def stack_for_fork(self, parent: PathContext) -> Optional[BaseRas]:
        """The stack a child forked from ``parent`` should use."""
        if not self.config.ras_enabled:
            return None
        if self.is_per_path:
            assert parent.ras is not None
            return parent.ras.clone()
        return self._shared

    def repair_on_fork_resolution(self) -> bool:
        """Should a resolved *forked* branch restore its checkpoint?

        Never: with a unified stack the survivor's own pushes are
        interleaved after the checkpoint, so restoring destroys them
        (and not restoring leaves the loser's — the unrepairable
        contention the paper describes). With per-path stacks the loser
        simply discards its private copy and the survivor's needs no
        repair.
        """
        return False
