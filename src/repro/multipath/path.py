"""Path contexts: the per-path state a multipath processor must keep.

The paper lists exactly this inventory — PC, shadow register state,
and (its proposal) a return-address stack — noting that the stack is
"merely an additional element in the path context".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.bpred.ras import BaseRas


class PathContext:
    """One concurrently executing path."""

    __slots__ = (
        "path_id", "parent", "origin_seq", "alive", "lost", "dead",
        "regs", "fetch_pc", "fetch_halted", "fetch_stalled_until",
        "last_fetch_line", "ifq", "ras", "last_writer",
        "dispatch_enabled", "alternate_target",
    )

    def __init__(
        self,
        path_id: int,
        fetch_pc: int,
        regs: Optional[List[int]],
        parent: Optional["PathContext"] = None,
        ras: Optional[BaseRas] = None,
    ) -> None:
        self.path_id = path_id
        self.parent = parent
        #: Sequence number of the branch this path was forked at
        #: (-1 for the root). Set when that branch dispatches.
        self.origin_seq = -1
        self.alive = True
        #: True once this path lost its fork (zombie: in-flight entries
        #: may remain and its *continuation subtree* may still be alive,
        #: but the path itself neither fetches nor dispatches).
        self.lost = False
        #: True once the whole subtree is squashed. A dead path is gone
        #: for good; a merely `lost` one still anchors live descendants.
        self.dead = False
        #: Per-path architectural register file. None until the forking
        #: branch dispatches (the snapshot point).
        self.regs = regs
        self.fetch_pc = fetch_pc
        self.fetch_halted = False
        self.fetch_stalled_until = 0
        self.last_fetch_line: Optional[int] = None
        self.ifq: Deque = deque()
        #: This path's return-address stack (None when the organisation
        #: is unified — paths then share the organizer's single stack).
        self.ras = ras
        #: reg -> youngest in-flight producer visible to this path.
        self.last_writer: Dict[int, object] = {}
        #: A forked child may fetch immediately but cannot dispatch
        #: until its register snapshot exists.
        self.dispatch_enabled = regs is not None
        #: The non-predicted target this path is exploring (fork child
        #: book-keeping; None for the root and for primary-side paths).
        self.alternate_target: Optional[int] = None

    # ------------------------------------------------------------------

    def ancestry_horizons(self) -> Iterator[Tuple["PathContext", int]]:
        """Yield (ancestor, visibility_horizon_seq) pairs, self first.

        An in-flight instruction on ancestor A is program-order-visible
        to this path iff its seq is strictly below the horizon paired
        with A (the fork seq of the child on the chain toward us). The
        path itself has an unbounded horizon.
        """
        horizon = float("inf")
        path: Optional[PathContext] = self
        while path is not None:
            yield path, horizon  # type: ignore[misc]
            horizon = min(horizon, path.origin_seq)
            path = path.parent

    def can_see(self, other_path: "PathContext", seq: int) -> bool:
        """Is an instruction (on ``other_path``, at ``seq``) a program-
        order predecessor of this path's next instruction?"""
        for ancestor, horizon in self.ancestry_horizons():
            if ancestor is other_path:
                return seq < horizon
        return False

    def is_descendant_of(self, other: "PathContext") -> bool:
        path: Optional[PathContext] = self
        while path is not None:
            if path is other:
                return True
            path = path.parent
        return False

    def __repr__(self) -> str:
        status = "alive" if self.alive else ("lost" if self.lost else "dead")
        return f"Path({self.path_id}, pc={self.fetch_pc}, {status})"
