"""The multipath CPU model.

Differences from :class:`~repro.pipeline.SinglePathCPU`:

* **Path contexts.** Fetch and dispatch bandwidth are shared round-robin
  over alive paths; each path owns its register file, IFQ, and (under
  the per-path organisation) its return-address stack.
* **Forking.** A low-confidence conditional branch with a free context
  forks: the fetching path continues down the predicted side while a
  child explores the other side. The child fetches immediately (its
  fetch needs no register state — and its RAS copy is made at the fork)
  but dispatches only once the branch itself has dispatched, which is
  when the register snapshot exists.
* **Store buffering.** Stores write memory at *commit*, never at
  dispatch, so the one shared memory image is always architectural.
  Loads read architectural memory plus forwarding from program-order-
  older in-flight stores on their own ancestry. This is what lets many
  functional paths coexist without copy-on-write memory images.
* **Selective squash.** A resolved fork invalidates the losing side's
  RUU entries in place; they drain to the head and retire as bubbles,
  consuming commit bandwidth — the paper's footnote 3.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.bpred.confidence import JrsConfidenceEstimator
from repro.bpred.predictor import FrontEndPredictor, Prediction
from repro.caches.hierarchy import MemoryHierarchy
from repro.config.machine import MachineConfig
from repro.emu.exec_core import execute
from repro.errors import SimulationError
from repro.isa.opcodes import ControlClass, Opcode, WORD_SIZE
from repro.isa.program import Program
from repro.multipath.path import PathContext
from repro.multipath.stacks import StackOrganizer
from repro.pipeline.inflight import InflightInstruction, exec_latency, source_regs
from repro.pipeline.results import SimResult
from repro.stats import StatGroup

_DEADLOCK_LIMIT = 20_000


class _PathState:
    """Adapter giving :func:`repro.emu.execute` a per-path view.

    Registers come from the path's private file; memory reads see the
    architectural image plus in-flight store forwarding; memory writes
    are captured for commit-time application instead of performed.
    """

    __slots__ = ("regs", "_cpu", "_path", "captured_store")

    def __init__(self, cpu: "MultipathCPU") -> None:
        self.regs: List[int] = []
        self._cpu = cpu
        self._path: Optional[PathContext] = None
        self.captured_store: Optional[int] = None

    def bind(self, path: PathContext) -> "_PathState":
        self._path = path
        self.regs = path.regs
        self.captured_store = None
        return self

    def write_reg(self, index: int, value: int, log=None) -> None:
        if index == 0:
            return
        if log is not None:
            log.append(("r", index, self.regs[index]))
        self.regs[index] = value & ((1 << 64) - 1)

    def read_mem(self, address: int) -> int:
        return self._cpu._load_value(self._path, address)

    def write_mem(self, address: int, value: int, log=None) -> None:
        # Buffered until commit; recovery just drops the entry.
        self.captured_store = value & ((1 << 64) - 1)


class _FetchedInstruction:
    __slots__ = ("pc", "inst", "prediction", "ready_cycle", "forked_child")

    def __init__(self, pc, inst, prediction, ready_cycle) -> None:
        self.pc = pc
        self.inst = inst
        self.prediction = prediction
        self.ready_cycle = ready_cycle
        self.forked_child: Optional[PathContext] = None


class MultipathCPU:
    """Cycle-level multipath simulation (2-path, 4-path, ...).

    The *reference* multipath engine: path contexts fork at
    low-confidence branches, stacks follow the configured
    :class:`~repro.config.options.StackOrganization`, and resolution
    selectively squashes subtrees (docs/architecture.md §4). Like
    :class:`~repro.pipeline.cpu.SinglePathCPU` it is written
    stage-by-stage for readability; the work-list twin
    :class:`repro.fastsim.multipath.FastMultipathCPU` carries a
    bit-identical-counters contract against it, held by
    :mod:`repro.fastsim.parity`.
    """

    def __init__(
        self,
        program: Program,
        config: Optional[MachineConfig] = None,
        max_instructions: Optional[int] = None,
        max_cycles: Optional[int] = None,
        commit_hook: Optional[Callable[[InflightInstruction], None]] = None,
    ) -> None:
        self.program = program
        self.config = config or MachineConfig()
        self.max_instructions = max_instructions
        self.max_cycles = max_cycles
        self.commit_hook = commit_hook

        predictor_config = self.config.predictor
        import dataclasses
        # The facade must not own a stack of its own: stacks are handed
        # out by the organizer (shared or per path) and passed per call.
        facade_config = dataclasses.replace(predictor_config, ras_enabled=False)
        self.frontend = FrontEndPredictor(facade_config)
        self.organizer = StackOrganizer(
            self.config.multipath.stack_organization, predictor_config)
        self.confidence = JrsConfidenceEstimator(
            self.config.multipath.confidence_entries,
            self.config.multipath.confidence_threshold,
            self.config.multipath.confidence_max,
        )
        self.memory = MemoryHierarchy(self.config.memory)

        #: Architectural memory: committed stores only.
        self._arch_memory: Dict[int, int] = dict(program.data)
        root = PathContext(
            0, program.entry, [0] * 32, parent=None,
            ras=self.organizer.root_stack(),
        )
        self._paths: List[PathContext] = [root]
        self._next_path_id = 1
        self._ruu: Deque[InflightInstruction] = deque()
        self._lsq_count = 0
        self._seq = 0
        self.cycle = 0
        self.done = False
        self.final_regs: Optional[List[int]] = None
        self._exec_state = _PathState(self)
        self._rr_offset = 0
        self._fetch_line_shift = (
            self.config.memory.l1i.line_bytes.bit_length() - 1)

        self.stats = StatGroup("multipath_cpu")
        self._cycles_stat = self.stats.counter("cycles")
        self._committed = self.stats.counter("committed")
        self._fetched = self.stats.counter("fetched")
        self._dispatched = self.stats.counter("dispatched")
        self._squashed = self.stats.counter("squashed")
        self._bubbles = self.stats.counter("bubbles_retired")
        self._forks = self.stats.counter("forks")
        self._fork_saved = self.stats.counter(
            "fork_saved_mispredictions",
            "mispredictions whose other side was already executing")
        self._mispredictions = self.stats.counter("mispredictions")
        self._mispred_return = self.stats.counter("mispredictions_return")

    # ------------------------------------------------------------------
    # Helpers.

    def _alive_paths(self) -> List[PathContext]:
        return [p for p in self._paths if p.alive]

    def _load_value(self, path: PathContext, address: int) -> int:
        """Architectural memory + in-flight store forwarding for ``path``."""
        for entry in reversed(self._ruu):
            if (entry.is_store and not entry.squashed
                    and entry.mem_address == address
                    and path.can_see(entry.path, entry.seq)):
                return entry.store_value  # type: ignore[return-value]
        return self._arch_memory.get(address & ((1 << 64) - 1), 0)

    def _release_ifq(self, path: PathContext) -> None:
        """Drop a path's IFQ, releasing slots and pending fork children."""
        for fetched in path.ifq:
            if fetched.prediction is not None:
                self.frontend.release(fetched.prediction)
            if fetched.forked_child is not None:
                self._kill_subtree(fetched.forked_child)
        path.ifq.clear()

    def _kill_subtree(self, root: PathContext) -> None:
        """Mark ``root`` and every descendant dead; bubble their entries."""
        victims = [p for p in self._paths if p.is_descendant_of(root)]
        for victim in victims:
            if victim.dead:
                continue
            victim.alive = False
            victim.lost = True
            victim.dead = True
            self._release_ifq(victim)
        victim_set = set(id(v) for v in victims)
        for entry in self._ruu:
            if not entry.squashed and id(entry.path) in victim_set:
                self._squash_entry(entry, rewind=False)

    def _squash_entry(self, entry: InflightInstruction, rewind: bool) -> None:
        if rewind and entry.undo:
            # Applies to the owning path's private register file.
            for record in reversed(entry.undo):
                entry.path.regs[record[1]] = record[2]
        entry.undo.clear()
        entry.squashed = True
        if entry.prediction is not None:
            self.frontend.release(entry.prediction)
            entry.prediction = None
        if entry.fork_child is not None:
            self._kill_subtree(entry.fork_child)
            entry.fork_child = None
        self._squashed.increment()

    def _squash_after(self, path: PathContext, seq: int) -> None:
        """Squash ``path``'s entries younger than ``seq`` and every path
        forked from that region (but nothing forked earlier)."""
        self._release_ifq(path)
        for entry in reversed(self._ruu):  # youngest first: ordered rewind
            if entry.squashed or entry.seq <= seq:
                continue
            if entry.path is path:
                self._squash_entry(entry, rewind=True)
            # Descendants are handled through fork_child kills above.
        # Kill descendants forked from the squashed region (zombies
        # included: their continuation subtrees hang below them).
        for other in self._paths:
            if (other is not path and not other.dead
                    and other.is_descendant_of(path)
                    and other.origin_seq > seq):
                self._kill_subtree(other)
        self._rebuild_writer_map(path)

    def _rebuild_writer_map(self, path: PathContext) -> None:
        """Recompute reg -> youngest visible in-flight producer."""
        writers: Dict[int, InflightInstruction] = {}
        for entry in self._ruu:
            if (entry.squashed or entry.dest is None or entry.completed):
                continue
            if path.can_see(entry.path, entry.seq) or entry.path is path:
                writers[entry.dest] = entry
        path.last_writer = writers

    # ------------------------------------------------------------------
    # Stages.

    def _commit(self) -> None:
        budget = self.config.core.commit_width
        ruu = self._ruu
        while budget and ruu:
            entry = ruu[0]
            if entry.squashed:
                ruu.popleft()
                if entry.is_load or entry.is_store:
                    self._lsq_count -= 1
                self._bubbles.increment()
                budget -= 1
                continue
            if not entry.completed:
                return
            ruu.popleft()
            if entry.is_load or entry.is_store:
                self._lsq_count -= 1
            if entry.is_store:
                self._arch_memory[entry.mem_address] = entry.store_value
            inst = entry.inst
            if inst.is_control:
                self.frontend.train_commit(
                    entry.pc, inst, entry.actual_taken,
                    entry.actual_next_pc, entry.prediction)
                if inst.control is ControlClass.COND_BRANCH:
                    self.confidence.update(entry.pc, not entry.mispredicted)
            path = entry.path
            if path.last_writer.get(entry.dest) is entry:
                del path.last_writer[entry.dest]
            self._committed.increment()
            if self.commit_hook is not None:
                self.commit_hook(entry)
            if entry.outcome.is_halt:
                self.done = True
                self.final_regs = list(entry.path.regs)
                return
            budget -= 1

    def _writeback(self) -> None:
        cycle = self.cycle
        resolvable = [
            entry for entry in self._ruu
            if entry.issued and not entry.completed
            and entry.complete_cycle <= cycle
        ]
        for entry in resolvable:
            if entry.squashed:
                entry.completed = True
                continue
            entry.completed = True
            prediction = entry.prediction
            if prediction is None:
                continue
            if entry.fork_child is not None:
                self._resolve_fork(entry)
            elif entry.mispredicted:
                self._mispredictions.increment()
                if entry.inst.control is ControlClass.RETURN:
                    self._mispred_return.increment()
                self.frontend.repair(prediction)
                self.frontend.release(prediction)
                self._recover_in_path(entry)
            else:
                self.frontend.release(prediction)

    def _resolve_fork(self, entry: InflightInstruction) -> None:
        child = entry.fork_child
        entry.fork_child = None
        prediction = entry.prediction
        assert child is not None and prediction is not None
        if child.dead:
            # The child's subtree was killed by an older recovery; fall
            # back to a plain misprediction if the kept side was wrong.
            # (A merely `lost` child is different: its continuation
            # subtree is alive and resolution proceeds normally.)
            if entry.mispredicted:
                self._mispredictions.increment()
                self.frontend.repair(prediction)
                self.frontend.release(prediction)
                self._recover_in_path(entry)
            else:
                self.frontend.release(prediction)
            return
        self.frontend.release(prediction)
        if not entry.mispredicted:
            # Predicted side (the parent's own stream) was right.
            self._kill_subtree(child)
            return
        # The explored side was right: the parent's post-fork stream and
        # anything forked from it die; the child is the continuation.
        self._fork_saved.increment()
        path = entry.path
        # Temporarily detach the child so the region squash spares it.
        child_origin = child.origin_seq
        saved_parent = child.parent
        child.parent = None
        self._squash_after(path, entry.seq)
        child.parent = saved_parent
        child.origin_seq = child_origin
        # The parent path stops here: its continuation lives in `child`.
        path.alive = False
        path.lost = True
        path.fetch_halted = True
        # No RAS restore: see StackOrganizer.repair_on_fork_resolution.

    def _recover_in_path(self, branch: InflightInstruction) -> None:
        path = branch.path
        self._squash_after(path, branch.seq)
        path.alive = True
        path.lost = False
        path.fetch_pc = branch.actual_next_pc
        path.fetch_halted = False
        path.fetch_stalled_until = self.cycle + 1
        path.last_fetch_line = None

    def _older_visible_store(
        self, load: InflightInstruction, position: int
    ) -> Optional[InflightInstruction]:
        index = position - 1
        ruu = self._ruu
        while index >= 0:
            entry = ruu[index]
            if (entry.is_store and not entry.squashed
                    and entry.mem_address == load.mem_address
                    and load.path.can_see(entry.path, entry.seq)):
                return entry
            index -= 1
        return None

    def _issue(self) -> None:
        core = self.config.core
        budget = core.issue_width
        alus = core.int_alus
        muls = core.int_multipliers
        ports = core.memory_ports
        cycle = self.cycle
        for position, entry in enumerate(self._ruu):
            if budget == 0:
                break
            if (entry.issued or entry.squashed
                    or entry.dispatched_cycle >= cycle):
                continue
            if not entry.deps_completed():
                continue
            inst = entry.inst
            if entry.is_load:
                if ports == 0:
                    continue
                store = self._older_visible_store(entry, position)
                if store is not None and not store.completed:
                    continue
                latency = 1 if store is not None else (
                    self.memory.access_data(entry.mem_address))
                ports -= 1
            elif entry.is_store:
                if ports == 0:
                    continue
                self.memory.access_data(entry.mem_address, is_store=True)
                latency = 1
                ports -= 1
            elif inst.opcode is Opcode.MUL:
                if muls == 0:
                    continue
                muls -= 1
                latency = exec_latency(inst)
            else:
                if alus == 0:
                    continue
                alus -= 1
                latency = exec_latency(inst)
            entry.issued = True
            entry.complete_cycle = cycle + latency
            budget -= 1

    def _dispatch(self) -> None:
        budget = self.config.core.decode_width
        cycle = self.cycle
        candidates = [
            p for p in self._alive_paths()
            if p.dispatch_enabled and p.ifq and p.ifq[0].ready_cycle <= cycle
        ]
        if not candidates:
            return
        start = self._rr_offset % len(candidates)
        order = candidates[start:] + candidates[:start]
        progress = True
        while budget and progress:
            progress = False
            for path in order:
                if budget == 0:
                    break
                if not path.ifq or path.ifq[0].ready_cycle > cycle:
                    continue
                if len(self._ruu) >= self.config.core.ruu_size:
                    return
                fetched = path.ifq[0]
                inst = fetched.inst
                if inst.is_memory and self._lsq_count >= self.config.core.lsq_size:
                    continue
                path.ifq.popleft()
                self._dispatch_one(path, fetched)
                budget -= 1
                progress = True

    def _dispatch_one(self, path: PathContext, fetched) -> None:
        self._seq += 1
        inst = fetched.inst
        undo: List = []
        state = self._exec_state.bind(path)
        outcome = execute(inst, fetched.pc, state, undo)
        entry = InflightInstruction(
            self._seq, fetched.pc, inst, outcome, fetched.prediction,
            self.cycle, path_id=path.path_id,
        )
        entry.path = path
        entry.undo = undo
        if entry.is_store:
            entry.store_value = state.captured_store
        prediction = fetched.prediction
        if prediction is not None and not outcome.is_halt:
            entry.mispredicted = prediction.target != outcome.next_pc
        for reg in source_regs(inst):
            writer = path.last_writer.get(reg)
            if writer is not None and not writer.completed and not writer.squashed:
                entry.deps.append(writer)
        if entry.dest is not None:
            path.last_writer[entry.dest] = entry
        if inst.is_memory:
            self._lsq_count += 1
        child = fetched.forked_child
        if child is not None:
            if child.alive:
                # The fork's register snapshot exists now.
                child.regs = list(path.regs)
                child.origin_seq = entry.seq
                child.dispatch_enabled = True
                child.last_writer = dict(path.last_writer)
                entry.fork_child = child
            else:
                entry.fork_child = None
        self._ruu.append(entry)
        self._dispatched.increment()

    def _maybe_fork(
        self, path: PathContext, fetched: _FetchedInstruction
    ) -> None:
        """Fork at a low-confidence conditional branch, context permitting."""
        inst = fetched.inst
        if inst.control is not ControlClass.COND_BRANCH:
            return
        if len(self._alive_paths()) >= self.config.multipath.max_paths:
            return
        if not self.confidence.is_low_confidence(fetched.pc):
            return
        prediction = fetched.prediction
        assert prediction is not None
        alternate = (fetched.pc + WORD_SIZE if prediction.taken
                     else inst.target)
        if alternate is None or not self.program.in_text(alternate):
            return
        child = PathContext(
            self._next_path_id, alternate, regs=None, parent=path,
            ras=self.organizer.stack_for_fork(path),
        )
        child.dispatch_enabled = False
        child.alternate_target = alternate
        self._next_path_id += 1
        self._paths.append(child)
        fetched.forked_child = child
        self._forks.increment()

    def _fetch(self) -> None:
        core = self.config.core
        budget = core.fetch_width
        paths = self._alive_paths()
        if not paths:
            return
        self._rr_offset += 1
        start = self._rr_offset % len(paths)
        order = paths[start:] + paths[:start]
        for path in order:
            if budget == 0:
                return
            budget = self._fetch_path(path, budget)

    def _fetch_path(self, path: PathContext, budget: int) -> int:
        if path.fetch_halted or self.cycle < path.fetch_stalled_until:
            return budget
        program = self.program
        while budget and len(path.ifq) < self.config.core.ifq_size:
            pc = path.fetch_pc
            if not program.in_text(pc):
                path.fetch_halted = True
                return budget
            line = pc >> self._fetch_line_shift
            if line != path.last_fetch_line:
                latency = self.memory.fetch_instruction(pc)
                path.last_fetch_line = line
                if latency > self.config.memory.l1i.hit_latency:
                    path.fetch_stalled_until = self.cycle + latency
                    return budget
            inst = program.fetch(pc)
            prediction: Optional[Prediction] = None
            next_pc = pc + WORD_SIZE
            if inst.is_control:
                prediction = self.frontend.predict(pc, inst, ras=path.ras)
                next_pc = prediction.target
            fetched = _FetchedInstruction(
                pc, inst, prediction,
                self.cycle + 1 + self.config.core.frontend_depth,
            )
            if prediction is not None:
                self._maybe_fork(path, fetched)
            path.ifq.append(fetched)
            self._fetched.increment()
            path.fetch_pc = next_pc
            budget -= 1
            if inst.opcode is Opcode.HALT:
                path.fetch_halted = True
                return budget
            if inst.is_control and next_pc != pc + WORD_SIZE:
                return budget  # stop this path at a taken transfer
        return budget

    # ------------------------------------------------------------------
    # Driver.

    def step(self) -> None:
        self._commit()
        if not self.done:
            self._writeback()
            self._issue()
            self._dispatch()
            self._fetch()
        self.cycle += 1

    def run(self) -> SimResult:
        last_commit_cycle = 0
        last_committed = 0
        while not self.done:
            if self.max_cycles is not None and self.cycle >= self.max_cycles:
                break
            if (self.max_instructions is not None
                    and self._committed.value >= self.max_instructions):
                break
            self.step()
            if self._committed.value != last_committed:
                last_committed = self._committed.value
                last_commit_cycle = self.cycle
            elif self.cycle - last_commit_cycle > _DEADLOCK_LIMIT:
                raise SimulationError(
                    f"multipath: no commit for {_DEADLOCK_LIMIT} cycles at "
                    f"cycle {self.cycle} (paths={self._paths!r})"
                )
            # Prune long-dead paths with no in-flight entries.
            if self.cycle % 512 == 0:
                self._prune_paths()
        return self._finalize()

    def _prune_paths(self) -> None:
        """Collapse drained zombies out of ancestry chains, drop corpses.

        A fork the parent loses leaves it as a zombie anchoring its
        surviving child; without splicing, a long run accumulates an
        unbounded ancestor chain and `can_see` walks slow down. Once a
        zombie has no in-flight entries its visibility no longer
        matters, so its child can adopt the zombie's parent — taking the
        *older* fork seq as its horizon, which preserves visibility into
        the grandparent exactly.
        """
        inflight = {id(entry.path) for entry in self._ruu}
        for path in self._paths:
            while True:
                parent = path.parent
                if (parent is None or parent.alive
                        or id(parent) in inflight):
                    break
                path.origin_seq = (
                    parent.origin_seq if path.origin_seq == -1
                    else min(path.origin_seq, parent.origin_seq))
                path.parent = parent.parent
        referenced = set()
        for path in self._paths:
            if path.alive or id(path) in inflight:
                node = path
                while node is not None:
                    referenced.add(id(node))
                    node = node.parent
        self._paths = [p for p in self._paths if id(p) in referenced]

    def _finalize(self) -> SimResult:
        self._cycles_stat.increment(self.cycle - self._cycles_stat.value)
        group = self.stats
        for name in ("return_accuracy", "cond_accuracy", "indirect_accuracy"):
            source = self.frontend.stats[name]
            group.rate(name).record_many(source.hits, source.events)
        stacks = []
        if self.organizer.is_per_path:
            stacks = [p.ras for p in self._paths if p.ras is not None]
        elif self.organizer.root_stack() is not None:
            stacks = [self.organizer.root_stack()]
        overflow = sum(s.stats["overflows"].value for s in stacks)
        underflow = sum(s.stats["underflows"].value for s in stacks)
        group.counter("ras_overflows").increment(overflow)
        group.counter("ras_underflows").increment(underflow)
        return SimResult(group)
