"""The SMT front-end interleaving model.

Fidelity level matches :mod:`repro.fastsim`: each thread executes its
program functionally in its own machine state; predictor structures are
shared (as in a real SMT front end); each thread's mispredictions
trigger a bounded wrong-path replay that pushes/pops the RAS it uses.

The experiment knob is the stack organisation:

* **shared** — one RAS for all threads. Interleaved calls and returns
  from unrelated threads shred the LIFO discipline; worse, repairing a
  checkpoint after thread T's misprediction rolls back pushes other
  threads performed in between. Both effects are fundamental, not
  modelling artefacts — they are why Hily & Seznec call per-thread
  stacks a necessity.
* **per-thread** — one RAS per hardware context; each thread behaves
  like a single-threaded machine.

Threads may run the same program (homogeneous SMT, the default in the
benches: predictor-table aliasing is then constructive and the isolated
variable is stack contention) or different programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bpred.predictor import FrontEndPredictor
from repro.bpred.ras import BaseRas, make_ras
from repro.config.machine import BranchPredictorConfig
from repro.emu.exec_core import execute
from repro.emu.machine_state import MachineState
from repro.errors import ConfigError, EmulationError
from repro.isa.opcodes import WORD_SIZE
from repro.isa.program import Program


@dataclass
class SmtThreadResult:
    """Per-thread prediction outcome."""

    thread: int
    instructions: int
    returns: int
    return_hits: int
    mispredictions: int

    @property
    def return_accuracy(self) -> Optional[float]:
        if self.returns == 0:
            return None
        return self.return_hits / self.returns


class SmtResult:
    """Aggregate over all threads."""

    def __init__(self, threads: List[SmtThreadResult]) -> None:
        self.threads = threads

    @property
    def instructions(self) -> int:
        return sum(t.instructions for t in self.threads)

    @property
    def returns(self) -> int:
        return sum(t.returns for t in self.threads)

    @property
    def return_accuracy(self) -> Optional[float]:
        returns = self.returns
        if returns == 0:
            return None
        return sum(t.return_hits for t in self.threads) / returns

    def __repr__(self) -> str:
        shown = ("n/a" if self.return_accuracy is None
                 else f"{self.return_accuracy:.4f}")
        return (f"SmtResult(threads={len(self.threads)}, "
                f"n={self.instructions}, ret_acc={shown})")


class _ThreadContext:
    __slots__ = ("program", "state", "pc", "ras", "halted",
                 "instructions", "returns", "return_hits", "mispredictions")

    def __init__(self, program: Program, ras: Optional[BaseRas]) -> None:
        self.program = program
        self.state = MachineState(pc=program.entry,
                                  initial_memory=program.data)
        self.pc = program.entry
        self.ras = ras
        self.halted = False
        self.instructions = 0
        self.returns = 0
        self.return_hits = 0
        self.mispredictions = 0


class SmtFrontEndSim:
    """Round-robin interleaving of N threads through one front end."""

    def __init__(
        self,
        programs: Sequence[Program],
        predictor_config: Optional[BranchPredictorConfig] = None,
        per_thread_stacks: bool = True,
        interleave_quantum: int = 4,
        wrong_path_instructions: int = 16,
        max_instructions_per_thread: int = 50_000_000,
    ) -> None:
        if not programs:
            raise ConfigError("SMT needs at least one thread")
        if interleave_quantum < 1:
            raise ConfigError("interleave_quantum must be >= 1")
        config = predictor_config or BranchPredictorConfig()
        import dataclasses
        # The facade's own stack must not exist: stacks are owned here.
        self.frontend = FrontEndPredictor(
            dataclasses.replace(config, ras_enabled=False))
        self.config = config
        self.per_thread_stacks = per_thread_stacks
        self.quantum = interleave_quantum
        self.wrong_path_instructions = wrong_path_instructions
        self.max_per_thread = max_instructions_per_thread

        def new_stack() -> Optional[BaseRas]:
            if not config.ras_enabled:
                return None
            return make_ras(config.ras_entries, config.ras_repair,
                            config.self_checkpoint_overprovision,
                            config.repair_contents_depth)

        shared = None if per_thread_stacks else new_stack()
        self._threads = [
            _ThreadContext(
                program, new_stack() if per_thread_stacks else shared)
            for program in programs
        ]
        self.shared_stack = shared

    # ------------------------------------------------------------------

    def _walk_wrong_path(self, thread: _ThreadContext, start_pc: int) -> None:
        """Bounded front-end walk down the predicted wrong path."""
        program = thread.program
        frontend = self.frontend
        pc = start_pc
        pending = []
        for _ in range(self.wrong_path_instructions):
            if not program.in_text(pc):
                break
            inst = program.fetch(pc)
            if inst.opcode.value == "halt":
                break
            if inst.is_control:
                prediction = frontend.predict(pc, inst, ras=thread.ras)
                pending.append(prediction)
                pc = prediction.target
            else:
                pc += WORD_SIZE
        for prediction in pending:
            frontend.release(prediction)

    def _step_thread(self, thread: _ThreadContext) -> None:
        """Advance one thread by one architectural instruction."""
        program = thread.program
        frontend = self.frontend
        pc = thread.pc
        inst = program.fetch(pc)
        prediction = None
        if inst.is_control:
            prediction = frontend.predict(pc, inst, ras=thread.ras)
        outcome = execute(inst, pc, thread.state)
        thread.instructions += 1
        if outcome.is_halt:
            thread.halted = True
            if prediction is not None:
                frontend.release(prediction)
            return
        if prediction is not None:
            if inst.control.is_return:
                thread.returns += 1
                if prediction.target == outcome.next_pc:
                    thread.return_hits += 1
            if prediction.target != outcome.next_pc:
                thread.mispredictions += 1
                self._walk_wrong_path(thread, prediction.target)
                # Repair restores the stack this thread predicted with —
                # on a shared stack this also rolls back other threads'
                # interleaved pushes: the fundamental SMT hazard.
                frontend.repair(prediction)
            frontend.train_commit(
                pc, inst, outcome.taken, outcome.next_pc, prediction)
            frontend.release(prediction)
        thread.pc = outcome.next_pc

    def run(self) -> SmtResult:
        """Interleave all threads to completion."""
        threads = self._threads
        while True:
            progressed = False
            for thread in threads:
                if thread.halted:
                    continue
                if thread.instructions >= self.max_per_thread:
                    raise EmulationError(
                        "SMT watchdog: thread exceeded instruction cap")
                for _ in range(self.quantum):
                    if thread.halted:
                        break
                    self._step_thread(thread)
                progressed = True
            if not progressed:
                break
        return SmtResult([
            SmtThreadResult(
                index, thread.instructions, thread.returns,
                thread.return_hits, thread.mispredictions)
            for index, thread in enumerate(threads)
        ])
