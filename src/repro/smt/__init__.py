"""Simultaneous multithreading and the return-address stack.

The paper's related work cites Hily & Seznec: in an SMT processor,
"because calls and returns from different threads can be interleaved,
they find per-thread stacks are a necessity" — the same contention
structure as multipath execution, arising between *architected* threads
instead of speculative paths.

:class:`SmtFrontEndSim` interleaves several hardware threads through
one front end (fast-model fidelity: functional per-thread execution,
bounded wrong-path replay) with either one shared return-address stack
or one per thread, reproducing that claim quantitatively (ablation A9).
"""

from repro.smt.frontend import SmtFrontEndSim, SmtResult, SmtThreadResult

__all__ = ["SmtFrontEndSim", "SmtResult", "SmtThreadResult"]
