"""A small deterministic PRNG for workload generation.

We avoid :mod:`random` so that generated programs are bit-identical
across Python versions and platforms: reproducibility of the *inputs*
is as important as reproducibility of the results.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, TypeVar

_MASK64 = (1 << 64) - 1
_MULTIPLIER = 6364136223846793005
_INCREMENT = 1442695040888963407

T = TypeVar("T")


class DeterministicRng:
    """A 64-bit LCG with convenience sampling helpers."""

    __slots__ = ("state",)

    def __init__(self, seed: int) -> None:
        self.state = (seed ^ 0x9E3779B97F4A7C15) & _MASK64
        # Warm up so nearby seeds diverge immediately.
        for _ in range(4):
            self._next()

    def _next(self) -> int:
        self.state = (self.state * _MULTIPLIER + _INCREMENT) & _MASK64
        return self.state

    def bits(self, count: int) -> int:
        """Return ``count`` pseudo-random bits (uses the high-quality bits)."""
        return self._next() >> (64 - count)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.bits(48) % span

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self.bits(53) / (1 << 53)

    def chance(self, probability: float) -> bool:
        """Bernoulli trial."""
        return self.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randint(0, len(items) - 1)]

    def weighted_choice(self, weighted_items: Sequence[Tuple[T, float]]) -> T:
        """Pick an item with probability proportional to its weight."""
        total = sum(weight for _, weight in weighted_items)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        point = self.random() * total
        running = 0.0
        for item, weight in weighted_items:
            running += weight
            if point < running:
                return item
        return weighted_items[-1][0]

    def shuffle(self, items: List[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        for index in range(len(items) - 1, 0, -1):
            other = self.randint(0, index)
            items[index], items[other] = items[other], items[index]

    def sample_indices(self, population: int, count: int) -> List[int]:
        """Return ``count`` distinct indices from range(population)."""
        if count > population:
            raise ValueError("sample larger than population")
        indices = list(range(population))
        self.shuffle(indices)
        return indices[:count]
