"""Hand-written micro-kernels.

These tiny programs have fully understood behaviour, which makes them
the right vehicles for unit tests and for the worked examples: the
recursive kernels stress RAS depth, the mutual-recursion kernel stresses
call/return pairing, and the dispatch kernel stresses indirect jumps.
"""

from __future__ import annotations

from repro.isa.assembler import ProgramBuilder
from repro.isa.program import Program

_SP = 29
_RA = 31
_STACK_BASE = 0x80000


def loop_sum_kernel(iterations: int = 100) -> Program:
    """Sum 1..iterations in a counted loop (r1 holds the result)."""
    b = ProgramBuilder("loop_sum")
    b.label("main")
    b.li(1, 0)            # accumulator
    b.li(2, iterations)   # counter
    b.label("top")
    b.add(1, 1, 2)
    b.addi(2, 2, -1)
    b.bnez(2, "top")
    b.halt()
    return b.build(entry="main")


def fibonacci_kernel(n: int = 10) -> Program:
    """Doubly recursive fib(n); the result ends in r2.

    Every level performs two calls and two returns, so the RAS sees a
    dense, deep push/pop pattern — overflow territory for small stacks.
    """
    b = ProgramBuilder("fibonacci")
    b.label("main")
    b.li(_SP, _STACK_BASE)
    b.li(4, n)          # argument
    b.jal("fib")
    b.halt()

    # fib(n in r4) -> r2
    b.label("fib")
    b.li(2, 1)
    b.addi(5, 4, -2)
    b.bltz(5, "fib_done")      # n < 2 -> 1
    b.addi(_SP, _SP, -12)
    b.store(_RA, _SP, 0)
    b.store(4, _SP, 4)
    b.addi(4, 4, -1)
    b.jal("fib")               # fib(n-1)
    b.store(2, _SP, 8)
    b.load(4, _SP, 4)
    b.addi(4, 4, -2)
    b.jal("fib")               # fib(n-2)
    b.load(3, _SP, 8)
    b.add(2, 2, 3)
    b.load(4, _SP, 4)
    b.load(_RA, _SP, 0)
    b.addi(_SP, _SP, 12)
    b.label("fib_done")
    b.ret()
    return b.build(entry="main")


def mutual_recursion_kernel(depth: int = 30) -> Program:
    """Two functions calling each other down to ``depth`` (r1 counts calls)."""
    b = ProgramBuilder("mutual_recursion")
    b.label("main")
    b.li(_SP, _STACK_BASE)
    b.li(1, 0)
    b.li(4, depth)
    b.jal("even_step")
    b.halt()

    for name, other in (("even_step", "odd_step"), ("odd_step", "even_step")):
        b.label(name)
        b.addi(1, 1, 1)
        b.beqz(4, f"{name}_out")
        b.addi(_SP, _SP, -4)
        b.store(_RA, _SP, 0)
        b.addi(4, 4, -1)
        b.jal(other)
        b.load(_RA, _SP, 0)
        b.addi(_SP, _SP, 4)
        b.label(f"{name}_out")
        b.ret()
    return b.build(entry="main")


def stack_stress_kernel(depth: int = 64, repeats: int = 8) -> Program:
    """A single-chain recursion to exactly ``depth``, repeated.

    Designed to overflow any RAS shallower than ``depth``; used by the
    stack-size sensitivity tests (the paper's overflow discussion).
    """
    b = ProgramBuilder("stack_stress")
    b.label("main")
    b.li(_SP, _STACK_BASE)
    b.li(2, repeats)
    b.label("again")
    b.li(4, depth)
    b.jal("dive")
    b.addi(2, 2, -1)
    b.bnez(2, "again")
    b.halt()

    b.label("dive")
    b.beqz(4, "dive_out")
    b.addi(_SP, _SP, -4)
    b.store(_RA, _SP, 0)
    b.addi(4, 4, -1)
    b.jal("dive")
    b.load(_RA, _SP, 0)
    b.addi(_SP, _SP, 4)
    b.label("dive_out")
    b.ret()
    return b.build(entry="main")


def dispatch_kernel(iterations: int = 200, table_size: int = 8) -> Program:
    """An interpreter-style dispatch loop through a jump table.

    Each iteration advances an in-register LCG, indexes a table of case
    handlers and jumps indirectly — a stream of hard-to-predict
    JUMP_INDIRECTs with calls inside some handlers.
    """
    if table_size & (table_size - 1):
        raise ValueError("table_size must be a power of two")
    table_base = 0x40000
    b = ProgramBuilder("dispatch")
    b.label("main")
    b.li(_SP, _STACK_BASE)
    b.li(20, 0x2545F4914F6CDD1D)   # LCG state
    b.li(21, 6364136223846793005)  # multiplier
    b.li(2, iterations)
    b.label("loop")
    b.mul(20, 20, 21)
    b.addi(20, 20, 1442695040888963407)
    b.srli(22, 20, 33)
    b.andi(22, 22, table_size - 1)
    b.slli(22, 22, 2)
    b.addi(22, 22, table_base)
    b.load(22, 22, 0)
    b.jr(22)
    for case in range(table_size):
        b.label(f"case_{case}")
        b.put_data(table_base + case * 4, f"case_{case}")
        b.addi(1, 1, case)
        if case % 3 == 0:
            b.jal("helper")
        b.j("join")
    b.label("join")
    b.addi(2, 2, -1)
    b.bnez(2, "loop")
    b.halt()

    b.label("helper")
    b.addi(3, 3, 1)
    b.ret()
    return b.build(entry="main")


def hanoi_kernel(disks: int = 7) -> Program:
    """Towers of Hanoi: doubly recursive, move count in r1.

    Depth reaches ``disks`` with two recursive calls per level —
    2^disks - 1 moves, each a pair of call/return crossings.
    """
    b = ProgramBuilder("hanoi")
    b.label("main")
    b.li(_SP, _STACK_BASE)
    b.li(1, 0)
    b.li(4, disks)
    b.jal("hanoi")
    b.halt()

    # hanoi(n in r4): if n == 0 return; hanoi(n-1); move; hanoi(n-1)
    b.label("hanoi")
    b.beqz(4, "hanoi_out")
    b.addi(_SP, _SP, -8)
    b.store(_RA, _SP, 0)
    b.store(4, _SP, 4)
    b.addi(4, 4, -1)
    b.jal("hanoi")          # move n-1 to spare
    b.addi(1, 1, 1)         # move disk n
    b.load(4, _SP, 4)
    b.addi(4, 4, -1)
    b.jal("hanoi")          # move n-1 onto n
    b.load(4, _SP, 4)
    b.load(_RA, _SP, 0)
    b.addi(_SP, _SP, 8)
    b.label("hanoi_out")
    b.ret()
    return b.build(entry="main")


def tree_sum_kernel(depth: int = 8) -> Program:
    """Sum over a perfect binary tree of the given depth (result r2).

    Node values are synthesised from the depth so the result is
    checkable: every node contributes 1, so the sum is 2^(depth+1)-1.
    """
    b = ProgramBuilder("tree_sum")
    b.label("main")
    b.li(_SP, _STACK_BASE)
    b.li(2, 0)
    b.li(4, depth)
    b.jal("node")
    b.halt()

    # node(level in r4): r2 += 1; if level: recurse left and right
    b.label("node")
    b.addi(2, 2, 1)
    b.beqz(4, "node_out")
    b.addi(_SP, _SP, -8)
    b.store(_RA, _SP, 0)
    b.store(4, _SP, 4)
    b.addi(4, 4, -1)
    b.jal("node")           # left child
    b.load(4, _SP, 4)
    b.addi(4, 4, -1)
    b.jal("node")           # right child
    b.load(4, _SP, 4)
    b.load(_RA, _SP, 0)
    b.addi(_SP, _SP, 8)
    b.label("node_out")
    b.ret()
    return b.build(entry="main")


def ackermann_kernel(m: int = 2, n: int = 3) -> Program:
    """Ackermann's function (keep m <= 2!): extreme call/return churn.

    ack(m, n) with m in r4, n in r5; result in r2. The classic
    stress test for return-address stacks: the call depth varies
    wildly and underflow/overflow both occur on small stacks.
    """
    if m > 3:
        raise ValueError("m > 3 would explode; use m <= 3")
    b = ProgramBuilder("ackermann")
    b.label("main")
    b.li(_SP, _STACK_BASE)
    b.li(4, m)
    b.li(5, n)
    b.jal("ack")
    b.halt()

    # ack(m in r4, n in r5) -> r2
    b.label("ack")
    b.bnez(4, "ack_rec")
    b.addi(2, 5, 1)          # m == 0 -> n + 1
    b.ret()
    b.label("ack_rec")
    b.addi(_SP, _SP, -12)
    b.store(_RA, _SP, 0)
    b.store(4, _SP, 4)
    b.bnez(5, "ack_inner")
    b.addi(4, 4, -1)         # ack(m-1, 1)
    b.li(5, 1)
    b.jal("ack")
    b.j("ack_done")
    b.label("ack_inner")
    b.store(5, _SP, 8)
    b.addi(5, 5, -1)         # ack(m, n-1)
    b.jal("ack")
    b.load(4, _SP, 4)
    b.addi(4, 4, -1)         # ack(m-1, ack(m, n-1))
    b.add(5, 2, 0)
    b.jal("ack")
    b.label("ack_done")
    b.load(4, _SP, 4)
    b.load(_RA, _SP, 0)
    b.addi(_SP, _SP, 12)
    b.ret()
    return b.build(entry="main")
