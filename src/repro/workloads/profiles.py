"""Per-benchmark behavioural profiles.

Each profile parameterises the program generator so that the resulting
synthetic program exhibits the control-flow character of one SPECint95
benchmark as described in the literature: `li` is recursion-heavy with
very frequent calls/returns, `go` has poorly predictable branches,
`vortex` is call-dense with deep call chains, `ijpeg` is loop-dominated
with few calls, `perl` dispatches through jump tables, and so on.

The *data-dependent branch* knob works in bias bits: a branch tests
``bits`` freshly generated LCG bits and is taken unless they are all
zero, so its taken-probability is ``1 - 2**-bits``. ``bits = 1`` is a
coin flip no history predictor can learn; large ``bits`` are strongly
biased and easy. Each profile mixes easinesses to land near that
benchmark's published conditional-branch misprediction rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import WorkloadError

#: Weighted (bias_bits, weight) alternatives for data-dependent branches.
BiasMix = Tuple[Tuple[int, float], ...]


@dataclass(frozen=True)
class WorkloadProfile:
    """Generator parameters for one synthetic benchmark."""

    name: str
    description: str
    #: Static call-graph size (non-recursive functions).
    num_functions: int
    #: Basic blocks per function body (uniform range).
    min_blocks: int
    max_blocks: int
    #: Plain ops per block (uniform range).
    min_block_ops: int
    max_block_ops: int
    #: Probability that a non-leaf block contains a call.
    call_density: float
    #: Fraction of functions with no outgoing calls.
    leaf_fraction: float
    #: Probability a call site targets the lexically next function
    #: (high locality builds deep call chains, as in vortex).
    call_locality: float
    #: Probability a block is wrapped in a counted loop.
    loop_fraction: float
    min_loop_trips: int
    max_loop_trips: int
    #: Mix of data-dependent branch biases (see module docstring).
    data_branch_bias: BiasMix
    #: Probability a block ends in a data-dependent branch over some ops.
    data_branch_density: float
    #: Fraction of functions with a data-dependent early return.
    early_return_fraction: float
    #: Number of self-recursive functions and their maximum depth.
    recursive_functions: int
    max_recursion_depth: int
    #: Indirect (function-pointer) call sites across the program.
    indirect_call_sites: int
    #: Switch-style jump-table sites and their fan-out.
    jump_table_sites: int
    jump_table_size: int
    #: Data words touched by random-access loads/stores.
    mem_footprint_words: int
    #: Probability a block op is a load/store instead of ALU work.
    mem_op_density: float
    #: Outer main-loop iterations at scale=1.0 (sets dynamic length).
    outer_iterations: int

    def __post_init__(self) -> None:
        if self.num_functions < 2:
            raise WorkloadError(f"{self.name}: need at least 2 functions")
        if not 0.0 <= self.leaf_fraction < 1.0:
            raise WorkloadError(f"{self.name}: leaf_fraction out of range")
        if self.min_blocks > self.max_blocks or self.min_blocks < 1:
            raise WorkloadError(f"{self.name}: bad block range")
        if self.min_block_ops > self.max_block_ops or self.min_block_ops < 1:
            raise WorkloadError(f"{self.name}: bad block-op range")
        if self.recursive_functions and self.max_recursion_depth < 1:
            raise WorkloadError(f"{self.name}: recursion needs depth >= 1")
        if self.jump_table_sites and self.jump_table_size < 2:
            raise WorkloadError(f"{self.name}: jump tables need >= 2 entries")
        if not self.data_branch_bias:
            raise WorkloadError(f"{self.name}: empty branch-bias mix")
        if self.mem_footprint_words < 1:
            raise WorkloadError(f"{self.name}: mem_footprint_words must be >= 1")


#: Hard-to-predict mix (lots of coin flips) — go-like.
_HARD = ((1, 0.55), (2, 0.25), (4, 0.20))
#: Moderately predictable — gcc/compress-like.
_MEDIUM = ((1, 0.2), (2, 0.25), (3, 0.25), (5, 0.3))
#: Mostly easy — m88ksim/vortex-like.
_EASY = ((2, 0.1), (4, 0.3), (6, 0.6))


def _profiles() -> List[WorkloadProfile]:
    return [
        WorkloadProfile(
            name="compress",
            description="tight compression loops, moderate data-dependent branches",
            num_functions=14,
            min_blocks=3, max_blocks=7,
            min_block_ops=4, max_block_ops=9,
            call_density=0.30,
            leaf_fraction=0.4,
            call_locality=0.3,
            loop_fraction=0.45,
            min_loop_trips=3, max_loop_trips=10,
            data_branch_bias=_MEDIUM,
            data_branch_density=0.6,
            early_return_fraction=0.3,
            recursive_functions=0,
            max_recursion_depth=1,
            indirect_call_sites=0,
            jump_table_sites=0,
            jump_table_size=2,
            mem_footprint_words=4096,
            mem_op_density=0.35,
            outer_iterations=28,
        ),
        WorkloadProfile(
            name="gcc",
            description="large irregular call graph, many branches",
            num_functions=96,
            min_blocks=2, max_blocks=8,
            min_block_ops=3, max_block_ops=8,
            call_density=0.35,
            leaf_fraction=0.3,
            call_locality=0.35,
            loop_fraction=0.2,
            min_loop_trips=2, max_loop_trips=6,
            data_branch_bias=_MEDIUM,
            data_branch_density=0.7,
            early_return_fraction=0.45,
            recursive_functions=2,
            max_recursion_depth=8,
            indirect_call_sites=4,
            jump_table_sites=3,
            jump_table_size=8,
            mem_footprint_words=8192,
            mem_op_density=0.3,
            outer_iterations=50,
        ),
        WorkloadProfile(
            name="go",
            description="poorly predictable branches, moderate calls",
            num_functions=40,
            min_blocks=3, max_blocks=8,
            min_block_ops=3, max_block_ops=8,
            call_density=0.25,
            leaf_fraction=0.35,
            call_locality=0.3,
            loop_fraction=0.15,
            min_loop_trips=2, max_loop_trips=5,
            data_branch_bias=_HARD,
            data_branch_density=0.85,
            early_return_fraction=0.4,
            recursive_functions=1,
            max_recursion_depth=6,
            indirect_call_sites=0,
            jump_table_sites=1,
            jump_table_size=4,
            mem_footprint_words=4096,
            mem_op_density=0.25,
            outer_iterations=22,
        ),
        WorkloadProfile(
            name="ijpeg",
            description="loop-dominated image kernels, few calls",
            num_functions=10,
            min_blocks=2, max_blocks=5,
            min_block_ops=6, max_block_ops=12,
            call_density=0.08,
            leaf_fraction=0.5,
            call_locality=0.5,
            loop_fraction=0.7,
            min_loop_trips=6, max_loop_trips=16,
            data_branch_bias=_EASY,
            data_branch_density=0.3,
            early_return_fraction=0.1,
            recursive_functions=0,
            max_recursion_depth=1,
            indirect_call_sites=0,
            jump_table_sites=0,
            jump_table_size=2,
            mem_footprint_words=16384,
            mem_op_density=0.45,
            outer_iterations=20,
        ),
        WorkloadProfile(
            name="li",
            description="lisp interpreter: deep recursion, call/return dense",
            num_functions=24,
            min_blocks=2, max_blocks=4,
            min_block_ops=2, max_block_ops=5,
            call_density=0.5,
            leaf_fraction=0.25,
            call_locality=0.4,
            loop_fraction=0.1,
            min_loop_trips=2, max_loop_trips=4,
            data_branch_bias=_MEDIUM,
            data_branch_density=0.55,
            early_return_fraction=0.5,
            recursive_functions=4,
            max_recursion_depth=24,
            indirect_call_sites=2,
            jump_table_sites=0,
            jump_table_size=2,
            mem_footprint_words=2048,
            mem_op_density=0.3,
            outer_iterations=50,
        ),
        WorkloadProfile(
            name="m88ksim",
            description="CPU simulator: predictable branches, moderate calls",
            num_functions=30,
            min_blocks=2, max_blocks=6,
            min_block_ops=4, max_block_ops=9,
            call_density=0.28,
            leaf_fraction=0.4,
            call_locality=0.45,
            loop_fraction=0.35,
            min_loop_trips=3, max_loop_trips=8,
            data_branch_bias=_EASY,
            data_branch_density=0.5,
            early_return_fraction=0.3,
            recursive_functions=0,
            max_recursion_depth=1,
            indirect_call_sites=1,
            jump_table_sites=1,
            jump_table_size=8,
            mem_footprint_words=4096,
            mem_op_density=0.3,
            outer_iterations=35,
        ),
        WorkloadProfile(
            name="perl",
            description="interpreter dispatch through jump tables, recursion",
            num_functions=36,
            min_blocks=2, max_blocks=6,
            min_block_ops=3, max_block_ops=7,
            call_density=0.4,
            leaf_fraction=0.3,
            call_locality=0.35,
            loop_fraction=0.15,
            min_loop_trips=2, max_loop_trips=5,
            data_branch_bias=_MEDIUM,
            data_branch_density=0.5,
            early_return_fraction=0.4,
            recursive_functions=2,
            max_recursion_depth=12,
            indirect_call_sites=4,
            jump_table_sites=4,
            jump_table_size=16,
            mem_footprint_words=4096,
            mem_op_density=0.3,
            outer_iterations=30,
        ),
        WorkloadProfile(
            name="vortex",
            description="OO database: call-dense, deep call chains, easy branches",
            num_functions=64,
            min_blocks=2, max_blocks=5,
            min_block_ops=3, max_block_ops=7,
            call_density=0.55,
            leaf_fraction=0.2,
            call_locality=0.85,
            loop_fraction=0.15,
            min_loop_trips=2, max_loop_trips=4,
            data_branch_bias=_EASY,
            data_branch_density=0.45,
            early_return_fraction=0.35,
            recursive_functions=1,
            max_recursion_depth=10,
            indirect_call_sites=3,
            jump_table_sites=0,
            jump_table_size=2,
            mem_footprint_words=8192,
            mem_op_density=0.35,
            outer_iterations=32,
        ),
    ]


_PROFILE_MAP: Dict[str, WorkloadProfile] = {p.name: p for p in _profiles()}

#: The eight SPECint95 benchmark names, in the paper's order.
BENCHMARK_NAMES: Tuple[str, ...] = tuple(_PROFILE_MAP)


def profile_for(name: str) -> WorkloadProfile:
    """Return the profile for benchmark ``name`` (KeyError-safe)."""
    try:
        return _PROFILE_MAP[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; choose from {sorted(_PROFILE_MAP)}"
        ) from None


def all_profiles() -> List[WorkloadProfile]:
    """Return every benchmark profile in canonical order."""
    return [_PROFILE_MAP[name] for name in BENCHMARK_NAMES]
