"""The synthetic-program generator.

Generated programs are *real* programs in the repository's mini-MIPS
ISA: deterministic register/memory semantics, a software stack for
nesting, and data-dependent control flow driven by an in-register
linear-congruential generator. That matters because the pipelines
execute wrong paths for real — corruption of the return-address stack
emerges from actual speculative call/return execution rather than from
an injected-noise model.

Register conventions for generated code:

======  ==========================================================
r1-r9   block scratch (clobbered freely)
r4      recursion-depth argument (callee-saved by recursive fns)
r10     main outer-loop counter (owned by ``main``)
r11     counted-loop counter (callee-saved by any fn that loops)
r20     LCG state (global, intentionally clobbered everywhere)
r21     LCG multiplier constant
r22-23  branch-test / address scratch
r24     function-pointer table base (constant)
r25     heap base (constant)
r29     stack pointer
r31     link register
======  ==========================================================

Call-graph shape: non-recursive functions form a DAG (function ``i``
only calls ``j > i``), so termination is structural. Each non-leaf
function makes exactly one *chain* call (usually to the lexically next
function — the knob that builds vortex-like deep call chains) plus a
few calls to leaf functions; chain calls are frequently emitted at two
alternative sites selected by a data-dependent branch, which gives each
function multiple dynamic return addresses (defeating BTB-only return
prediction, Table 4) and puts calls in branch shadows (the paper's RAS
corruption scenario).
"""

from __future__ import annotations

import zlib
from typing import List, Optional

from repro.errors import WorkloadError
from repro.isa.assembler import ProgramBuilder
from repro.isa.program import Program
from repro.workloads.profiles import WorkloadProfile, profile_for
from repro.workloads.rng import DeterministicRng

#: In-program LCG constants (the same family as the generator's own RNG).
LCG_MULTIPLIER = 6364136223846793005
LCG_INCREMENT = 1442695040888963407

#: Data-segment layout (byte addresses, far above any text segment).
FPTR_TABLE_BASE = 0x100000
JUMP_TABLE_BASE = 0x110000
JUMP_TABLE_STRIDE = 64 * 4
HEAP_BASE = 0x200000
STACK_BASE = 0x800000

# r4 is deliberately absent: it carries the recursion-depth argument,
# and a filler op clobbering it mid-recursion would unbound the depth.
_R_SCRATCH = [1, 2, 3, 5, 6, 7, 8, 9]
_R_DEPTH = 4
_R_OUTER = 10
_R_LOOP = 11
_R_LCG = 20
_R_LCG_MUL = 21
_R_T0 = 22
_R_T1 = 23
_R_FPTR = 24
_R_HEAP = 25
_R_SP = 29
_R_RA = 31


def _depth_mask(max_depth: int) -> int:
    """Largest all-ones mask whose value does not exceed ``max_depth``."""
    mask = 1
    while (mask << 1) | 1 <= max_depth:
        mask = (mask << 1) | 1
    return mask


class _FunctionPlan:
    """Static layout decisions for one generated function."""

    __slots__ = (
        "name", "index", "is_leaf", "num_blocks", "has_loops",
        "chain_callee", "dual_chain_site", "leaf_callees",
        "early_return_bits", "jump_table_site", "indirect_call",
        "recursive_callee",
    )

    def __init__(self, name: str, index: int, is_leaf: bool) -> None:
        self.name = name
        self.index = index
        self.is_leaf = is_leaf
        self.num_blocks = 1
        self.has_loops = False
        self.chain_callee: Optional[str] = None
        self.dual_chain_site = False
        self.leaf_callees: List[str] = []
        self.early_return_bits: Optional[int] = None
        self.jump_table_site: Optional[int] = None
        self.indirect_call = False
        self.recursive_callee: Optional[str] = None


class WorkloadGenerator:
    """Generate one benchmark program from a profile and seed."""

    def __init__(
        self,
        profile: WorkloadProfile,
        seed: int = 1,
        scale: float = 1.0,
    ) -> None:
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        self.profile = profile
        self.seed = seed
        self.scale = scale
        # zlib.crc32, not hash(): the builtin string hash is randomised
        # per process and would make generation non-deterministic.
        self._rng = DeterministicRng(
            (seed << 16) ^ zlib.crc32(profile.name.encode())
        )
        self._builder = ProgramBuilder(profile.name)
        self._label_counter = 0
        self._jump_tables_emitted = 0

    # ------------------------------------------------------------------
    # Public entry point.

    def generate(self) -> Program:
        """Plan the call graph, emit every function, assemble."""
        profile = self.profile
        function_plans = self._plan_functions()
        recursive_names = [f"rec{i}" for i in range(profile.recursive_functions)]
        self._emit_main(function_plans, recursive_names)
        for plan in function_plans:
            self._emit_function(plan)
        for name in recursive_names:
            self._emit_recursive_function(name, recursive_names)
        self._emit_fptr_table(function_plans)
        return self._builder.build(entry="main")

    # ------------------------------------------------------------------
    # Planning.

    def _plan_functions(self) -> List[_FunctionPlan]:
        profile = self.profile
        rng = self._rng
        count = profile.num_functions
        first_leaf = max(1, int(round(count * (1.0 - profile.leaf_fraction))))
        plans: List[_FunctionPlan] = []
        for index in range(count):
            plan = _FunctionPlan(f"f{index}", index, index >= first_leaf)
            plan.num_blocks = rng.randint(profile.min_blocks, profile.max_blocks)
            plans.append(plan)

        leaf_names = [p.name for p in plans if p.is_leaf]
        nonleaf = [p for p in plans if not p.is_leaf]
        recursive_names = [f"rec{i}" for i in range(profile.recursive_functions)]

        for plan in plans:
            plan.has_loops = rng.chance(profile.loop_fraction)
            if plan.is_leaf:
                continue
            # One chain call: usually the next non-leaf (deep chains when
            # call_locality is high), otherwise a random later function.
            later_nonleaf = [
                p.name for p in nonleaf if p.index > plan.index
            ]
            if later_nonleaf and rng.chance(profile.call_locality):
                plan.chain_callee = later_nonleaf[0]
            elif later_nonleaf:
                plan.chain_callee = rng.choice(later_nonleaf)
            else:
                plan.chain_callee = rng.choice(leaf_names)
            plan.dual_chain_site = rng.chance(0.6)
            # Extra short calls, to leaves only (keeps dynamic size linear).
            for _ in range(plan.num_blocks):
                if rng.chance(profile.call_density) and len(plan.leaf_callees) < 3:
                    plan.leaf_callees.append(rng.choice(leaf_names))
            if rng.chance(profile.early_return_fraction):
                plan.early_return_bits = rng.weighted_choice(
                    list(profile.data_branch_bias)
                )
            if recursive_names and rng.chance(0.15):
                plan.recursive_callee = rng.choice(recursive_names)

        # Scatter indirect-call and jump-table sites over non-leaf
        # functions, biased toward low indices: early chain functions
        # execute on nearly every iteration, so sites there actually
        # contribute to the dynamic instruction mix.
        if nonleaf:
            hot = nonleaf[:max(1, len(nonleaf) // 3)]
            for _ in range(profile.indirect_call_sites):
                rng.choice(hot if rng.chance(0.7) else nonleaf).indirect_call = True
            for site in range(profile.jump_table_sites):
                target = rng.choice(hot if rng.chance(0.7) else nonleaf)
                target.jump_table_site = site
        return plans

    # ------------------------------------------------------------------
    # Small emission helpers.

    def _fresh(self, stem: str) -> str:
        self._label_counter += 1
        return f"L_{stem}_{self._label_counter}"

    def _advance_lcg(self) -> None:
        b = self._builder
        b.mul(_R_LCG, _R_LCG, _R_LCG_MUL)
        b.addi(_R_LCG, _R_LCG, LCG_INCREMENT)

    def _extract_bits(self, dest: int, mask: int) -> None:
        """dest = fresh-LCG bits under ``mask`` (advances the LCG)."""
        self._advance_lcg()
        b = self._builder
        b.srli(_R_T0, _R_LCG, self._rng.randint(18, 45))
        b.andi(dest, _R_T0, mask)

    def _emit_plain_ops(self, count: int, allow_mem: bool = True) -> None:
        """Emit ``count`` filler ALU/memory ops over the scratch registers."""
        b = self._builder
        rng = self._rng
        profile = self.profile
        emitted = 0
        while emitted < count:
            if allow_mem and rng.chance(profile.mem_op_density):
                self._emit_mem_op()
                emitted += 1
                continue
            kind = rng.randint(0, 5)
            rd = rng.choice(_R_SCRATCH)
            rs = rng.choice(_R_SCRATCH)
            rt = rng.choice(_R_SCRATCH)
            if kind == 0:
                b.add(rd, rs, rt)
            elif kind == 1:
                b.sub(rd, rs, rt)
            elif kind == 2:
                b.xor(rd, rs, rt)
            elif kind == 3:
                b.addi(rd, rs, rng.randint(-64, 64))
            elif kind == 4:
                b.slli(rd, rs, rng.randint(1, 7))
            else:
                # Occasionally pull entropy into the dataflow.
                b.add(rd, rs, _R_LCG)
            emitted += 1

    def _emit_mem_op(self) -> None:
        """A random-index load or store over the heap footprint."""
        b = self._builder
        rng = self._rng
        footprint_mask = self.profile.mem_footprint_words - 1
        b.srli(_R_T0, _R_LCG, rng.randint(10, 30))
        b.andi(_R_T0, _R_T0, footprint_mask)
        b.slli(_R_T0, _R_T0, 2)
        b.add(_R_T0, _R_T0, _R_HEAP)
        if rng.chance(0.6):
            b.load(rng.choice(_R_SCRATCH), _R_T0, 0)
        else:
            b.store(rng.choice(_R_SCRATCH), _R_T0, 0)

    def _emit_counted_loop_head(self) -> str:
        """Open a counted loop; returns the back-edge label."""
        b = self._builder
        trips = self._rng.randint(self.profile.min_loop_trips,
                                  self.profile.max_loop_trips)
        b.li(_R_LOOP, trips)
        top = self._fresh("loop")
        b.label(top)
        return top

    def _emit_counted_loop_tail(self, top: str) -> None:
        b = self._builder
        b.addi(_R_LOOP, _R_LOOP, -1)
        b.bnez(_R_LOOP, top)

    def _emit_data_branch_over(self, emit_shadow) -> None:
        """A data-dependent branch that usually skips ``emit_shadow()``.

        The shadow (rarely executed side) is the fuel for wrong-path RAS
        corruption: when the branch mispredicts, whatever ``emit_shadow``
        emitted — often a call or return-adjacent code — executes
        speculatively.
        """
        bits = self._rng.weighted_choice(list(self.profile.data_branch_bias))
        self._extract_bits(_R_T1, (1 << bits) - 1)
        skip = self._fresh("skip")
        self._builder.bnez(_R_T1, skip)
        emit_shadow()
        self._builder.label(skip)

    def _emit_indirect_call(self) -> None:
        """Call through the global function-pointer table (leaf targets)."""
        b = self._builder
        table_mask = self._fptr_table_mask()
        self._extract_bits(_R_T0, table_mask)
        b.slli(_R_T0, _R_T0, 2)
        b.addi(_R_T0, _R_T0, FPTR_TABLE_BASE)
        b.load(_R_T0, _R_T0, 0)
        b.jalr(_R_T0)

    def _fptr_table_mask(self) -> int:
        leaf_count = max(
            1, int(round(self.profile.num_functions * self.profile.leaf_fraction))
        )
        size = 1
        while size * 2 <= min(leaf_count, 16):
            size *= 2
        return size - 1

    def _emit_jump_table_site(self, site: int) -> None:
        """A switch: indirect jump through a table of in-function labels."""
        b = self._builder
        rng = self._rng
        size = self.profile.jump_table_size
        table_base = JUMP_TABLE_BASE + site * JUMP_TABLE_STRIDE
        self._extract_bits(_R_T0, size - 1)
        b.slli(_R_T0, _R_T0, 2)
        b.addi(_R_T0, _R_T0, table_base)
        b.load(_R_T0, _R_T0, 0)
        b.jr(_R_T0)
        join = self._fresh("switch_join")
        for case in range(size):
            case_label = self._fresh(f"case{case}")
            b.label(case_label)
            b.put_data(table_base + case * 4, case_label)
            self._emit_plain_ops(rng.randint(1, 3), allow_mem=False)
            if case != size - 1:
                b.j(join)
        b.label(join)
        self._jump_tables_emitted += 1

    def _emit_recursion_call(self, callee: str, max_depth: int) -> None:
        """Set the depth argument from fresh entropy and call ``callee``."""
        self._extract_bits(_R_DEPTH, _depth_mask(max_depth))
        self._builder.jal(callee)

    # ------------------------------------------------------------------
    # Function bodies.

    def _emit_function(self, plan: _FunctionPlan) -> None:
        """Emit one DAG function according to its plan."""
        b = self._builder
        rng = self._rng
        profile = self.profile
        b.label(plan.name)

        # Frame: ra if the function calls, r11 if it loops.
        save_ra = not plan.is_leaf
        save_loop = plan.has_loops
        frame = (4 if save_ra else 0) + (4 if save_loop else 0)
        if frame:
            b.addi(_R_SP, _R_SP, -frame)
            offset = 0
            if save_ra:
                b.store(_R_RA, _R_SP, offset)
                offset += 4
            if save_loop:
                b.store(_R_LOOP, _R_SP, offset)

        epilogue = self._fresh(f"{plan.name}_epi")
        if plan.early_return_bits is not None:
            # Data-dependent early return: taken with prob 2^-bits, a
            # prime source of wrong paths crossing a return.
            self._extract_bits(_R_T1, (1 << plan.early_return_bits) - 1)
            b.beqz(_R_T1, epilogue)

        # Spread the special sites over the blocks.
        chain_block = rng.randint(0, plan.num_blocks - 1) if plan.chain_callee else -1
        leaf_blocks = [
            rng.randint(0, plan.num_blocks - 1) for _ in plan.leaf_callees
        ]
        recursion_block = (
            rng.randint(0, plan.num_blocks - 1) if plan.recursive_callee else -1
        )
        jump_block = (
            rng.randint(0, plan.num_blocks - 1)
            if plan.jump_table_site is not None else -1
        )
        indirect_block = (
            rng.randint(0, plan.num_blocks - 1) if plan.indirect_call else -1
        )

        call_blocks = {chain_block, recursion_block, indirect_block}
        call_blocks.update(leaf_blocks)
        for block in range(plan.num_blocks):
            # Never wrap a call-bearing block in a counted loop: a loop
            # around the chain call would multiply the whole downstream
            # call tree (compounding exponentially along the chain), and
            # even leaf calls under loops inflate dynamic size by orders
            # of magnitude. Loops stay call-free; calls stay loop-free.
            looped = plan.has_loops and block not in call_blocks and rng.chance(0.5)
            loop_top = self._emit_counted_loop_head() if looped else None
            self._emit_plain_ops(
                rng.randint(profile.min_block_ops, profile.max_block_ops)
            )
            if rng.chance(profile.data_branch_density):
                self._emit_data_branch_over(
                    lambda: self._emit_plain_ops(rng.randint(1, 3))
                )
            if block == jump_block and plan.jump_table_site is not None:
                self._emit_jump_table_site(plan.jump_table_site)
            if block == chain_block:
                self._emit_chain_call(plan)
            for site, leaf_block in enumerate(leaf_blocks):
                if leaf_block == block:
                    # Sometimes put the leaf call in a branch shadow.
                    callee = plan.leaf_callees[site]
                    if rng.chance(0.4):
                        self._emit_data_branch_over(lambda c=callee: b.jal(c))
                    else:
                        b.jal(callee)
            if block == indirect_block and plan.indirect_call:
                self._emit_indirect_call()
            if block == recursion_block and plan.recursive_callee:
                self._emit_recursion_call(
                    plan.recursive_callee, profile.max_recursion_depth
                )
            if loop_top is not None:
                self._emit_counted_loop_tail(loop_top)

        b.label(epilogue)
        if frame:
            offset = 0
            if save_ra:
                b.load(_R_RA, _R_SP, offset)
                offset += 4
            if save_loop:
                b.load(_R_LOOP, _R_SP, offset)
            b.addi(_R_SP, _R_SP, frame)
        b.ret()

    def _emit_chain_call(self, plan: _FunctionPlan) -> None:
        """Emit the single chain call, possibly at two alternative sites."""
        b = self._builder
        callee = plan.chain_callee
        assert callee is not None
        if not plan.dual_chain_site:
            b.jal(callee)
            return
        # Two return addresses for the same callee, chosen by a coin
        # flip: defeats last-target (BTB) return prediction and places
        # calls directly in mispredicted-branch shadows.
        self._extract_bits(_R_T1, 1)
        alt = self._fresh("chain_alt")
        done = self._fresh("chain_done")
        b.beqz(_R_T1, alt)
        b.jal(callee)
        b.j(done)
        b.label(alt)
        self._emit_plain_ops(self._rng.randint(1, 2), allow_mem=False)
        b.jal(callee)
        b.label(done)

    def _emit_recursive_function(
        self, name: str, recursive_names: List[str]
    ) -> None:
        """A self-recursive function: depth argument in r4."""
        b = self._builder
        rng = self._rng
        b.label(name)
        b.addi(_R_SP, _R_SP, -8)
        b.store(_R_RA, _R_SP, 0)
        b.store(_R_DEPTH, _R_SP, 4)
        base = self._fresh(f"{name}_base")
        self._emit_plain_ops(rng.randint(2, 4))
        b.beqz(_R_DEPTH, base)
        b.addi(_R_DEPTH, _R_DEPTH, -1)
        b.jal(name)
        b.label(base)
        self._emit_plain_ops(rng.randint(1, 3))
        b.load(_R_DEPTH, _R_SP, 4)
        b.load(_R_RA, _R_SP, 0)
        b.addi(_R_SP, _R_SP, 8)
        b.ret()

    # ------------------------------------------------------------------
    # Main and data.

    def _emit_main(
        self, plans: List[_FunctionPlan], recursive_names: List[str]
    ) -> None:
        b = self._builder
        rng = self._rng
        profile = self.profile
        iterations = max(1, int(round(profile.outer_iterations * self.scale)))

        b.label("main")
        b.li(_R_SP, STACK_BASE)
        b.li(_R_LCG, (self.seed * 0x9E3779B97F4A7C15 + 12345) & ((1 << 64) - 1))
        b.li(_R_LCG_MUL, LCG_MULTIPLIER)
        b.li(_R_FPTR, FPTR_TABLE_BASE)
        b.li(_R_HEAP, HEAP_BASE)
        for reg in _R_SCRATCH:
            b.li(reg, reg * 7)
        b.li(_R_OUTER, iterations)

        outer = self._fresh("outer")
        b.label(outer)

        # Top-level call sequence: a few roots (low-index functions) plus
        # every recursive entry, some guarded by data-dependent branches
        # so the sequence varies across iterations.
        roots = [p.name for p in plans if not p.is_leaf][:6] or [plans[0].name]
        num_root_calls = min(len(roots), rng.randint(2, 4))
        for name in roots[:num_root_calls]:
            if rng.chance(0.35):
                self._emit_data_branch_over(lambda n=name: b.jal(n))
            else:
                b.jal(name)
        for name in recursive_names:
            self._emit_recursion_call(name, profile.max_recursion_depth)
        self._emit_plain_ops(rng.randint(2, 5))

        b.addi(_R_OUTER, _R_OUTER, -1)
        b.bnez(_R_OUTER, outer)
        b.halt()

    def _emit_fptr_table(self, plans: List[_FunctionPlan]) -> None:
        """Fill the global function-pointer table with leaf addresses."""
        leaves = [p.name for p in plans if p.is_leaf]
        if not leaves:
            leaves = [plans[-1].name]
        size = self._fptr_table_mask() + 1
        for slot in range(size):
            self._builder.put_data(
                FPTR_TABLE_BASE + slot * 4, leaves[slot % len(leaves)]
            )


def build_workload(name: str, seed: int = 1, scale: float = 1.0) -> Program:
    """Build the synthetic benchmark called ``name``.

    Args:
        name: one of :data:`repro.workloads.BENCHMARK_NAMES`.
        seed: varies both static structure and dynamic behaviour.
        scale: multiplies the outer-loop iteration count, scaling the
            dynamic instruction count roughly linearly.
    """
    return WorkloadGenerator(profile_for(name), seed=seed, scale=scale).generate()
