"""Synthetic SPECint95-inspired workloads.

The paper evaluates on SPECint95 binaries; we have neither the binaries
nor a MIPS compiler, so each benchmark is replaced by a synthetic
program generated from a behavioural *profile* (call density, call
depth, recursion, branch predictability, indirect-jump mix) chosen to
mimic the published character of that benchmark. See DESIGN.md for the
substitution argument.
"""

from repro.workloads.rng import DeterministicRng
from repro.workloads.profiles import (
    WorkloadProfile,
    BENCHMARK_NAMES,
    profile_for,
    all_profiles,
)
from repro.workloads.generator import WorkloadGenerator, build_workload
from repro.workloads.kernels import (
    ackermann_kernel,
    dispatch_kernel,
    fibonacci_kernel,
    hanoi_kernel,
    loop_sum_kernel,
    mutual_recursion_kernel,
    stack_stress_kernel,
    tree_sum_kernel,
)
from repro.workloads.characterize import WorkloadCharacter, characterize

__all__ = [
    "BENCHMARK_NAMES",
    "DeterministicRng",
    "WorkloadCharacter",
    "WorkloadGenerator",
    "WorkloadProfile",
    "ackermann_kernel",
    "all_profiles",
    "build_workload",
    "characterize",
    "dispatch_kernel",
    "fibonacci_kernel",
    "hanoi_kernel",
    "loop_sum_kernel",
    "mutual_recursion_kernel",
    "profile_for",
    "stack_stress_kernel",
    "tree_sum_kernel",
]
