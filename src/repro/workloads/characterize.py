"""Workload characterisation — the Table 2 analogue.

Runs each workload on the reference emulator and summarises the dynamic
properties that matter to the paper: instruction count, call/return
density, conditional-branch density, and call-depth statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.emu.emulator import Emulator
from repro.isa.program import Program
from repro.stats.tables import format_table
from repro.workloads.generator import build_workload
from repro.workloads.profiles import BENCHMARK_NAMES


@dataclass(frozen=True)
class WorkloadCharacter:
    """Dynamic-behaviour summary of one workload run."""

    name: str
    instructions: int
    static_instructions: int
    cond_branch_pct: float
    taken_cond_pct: float
    call_pct: float
    return_pct: float
    indirect_jump_pct: float
    load_store_pct: float
    mean_call_depth: Optional[float]
    max_call_depth: Optional[int]

    def as_row(self) -> List[object]:
        return [
            self.name,
            self.instructions,
            self.static_instructions,
            round(self.cond_branch_pct, 2),
            round(self.taken_cond_pct, 2),
            round(self.call_pct, 2),
            round(self.return_pct, 2),
            round(self.indirect_jump_pct, 2),
            round(self.load_store_pct, 2),
            None if self.mean_call_depth is None else round(self.mean_call_depth, 1),
            self.max_call_depth,
        ]


TABLE2_HEADERS = [
    "benchmark", "dyn insts", "static insts", "cond br %", "taken %",
    "call %", "ret %", "ind jmp %", "ld/st %", "mean depth", "max depth",
]


def characterize(program: Program, max_instructions: int = 50_000_000) -> WorkloadCharacter:
    """Run ``program`` functionally and summarise its behaviour."""
    emulator = Emulator(program, max_instructions=max_instructions)
    stats = emulator.run()
    n = max(1, stats.instructions)

    def pct(count: int) -> float:
        return 100.0 * count / n

    taken_pct = (
        100.0 * stats.taken_cond_branches / stats.cond_branches
        if stats.cond_branches else 0.0
    )
    return WorkloadCharacter(
        name=program.name,
        instructions=stats.instructions,
        static_instructions=len(program),
        cond_branch_pct=pct(stats.cond_branches),
        taken_cond_pct=taken_pct,
        call_pct=pct(stats.calls),
        return_pct=pct(stats.returns),
        indirect_jump_pct=pct(stats.indirect_jumps),
        load_store_pct=pct(stats.loads + stats.stores),
        mean_call_depth=stats.call_depth.mean,
        max_call_depth=stats.call_depth.max_key,
    )


def table2(
    names: Sequence[str] = BENCHMARK_NAMES,
    seed: int = 1,
    scale: float = 1.0,
) -> str:
    """Render the benchmark-summary table for the given workloads."""
    rows = []
    for name in names:
        character = characterize(build_workload(name, seed=seed, scale=scale))
        rows.append(character.as_row())
    return format_table(TABLE2_HEADERS, rows, title="Table 2: benchmark summary")
