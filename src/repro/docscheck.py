"""Stdlib link-and-anchor checker for the documentation tree.

Four PRs of subsystem growth showed how documentation rots: sections
get renumbered (docs/architecture.md twice now), files move, and prose
references like ``docs/performance.md §2`` silently point at the wrong
section. This module is the CI gate against that rot (the lint job
runs ``python -m repro.docscheck``). It checks, over ``docs/*.md`` +
README + CONTRIBUTING:

* **Markdown links** ``[text](target)`` — the target file must exist
  (external ``scheme://`` links are skipped) and, when the link carries
  a ``#fragment``, the target must contain a heading whose GitHub slug
  matches.
* **Path tokens** — inline-code and bare references to repository
  files (``src/repro/bpred/ras.py``, ``docs/traces.md``) must exist.
  Glob/template tokens (``*``, ``<``, ``$``…) and generated artifact
  directories (``benchmarks/out``) are ignored.
* **Section references** — ``somefile.md §N`` / ``section N`` must
  resolve to a ``## N.`` heading in that file; a bare ``§N`` is checked
  against the current file's own numbered headings. This is the check
  that catches a renumbering PR missing a cross-reference.

Pure stdlib by design: the lint job must not need the simulator's
test dependencies to validate prose.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

#: Path prefixes that name generated artifacts: referenced legitimately
#: by the docs, but absent from a fresh checkout.
GENERATED_PREFIXES = ("benchmarks/out", "traces/", ".ci-cache")

#: Characters marking a token as a template/glob/env expansion rather
#: than a literal repository path.
_NON_LITERAL = set("*<>{}$~= ")

#: Extensions a backticked token must carry to be treated as a file
#: reference (prose like ``cache/get`` names span labels, not paths).
_FILE_SUFFIXES = (".md", ".py", ".json", ".jsonl", ".yml", ".yaml",
                  ".toml", ".xz")

_FENCE_RE = re.compile(r"^(```|~~~)")
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CODE_TOKEN_RE = re.compile(r"`([^`\n]+)`")
_MD_TOKEN_RE = re.compile(r"[A-Za-z0-9_./-]+\.md\b")
_SECTION_REF_RE = re.compile(
    r"([A-Za-z0-9_./-]+\.md)`?[\s(]*(?:§\s*|[Ss]ection\s+)(\d+)")
_BARE_SECTION_RE = re.compile(r"§\s*(\d+)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*$")
_NUMBERED_HEADING_RE = re.compile(r"^#{1,6}\s+(\d+)\.")


def strip_fenced_blocks(text: str) -> str:
    """Blank out fenced code blocks, preserving line numbering.

    Shell transcripts and ASCII diagrams live in fences and are full
    of template paths (``traces/<name>.rastrace``) that must not be
    link-checked.
    """
    out: List[str] = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
        else:
            out.append("" if in_fence else line)
    return "\n".join(out)


def slugify(title: str) -> str:
    """GitHub's anchor slug for a heading title."""
    slug = re.sub(r"[^\w\- ]", "", title.strip().lower())
    return slug.replace(" ", "-")


def heading_slugs(text: str) -> List[str]:
    slugs: List[str] = []
    for line in strip_fenced_blocks(text).splitlines():
        match = _HEADING_RE.match(line)
        if match:
            slugs.append(slugify(match.group(2)))
    return slugs


def numbered_sections(text: str) -> List[int]:
    """The N of every ``## N. Title`` heading, in order."""
    numbers: List[int] = []
    for line in strip_fenced_blocks(text).splitlines():
        match = _NUMBERED_HEADING_RE.match(line)
        if match:
            numbers.append(int(match.group(1)))
    return numbers


def _is_literal_path(token: str) -> bool:
    return not (_NON_LITERAL & set(token))


def _resolve(token: str, md_file: Path, root: Path) -> Optional[Path]:
    """The existing file/dir a token names, or None."""
    for base in (root, md_file.parent):
        candidate = base / token
        if candidate.exists():
            return candidate
    return None


def _ignored(token: str) -> bool:
    return token.startswith(GENERATED_PREFIXES)


def _iter_checkable_lines(text: str) -> Iterator[Tuple[int, str]]:
    for lineno, line in enumerate(
            strip_fenced_blocks(text).splitlines(), start=1):
        if line:
            yield lineno, line


def check_file(md_file: Path, root: Path) -> List[str]:
    """All problems in one markdown file, as ``file:line: message``."""
    problems: List[str] = []
    text = md_file.read_text(encoding="utf-8")
    rel = md_file.relative_to(root)

    def problem(lineno: int, message: str) -> None:
        problems.append(f"{rel}:{lineno}: {message}")

    own_sections = numbered_sections(text)

    for lineno, line in _iter_checkable_lines(text):
        link_spans = [m.span() for m in _LINK_RE.finditer(line)]

        # 1. Markdown links (with optional #anchor).
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if "://" in target or target.startswith("mailto:"):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part and not _is_literal_path(path_part):
                continue
            if path_part and _ignored(path_part):
                continue
            resolved = (_resolve(path_part, md_file, root)
                        if path_part else md_file)
            if resolved is None:
                problem(lineno, f"broken link target: {target}")
                continue
            if fragment and resolved.suffix == ".md":
                slugs = heading_slugs(
                    resolved.read_text(encoding="utf-8"))
                if fragment.lower() not in slugs:
                    problem(lineno,
                            f"no heading for anchor #{fragment} "
                            f"in {path_part or rel}")

        # 2. Inline-code path tokens.
        for match in _CODE_TOKEN_RE.finditer(line):
            token = match.group(1).split("::")[0]
            if not _is_literal_path(token) or _ignored(token):
                continue
            if token.endswith("/"):
                if _resolve(token, md_file, root) is None:
                    problem(lineno, f"missing directory: {token}")
            elif "/" in token and token.endswith(_FILE_SUFFIXES):
                if _resolve(token, md_file, root) is None:
                    problem(lineno, f"missing file: {token}")

        # 3. Bare *.md mentions (markdown-link targets are covered by
        # pass 1; URL paths are not repository files).
        for match in _MD_TOKEN_RE.finditer(line):
            token = match.group(0)
            if any(start <= match.start() < end
                   for start, end in link_spans):
                continue
            if line[:match.start()].endswith("://"):
                continue
            if not _is_literal_path(token) or _ignored(token):
                continue
            if _resolve(token, md_file, root) is None:
                problem(lineno, f"missing file: {token}")

        # 4. Section references against the target's numbered headings.
        ref_spans: List[Tuple[int, int]] = []
        for match in _SECTION_REF_RE.finditer(line):
            ref_spans.append(match.span())
            token, number = match.group(1), int(match.group(2))
            target = _resolve(token, md_file, root)
            if target is None:
                continue  # already reported by the *.md pass
            sections = numbered_sections(
                target.read_text(encoding="utf-8"))
            if sections and number not in sections:
                problem(lineno,
                        f"{token} has no section {number} "
                        f"(it has 1..{max(sections)})")

        # 5. Bare §N references resolve against this file itself.
        for match in _BARE_SECTION_RE.finditer(line):
            if any(start <= match.start() < end
                   for start, end in ref_spans):
                continue
            number = int(match.group(1))
            if own_sections and number not in own_sections:
                problem(lineno,
                        f"this file has no section {number} "
                        f"(it has 1..{max(own_sections)})")

    return problems


def default_targets(root: Path) -> List[Path]:
    targets = sorted((root / "docs").glob("*.md"))
    for name in ("README.md", "CONTRIBUTING.md"):
        candidate = root / name
        if candidate.exists():
            targets.append(candidate)
    return targets


def run(paths: Sequence[str], root: Path) -> Tuple[int, List[str]]:
    """Check the given files (or the default set) and return
    (files_checked, problems)."""
    targets = ([root / p for p in paths] if paths
               else default_targets(root))
    problems: List[str] = []
    for target in targets:
        if not target.exists():
            problems.append(f"{target}: no such file")
            continue
        problems.extend(check_file(target.resolve(), root.resolve()))
    return len(targets), problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    checked, problems = run(args, Path.cwd())
    for line in problems:
        print(line, file=sys.stderr)
    if problems:
        print(f"docscheck: {len(problems)} problem(s) "
              f"in {checked} file(s)", file=sys.stderr)
        return 1
    print(f"docscheck: {checked} file(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
