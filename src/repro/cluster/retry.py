"""Capped exponential backoff with deterministic jitter.

One policy object serves every retry site in the harness — the
coordinator's re-queue of failed jobs, the worker's transport retries,
and the local executor's broken-pool recovery — so "how we retry" is
defined exactly once (docs/distributed.md has the semantics table).

Jitter is *deterministic*: it is derived by hashing the retry key and
attempt number, not by sampling a global RNG. Retries therefore never
perturb ``random`` state anywhere in the simulator, and a test can
predict the exact delay schedule for any key.
"""

from __future__ import annotations

import dataclasses
import hashlib

#: Attempts after which a job is terminally failed (first try included).
DEFAULT_MAX_ATTEMPTS = 4

DEFAULT_BASE_DELAY_S = 0.1
DEFAULT_MAX_DELAY_S = 5.0
DEFAULT_JITTER = 0.25


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """``delay = min(base * 2^(attempt-1), max) * (1 +/- jitter)``.

    ``max_attempts`` counts *executions*, not retries: a job under the
    default policy runs at most four times before it is declared
    terminally failed.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    base_delay_s: float = DEFAULT_BASE_DELAY_S
    max_delay_s: float = DEFAULT_MAX_DELAY_S
    jitter: float = DEFAULT_JITTER

    def exhausted(self, attempts: int) -> bool:
        """Has a job that ran ``attempts`` times used its whole budget?"""
        return attempts >= self.max_attempts

    def delay_s(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1 = first retry).

        The jitter factor is a pure function of ``(key, attempt)``:
        uniformly spread over ``[1 - jitter, 1 + jitter]`` by hashing,
        so concurrent retries of *different* jobs de-synchronise while
        any single schedule stays reproducible.
        """
        attempt = max(1, attempt)
        delay = min(self.base_delay_s * (2 ** (attempt - 1)),
                    self.max_delay_s)
        if self.jitter <= 0.0:
            return delay
        digest = hashlib.sha256(f"{key}#{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(2 ** 64)  # [0, 1)
        return delay * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def schedule(self, key: str = "") -> list:
        """Every retry delay the policy allows for ``key``, in order."""
        return [self.delay_s(attempt, key)
                for attempt in range(1, self.max_attempts)]
