"""Distributed sweep backend: fan jobs across machines, not just cores.

The cluster layer turns the embarrassingly parallel experiment harness
into a fleet: a **coordinator** (stdlib ``http.server``) owns a
work-stealing job queue with leases, heartbeats, capped
retry-with-backoff, and idempotent first-writer-wins results; plain
**workers** (``repro-sim cluster worker``) lease jobs, run them through
the ordinary engine registry with the content-addressed result cache as
the shared dedupe layer, and stream ``JobResult`` payloads back over
JSON/HTTP. ``SweepExecutor(backend="cluster")`` — or ``--backend
cluster`` / ``REPRO_BACKEND=cluster`` on any sweep command — routes
cache misses through the fleet and degrades to the local process pool
when no workers register.

Module map: :mod:`~repro.cluster.protocol` (wire format + HTTP
client), :mod:`~repro.cluster.leases` (the queue/lease/retry state
machine), :mod:`~repro.cluster.coordinator` (the HTTP server),
:mod:`~repro.cluster.worker` (the lease-execute-complete loop, with
chaos fault-injection hooks), :mod:`~repro.cluster.retry` (shared
backoff policy), :mod:`~repro.cluster.backend` (executor-side
orchestration). Full protocol and failure-matrix reference:
docs/distributed.md.
"""

from repro.cluster.backend import (
    configured_coordinator,
    default_grace_s,
    run_jobs_on_cluster,
)
from repro.cluster.coordinator import Coordinator, merge_cluster_metrics
from repro.cluster.leases import LeaseTable
from repro.cluster.protocol import (
    DEFAULT_LEASE_TIMEOUT_S,
    PROTOCOL_VERSION,
    ClusterClient,
    decode_job,
    decode_result,
    encode_job,
    encode_result,
)
from repro.cluster.retry import RetryPolicy
from repro.cluster.worker import ChaosHooks, ClusterWorker, run_worker

__all__ = [
    "ChaosHooks",
    "ClusterClient",
    "ClusterWorker",
    "Coordinator",
    "DEFAULT_LEASE_TIMEOUT_S",
    "LeaseTable",
    "PROTOCOL_VERSION",
    "RetryPolicy",
    "configured_coordinator",
    "decode_job",
    "decode_result",
    "default_grace_s",
    "encode_job",
    "encode_result",
    "merge_cluster_metrics",
    "run_jobs_on_cluster",
    "run_worker",
]
