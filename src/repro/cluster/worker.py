"""The remote worker: lease, check-then-compute, stream results back.

A worker is a plain process (``repro-sim cluster worker``) pointed at a
coordinator URL. Its loop is deliberately boring:

1. **register** (retrying with backoff until the coordinator exists —
   so a fleet can be started before, after, or during its coordinator);
2. **lease** a job; when idle, sleep the coordinator-advertised poll
   interval and try again;
3. **check-then-compute**: probe the shared
   :class:`~repro.core.executor.ResultCache` under the leased key and
   complete instantly on a hit; otherwise execute through the ordinary
   :func:`~repro.core.executor.run_job` engine dispatch;
4. **complete** (or **fail**, for exceptions the coordinator should
   retry elsewhere) and loop.

A daemon heartbeat thread renews the active lease at a third of the
lease timeout, so only a worker that truly stopped — crashed, hung, or
SIGKILLed — lets its lease expire and its job be stolen.

Fault injection (the chaos tests and the CI chaos job drive these; see
docs/distributed.md):

* ``REPRO_CHAOS_KILL_MIDJOB=N`` — SIGKILL *this worker's own process*
  while executing its N-th leased job: the hard-crash path (lease
  expiry -> steal -> re-queue) exercised for real.
* ``REPRO_CHAOS_SLOW_S=X`` — sleep ``X`` seconds mid-execution: the
  slow-worker path (job stolen, late completion discarded).
* ``REPRO_CHAOS_FAIL_FIRST=N`` — report the first N leases as failed
  without executing: the transient-failure retry/backoff path.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import socket
import threading
import time
from typing import Dict, Optional, Union

from repro.cluster.leases import MAX_SPANS_PER_JOB
from repro.cluster.protocol import ClusterClient, decode_job
from repro.cluster.retry import RetryPolicy
from repro.core.executor import ResultCache, run_job
from repro.errors import ClusterError, ClusterUnavailable
from repro.obs import context as tracectx
from repro.telemetry import span
from repro.telemetry.spans import Span, recorder


@dataclasses.dataclass(frozen=True)
class ChaosHooks:
    """Fault-injection switches, normally read from the environment."""

    kill_midjob: Optional[int] = None
    slow_s: float = 0.0
    fail_first: int = 0

    @classmethod
    def from_env(cls) -> "ChaosHooks":
        def _int(name: str) -> Optional[int]:
            raw = os.environ.get(name)
            return int(raw) if raw else None

        return cls(
            kill_midjob=_int("REPRO_CHAOS_KILL_MIDJOB"),
            slow_s=float(os.environ.get("REPRO_CHAOS_SLOW_S", "0") or 0),
            fail_first=_int("REPRO_CHAOS_FAIL_FIRST") or 0,
        )


class ClusterWorker:
    """One lease-execute-complete loop against a coordinator."""

    def __init__(
        self,
        coordinator_url: str,
        name: Optional[str] = None,
        cache: Union[ResultCache, None, str] = "default",
        max_jobs: Optional[int] = None,
        transport_policy: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosHooks] = None,
        connect_timeout_s: float = 30.0,
    ) -> None:
        self.client = ClusterClient(coordinator_url)
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        if cache == "default":
            self.cache: Optional[ResultCache] = ResultCache.default()
        else:
            self.cache = cache  # type: ignore[assignment]
        self.max_jobs = max_jobs
        #: Governs how long transport errors are tolerated before the
        #: worker gives up on the coordinator and exits cleanly.
        self.transport_policy = transport_policy or RetryPolicy(
            max_attempts=6, base_delay_s=0.2, max_delay_s=2.0)
        self.chaos = chaos if chaos is not None else ChaosHooks.from_env()
        self.connect_timeout_s = connect_timeout_s
        self.worker_id: Optional[str] = None
        self.poll_interval_s = 0.25
        self.lease_timeout_s = 30.0
        self.stats: Dict[str, int] = {
            "jobs": 0, "cache_hits": 0, "failures": 0, "lost_leases": 0}
        self._stop = threading.Event()
        self._active_lease: Optional[str] = None
        self._lease_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def stop(self) -> None:
        self._stop.set()

    def _register(self) -> None:
        """Register, waiting (bounded) for the coordinator to appear."""
        deadline = time.monotonic() + self.connect_timeout_s
        attempt = 0
        while True:
            try:
                hello = self.client.register(self.name)
                break
            except ClusterUnavailable:
                attempt += 1
                if time.monotonic() >= deadline or self._stop.is_set():
                    raise
                time.sleep(self.transport_policy.delay_s(attempt, self.name))
        self.worker_id = str(hello["worker_id"])
        self.poll_interval_s = float(
            hello.get("poll_interval_s", self.poll_interval_s))
        self.lease_timeout_s = float(
            hello.get("lease_timeout_s", self.lease_timeout_s))

    def _heartbeat_loop(self) -> None:
        interval = max(0.05, self.lease_timeout_s / 3.0)
        while not self._stop.wait(interval):
            with self._lease_lock:
                lease_id = self._active_lease
            if lease_id is None or self.worker_id is None:
                continue
            try:
                reply = self.client.heartbeat(self.worker_id, [lease_id])
                if lease_id in (reply.get("lost") or []):
                    self.stats["lost_leases"] += 1
            except (ClusterError, ClusterUnavailable):
                pass  # the main loop owns the give-up decision

    # -- the loop ------------------------------------------------------

    def run(self) -> Dict[str, int]:
        """Work until shutdown/drain, coordinator loss, or ``max_jobs``.

        Returns the worker's own counters (jobs, cache hits, failures,
        lost leases) — the CLI prints them on exit.
        """
        self._register()
        heartbeat = threading.Thread(target=self._heartbeat_loop,
                                     name="repro-worker-heartbeat",
                                     daemon=True)
        heartbeat.start()
        transport_failures = 0
        try:
            while not self._stop.is_set():
                if self.max_jobs is not None \
                        and self.stats["jobs"] >= self.max_jobs:
                    break
                try:
                    reply = self.client.lease(self.worker_id or "")
                    transport_failures = 0
                except (ClusterUnavailable, ClusterError):
                    transport_failures += 1
                    if self.transport_policy.exhausted(transport_failures):
                        break  # coordinator is gone; exit cleanly
                    time.sleep(self.transport_policy.delay_s(
                        transport_failures, self.name))
                    continue
                status = reply.get("status")
                if status == "shutdown":
                    break
                if status != "job":
                    self._stop.wait(float(
                        reply.get("retry_after_s", self.poll_interval_s)))
                    continue
                self._run_lease(reply)
        finally:
            self._stop.set()
            heartbeat.join(timeout=1.0)
        return dict(self.stats)

    def _run_lease(self, grant: Dict[str, object]) -> None:
        lease_id = str(grant["lease_id"])
        key = str(grant["key"])
        leased_so_far = (self.stats["jobs"] + self.stats["failures"]) + 1
        if self.chaos.fail_first and leased_so_far <= self.chaos.fail_first:
            self.stats["failures"] += 1
            self._call_safely(lambda: self.client.fail(
                self.worker_id or "", lease_id, key,
                "chaos: injected transient failure"))
            return
        with self._lease_lock:
            self._active_lease = lease_id
        # rebuild the submitter's trace context from the lease grant and
        # collect every span this job records, so the batch can ride the
        # complete payload home; a SIGKILLed worker simply never sends
        # its batch — partial spans die with the process, the merged
        # trace stays clean
        ctx = tracectx.from_wire(grant.get("trace"))
        collected: list = []
        token: Optional[int] = None
        if ctx is not None:

            def _collect(item: Span) -> None:
                if (item.trace_id == ctx.trace_id
                        and len(collected) < MAX_SPANS_PER_JOB):
                    collected.append(item.to_json_dict())

            token = recorder.subscribe(_collect)
        try:
            with tracectx.activate(ctx):
                with span("cluster/job", key=key[:12], worker=self.name):
                    cached = self.cache.get(key) if self.cache is not None \
                        else None
                    if cached is not None:
                        result = dataclasses.replace(cached, from_cache=True)
                        self.stats["cache_hits"] += 1
                    else:
                        job = decode_job(grant["job"])  # type: ignore[arg-type]
                        if self.chaos.kill_midjob is not None \
                                and leased_so_far >= self.chaos.kill_midjob:
                            # die the hard way: no cleanup, no goodbye — the
                            # lease must expire and the job must be stolen
                            os.kill(os.getpid(), signal.SIGKILL)
                        result = run_job(job)
                        if self.chaos.slow_s > 0.0:
                            time.sleep(self.chaos.slow_s)
        except ClusterError as error:
            self.stats["failures"] += 1
            self._call_safely(lambda: self.client.fail(
                self.worker_id or "", lease_id, key, str(error)))
            return
        except Exception as error:  # engine failure -> coordinator retries
            self.stats["failures"] += 1
            self._call_safely(lambda: self.client.fail(
                self.worker_id or "", lease_id, key,
                f"{type(error).__name__}: {error}"))
            return
        finally:
            if token is not None:
                recorder.unsubscribe(token)
            with self._lease_lock:
                self._active_lease = None
        self._call_safely(lambda: self.client.complete(
            self.worker_id or "", lease_id, key, result,
            spans=collected or None))
        self.stats["jobs"] += 1

    def _call_safely(self, call) -> None:
        """Fire an RPC whose failure must not kill the loop (the lease
        table will steal the job back if the message was lost)."""
        try:
            call()
        except (ClusterError, ClusterUnavailable):
            pass


def run_worker(coordinator_url: str, **kwargs: object) -> Dict[str, int]:
    """Convenience wrapper: build a worker and run it to completion."""
    return ClusterWorker(coordinator_url, **kwargs).run()  # type: ignore[arg-type]
