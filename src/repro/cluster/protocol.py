"""Wire protocol of the distributed sweep backend.

Everything is JSON over plain HTTP/1.1 — ``http.server`` on the
coordinator side, ``urllib.request`` on the client side — so a fleet
needs nothing beyond the Python standard library. The full endpoint
reference lives in docs/distributed.md; in short:

========================  =============================================
``POST /api/register``    worker announces itself, learns lease/poll
                          parameters
``POST /api/lease``       worker pulls (steals) the next runnable job
``POST /api/heartbeat``   worker renews its active leases
``POST /api/complete``    worker submits a ``JobResult`` for a lease
``POST /api/fail``        worker reports a transient job failure
``POST /api/submit``      client enqueues a batch of encoded jobs
``GET  /api/batch/<id>``  client polls a batch (results when done)
``GET  /api/status``      queue/lease/worker stats + metrics snapshot
``POST /api/shutdown``    stop the coordinator loop
========================  =============================================

Jobs cross the wire as plain dicts (:func:`encode_job` /
:func:`decode_job`): the workload identity (``WorkloadSpec`` triple or
``TraceShardSpec``), the full ``MachineConfig`` field dict, the engine,
and the instruction cap. A raw ``Program`` workload has no stable
identity and never travels — the executor runs such jobs locally.
Results travel as ``JobResult.to_json_dict()`` payloads; both ends
validate on decode, so a malformed message fails loudly as
:class:`~repro.errors.ClusterError` instead of corrupting a sweep.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Optional

from repro.config.machine import MachineConfig
from repro.core.executor import ExperimentJob, JobResult
from repro.core.experiment import WorkloadSpec
from repro.errors import ClusterError, ClusterUnavailable, ConfigError
from repro.trace.replay import TraceShardSpec

#: Bump when the wire format changes shape; both ends check it.
PROTOCOL_VERSION = 1

#: Default coordinator bind address for the standalone CLI.
DEFAULT_BIND = "127.0.0.1:0"

#: Seconds a worker may hold a lease without heartbeat before the
#: coordinator declares it dead and re-queues (steals back) the job.
DEFAULT_LEASE_TIMEOUT_S = 30.0

#: Seconds an idle worker waits between lease polls.
DEFAULT_POLL_INTERVAL_S = 0.25

#: Per-request socket timeout of the HTTP client.
DEFAULT_HTTP_TIMEOUT_S = 10.0


def encode_job(job: ExperimentJob) -> Dict[str, object]:
    """The JSON-safe wire form of one experiment job."""
    workload = job.workload
    if isinstance(workload, WorkloadSpec):
        encoded: Dict[str, object] = {
            "kind": "workload", "name": workload.name,
            "seed": workload.seed, "scale": workload.scale,
        }
    elif isinstance(workload, TraceShardSpec):
        encoded = {
            "kind": "shard", "name": workload.name, "path": workload.path,
            "checksum": workload.checksum, "events": workload.events,
            "calls": workload.calls, "returns": workload.returns,
        }
    else:
        raise ClusterError(
            "raw Program workloads have no stable identity and cannot be "
            "shipped to a cluster; run them through the local backend")
    return {
        "version": PROTOCOL_VERSION,
        "workload": encoded,
        "config": job.config.to_json_dict(),
        "engine": job.engine,
        "max_instructions": job.max_instructions,
    }


def decode_job(payload: Dict[str, object]) -> ExperimentJob:
    """Rebuild an :class:`ExperimentJob` from :func:`encode_job` output."""
    try:
        version = payload.get("version")
        if version != PROTOCOL_VERSION:
            raise ClusterError(
                f"protocol version mismatch: got {version!r}, "
                f"expected {PROTOCOL_VERSION}")
        workload_data = dict(payload["workload"])  # type: ignore[arg-type]
        kind = workload_data.pop("kind")
        if kind == "workload":
            workload = WorkloadSpec(
                name=str(workload_data["name"]),
                seed=int(workload_data["seed"]),  # type: ignore[arg-type]
                scale=float(workload_data["scale"]),  # type: ignore[arg-type]
            )
        elif kind == "shard":
            workload = TraceShardSpec(**workload_data)
        else:
            raise ClusterError(f"unknown workload kind {kind!r}")
        config = MachineConfig.from_json_dict(payload["config"])  # type: ignore[arg-type]
        max_instructions = payload.get("max_instructions")
        return ExperimentJob(
            workload, config, str(payload["engine"]),
            max_instructions=(None if max_instructions is None
                              else int(max_instructions)))  # type: ignore[arg-type]
    except ClusterError:
        raise
    except (KeyError, TypeError, ValueError, ConfigError) as error:
        raise ClusterError(f"malformed job payload: {error}")


def encode_result(result: JobResult) -> Dict[str, object]:
    return result.to_json_dict()


def decode_result(payload: Dict[str, object]) -> JobResult:
    try:
        return JobResult.from_json_dict(payload)
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise ClusterError(f"malformed result payload: {error}")


class ClusterClient:
    """Tiny JSON-over-HTTP client used by workers and submitters.

    One instance per coordinator URL. Every call raises
    :class:`ClusterUnavailable` when the coordinator cannot be reached
    (connection refused, timeout) and :class:`ClusterError` when it
    answers with garbage or an HTTP error — callers pick their own
    retry policy around that distinction.
    """

    def __init__(self, base_url: str,
                 timeout_s: float = DEFAULT_HTTP_TIMEOUT_S) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def call(self, path: str,
             payload: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """POST ``payload`` (or GET when ``None``) to ``path``."""
        url = f"{self.base_url}{path}"
        data = (None if payload is None
                else json.dumps(payload).encode("utf-8"))
        request = urllib.request.Request(
            url, data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                body = response.read()
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                detail = json.loads(error.read().decode("utf-8")).get(
                    "error", "")
            except (ValueError, OSError, AttributeError):
                pass
            raise ClusterError(
                f"coordinator rejected {path}: HTTP {error.code}"
                + (f" ({detail})" if detail else ""))
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            raise ClusterUnavailable(
                f"coordinator unreachable at {self.base_url}: {error}")
        try:
            decoded = json.loads(body.decode("utf-8"))
        except ValueError as error:
            raise ClusterError(f"non-JSON response from {path}: {error}")
        if not isinstance(decoded, dict):
            raise ClusterError(f"non-object response from {path}")
        return decoded

    # -- convenience wrappers (one per endpoint) -----------------------

    def register(self, name: str) -> Dict[str, object]:
        return self.call("/api/register", {"worker": name})

    def lease(self, worker_id: str) -> Dict[str, object]:
        return self.call("/api/lease", {"worker_id": worker_id})

    def heartbeat(self, worker_id: str, lease_ids) -> Dict[str, object]:
        return self.call("/api/heartbeat",
                         {"worker_id": worker_id,
                          "lease_ids": list(lease_ids)})

    def complete(self, worker_id: str, lease_id: str, key: str,
                 result: JobResult,
                 spans: Optional[list] = None) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "worker_id": worker_id, "lease_id": lease_id,
            "key": key, "result": encode_result(result)}
        if spans:
            # additive field: a version-1 coordinator that predates
            # tracing simply ignores it
            payload["spans"] = spans
        return self.call("/api/complete", payload)

    def fail(self, worker_id: str, lease_id: str, key: str,
             error: str) -> Dict[str, object]:
        return self.call("/api/fail",
                         {"worker_id": worker_id, "lease_id": lease_id,
                          "key": key, "error": error})

    def submit(self, jobs,
               trace: Optional[Dict[str, object]] = None,
               ) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "version": PROTOCOL_VERSION,
            "jobs": [encode_job(job) for job in jobs]}
        if trace:
            payload["trace"] = trace  # additive, see complete()
        return self.call("/api/submit", payload)

    def batch(self, batch_id: str) -> Dict[str, object]:
        return self.call(f"/api/batch/{batch_id}")

    def status(self) -> Dict[str, object]:
        return self.call("/api/status")

    def shutdown(self) -> Dict[str, object]:
        return self.call("/api/shutdown", {})

    def metricz(self) -> str:
        """Fetch ``/metricz`` raw — Prometheus text, not JSON, so it
        bypasses :meth:`call`'s JSON decoding."""
        url = f"{self.base_url}/metricz"
        try:
            with urllib.request.urlopen(
                    urllib.request.Request(url, method="GET"),
                    timeout=self.timeout_s) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ClusterError(f"coordinator rejected /metricz: "
                               f"HTTP {error.code}")
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            raise ClusterUnavailable(
                f"coordinator unreachable at {self.base_url}: {error}")
