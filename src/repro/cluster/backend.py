"""Executor-side orchestration of a distributed sweep.

:func:`run_jobs_on_cluster` is what ``SweepExecutor`` calls when its
backend is ``"cluster"``. Two topologies, one code path:

* **External coordinator** (``REPRO_COORDINATOR=http://host:port`` or
  an explicit URL): the sweep is submitted to a long-running
  ``repro-sim cluster coordinator`` shared by many submitters.
* **Embedded coordinator** (no URL configured): the executor hosts a
  coordinator itself — bound to ``REPRO_CLUSTER_BIND`` (default
  ``127.0.0.1:0``) — for the duration of one sweep, and stops it
  (draining registered workers) afterwards.

Either way the contract is: wait up to the grace window for at least
one live worker, else raise
:class:`~repro.errors.ClusterUnavailable` so the executor degrades to
its local process pool; then submit, poll the batch, and return results
*in submission order*. Jobs the cluster could not finish (terminal
retry-budget failures, or a fleet that died mid-batch) come back as
``None`` — the executor completes exactly those in-process, so a sweep
through a flaky fleet still terminates with full, deterministic rows.

Environment knobs (docs/distributed.md §3):

* ``REPRO_COORDINATOR`` — external coordinator URL.
* ``REPRO_CLUSTER_BIND`` — embedded coordinator bind address.
* ``REPRO_CLUSTER_GRACE_S`` — worker-registration grace (default 5).
* ``REPRO_CLUSTER_LEASE_S`` — lease timeout for embedded coordinators.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.coordinator import Coordinator, merge_cluster_metrics
from repro.cluster.protocol import (
    DEFAULT_LEASE_TIMEOUT_S,
    ClusterClient,
    decode_result,
)
from repro.core.executor import ExperimentJob, JobResult, ResultCache
from repro.errors import ClusterError, ClusterUnavailable
from repro.obs import context as tracectx
from repro.telemetry import span

DEFAULT_GRACE_S = 5.0

#: How often the submitter polls its batch.
BATCH_POLL_S = 0.1


def default_grace_s() -> float:
    return float(os.environ.get("REPRO_CLUSTER_GRACE_S", DEFAULT_GRACE_S))


def configured_coordinator() -> Optional[str]:
    return os.environ.get("REPRO_COORDINATOR") or None


def _wait_for_workers(client: ClusterClient, grace_s: float) -> None:
    """Block until the coordinator reports a live worker, else raise."""
    deadline = time.monotonic() + grace_s
    while True:
        status = client.status()
        if int(status.get("workers_alive", 0)) > 0:
            return
        if time.monotonic() >= deadline:
            raise ClusterUnavailable(
                f"no worker registered with {client.base_url} within "
                f"{grace_s:.1f}s grace; degrading to the local backend")
        time.sleep(min(0.05, grace_s / 10.0 or 0.05))


def _poll_batch(client: ClusterClient, batch_id: str,
                grace_s: float) -> Dict[str, object]:
    """Poll until the batch finishes or the fleet dies.

    "Fleet died" means: unfinished jobs, zero live workers, and no
    progress for a full grace window — then the partial batch view is
    returned and the caller completes the remainder locally.
    """
    last_pending: Optional[int] = None
    stalled_since = time.monotonic()
    while True:
        status = client.batch(batch_id)
        if status.get("done"):
            return status
        pending = int(status.get("pending", 0))
        alive = int(status.get("workers_alive", 0))
        now = time.monotonic()
        if pending != last_pending or alive > 0:
            last_pending = pending
            stalled_since = now
        if alive == 0 and now - stalled_since >= grace_s:
            return status  # dead fleet: hand back the partial view
        time.sleep(BATCH_POLL_S)


def run_jobs_on_cluster(
    jobs: Sequence[ExperimentJob],
    cache: Union[ResultCache, None],
    coordinator_url: Optional[str] = None,
    grace_s: Optional[float] = None,
) -> Tuple[List[Optional[JobResult]], Dict[str, object]]:
    """Run ``jobs`` across the fleet; returns ``(results, summary)``.

    ``results`` aligns with ``jobs``; ``None`` marks a job the cluster
    did not finish (unkeyed, terminally failed, or orphaned by a dead
    fleet) that the caller must run locally. ``summary`` is the ledger
    attribution block: coordinator counters, per-worker jobs and wall
    time, and the coordinator's mergeable metrics snapshot (already
    folded into the process-global registry here).

    Raises :class:`ClusterUnavailable` — *before any job runs
    anywhere* — when there is no coordinator or no worker; the caller
    keeps its normal local path as the fallback.
    """
    jobs = list(jobs)
    grace = default_grace_s() if grace_s is None else grace_s
    url = coordinator_url or configured_coordinator()
    embedded: Optional[Coordinator] = None
    if url is None:
        bind = os.environ.get("REPRO_CLUSTER_BIND", "127.0.0.1:0")
        lease_s = float(os.environ.get("REPRO_CLUSTER_LEASE_S",
                                       DEFAULT_LEASE_TIMEOUT_S))
        embedded = Coordinator(bind=bind, cache=cache,
                               lease_timeout_s=lease_s).start()
        url = embedded.url
    client = ClusterClient(url)
    try:
        with span("cluster/batch", jobs=len(jobs), embedded=embedded
                  is not None) as batch_span:
            _wait_for_workers(client, grace)
            # Unkeyed jobs (raw programs, checksum-less shards) cannot
            # be deduped or cached remotely; they stay local.
            keyed = [i for i, job in enumerate(jobs)
                     if job.cache_key() is not None]
            results: List[Optional[JobResult]] = [None] * len(jobs)
            summary: Dict[str, object] = {"coordinator": url,
                                          "embedded": embedded is not None,
                                          "submitted": len(keyed),
                                          "local_jobs": len(jobs) - len(keyed)}
            if keyed:
                # the ambient context (pushed by the executor's trace
                # capture, around the cluster/batch span above) rides
                # the submit payload so coordinator and worker spans
                # join this sweep's trace
                ctx = tracectx.current()
                submitted = client.submit(
                    [jobs[i] for i in keyed],
                    trace=tracectx.to_wire(ctx) if ctx is not None else None)
                batch_id = str(submitted["batch_id"])
                status = _poll_batch(client, batch_id, grace)
                raw_results = status.get("results") or [None] * len(keyed)
                unfinished = 0
                for index, payload in zip(keyed, raw_results):
                    if payload is None:
                        unfinished += 1
                    else:
                        results[index] = decode_result(payload)
                summary["unfinished"] = unfinished
                summary["errors"] = status.get("errors") or {}
                spans = status.get("spans")
                if ctx is not None and isinstance(spans, list):
                    # worker + coordinator span batches; the capture
                    # filters them to this trace before persisting
                    summary["spans"] = [item for item in spans
                                        if isinstance(item, dict)]
            cluster_status = client.status()
            summary["workers"] = cluster_status.get("workers", {})
            summary["counts"] = cluster_status.get("counts", {})
            summary["peaks"] = cluster_status.get("peaks", {})
            metrics = cluster_status.get("metrics")
            if isinstance(metrics, dict):
                merge_cluster_metrics(metrics)
                summary["metrics"] = metrics
            if batch_span is not None:
                batch_span.set(unfinished=summary.get("unfinished", 0),
                               workers=len(summary["workers"]))  # type: ignore[arg-type]
            return results, summary
    except (ClusterError, ClusterUnavailable):
        raise
    finally:
        if embedded is not None:
            embedded.stop(drain=True)
