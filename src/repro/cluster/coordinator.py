"""The cluster coordinator: a stdlib HTTP server over a lease table.

One :class:`Coordinator` owns the job queue for a fleet. It can run
standalone (``repro-sim cluster coordinator``) to serve many sweeps
from many submitters, or *embedded* — started by a
:class:`~repro.core.executor.SweepExecutor` running with
``--backend cluster`` and stopped when its sweep completes.

Responsibilities beyond routing HTTP to the
:class:`~repro.cluster.leases.LeaseTable`:

* **Key derivation.** Submitted job payloads are decoded and keyed by
  ``ExperimentJob.cache_key()`` *on the coordinator*, so the queue's
  dedupe/coalescing identity is exactly the executor cache identity
  and a client can never poison the table with a mismatched key.
  (Submitter, coordinator, and workers must run the same ``repro``
  tree — the code fingerprint is part of every key.)
* **Cache integration.** At submit time each key is probed against the
  shared :class:`~repro.core.executor.ResultCache`; hits are born
  finished and never queued (a restarted coordinator thus rebuilds
  "already done" from the cache). Accepted completions are written
  back with ``put_if_absent`` — first writer wins, duplicates never
  double-count cache statistics.
* **Telemetry.** Queue depth / active leases / worker peaks are kept
  as gauges, robustness events (steals, retries, duplicates,
  failures) as counters, and per-worker attribution as labelled
  counters, all exported as a
  :class:`~repro.telemetry.MetricsRegistry` snapshot in
  ``GET /api/status`` (metric names in docs/observability.md).
"""

from __future__ import annotations

import http.server
import json
import threading
import time
from typing import Dict, List, Optional, Union

from repro import telemetry
from repro.cluster.leases import LeaseTable
from repro.obs import context as tracectx
from repro.obs import prom
from repro.cluster.protocol import (
    DEFAULT_LEASE_TIMEOUT_S,
    DEFAULT_POLL_INTERVAL_S,
    PROTOCOL_VERSION,
    decode_job,
    decode_result,
)
from repro.cluster.retry import RetryPolicy
from repro.core.executor import ResultCache
from repro.errors import ClusterError, ReproError
from repro.telemetry import MetricsRegistry, span
from repro.telemetry.spans import recorder


def parse_bind(bind: str) -> tuple:
    """``"host:port"`` -> ``(host, port)`` (port 0 = ephemeral)."""
    host, _, port = bind.rpartition(":")
    if not host:
        raise ClusterError(f"bad bind address {bind!r}; want host:port")
    try:
        return host, int(port)
    except ValueError:
        raise ClusterError(f"bad bind port in {bind!r}")


class _Handler(http.server.BaseHTTPRequestHandler):
    """Routes /api/* to the owning coordinator; silent access log."""

    protocol_version = "HTTP/1.1"
    coordinator: "Coordinator"  # set on the per-coordinator subclass

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # the coordinator is chatty enough through its metrics

    def _reply(self, payload: Dict[str, object], code: int = 200) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length", "0") or "0")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError as error:
            raise ClusterError(f"request body is not JSON: {error}")
        if not isinstance(payload, dict):
            raise ClusterError("request body must be a JSON object")
        return payload

    def _reply_text(self, body: str, content_type: str,
                    code: int = 200) -> None:
        encoded = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/api/status":
                self._reply(self.coordinator.status())
            elif self.path.startswith("/api/batch/"):
                batch_id = self.path.rsplit("/", 1)[-1]
                self._reply(self.coordinator.batch_status(batch_id))
            elif self.path == "/healthz":
                self._reply(self.coordinator.healthz())
            elif self.path == "/metricz":
                self._reply_text(self.coordinator.metricz(),
                                 prom.CONTENT_TYPE)
            else:
                self._reply({"error": f"unknown path {self.path}"}, 404)
        except ReproError as error:
            self._reply({"error": str(error)}, 400)
        except OSError:  # pragma: no cover - client went away mid-reply
            pass

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            payload = self._read_json()
            handler = {
                "/api/register": self.coordinator.handle_register,
                "/api/lease": self.coordinator.handle_lease,
                "/api/heartbeat": self.coordinator.handle_heartbeat,
                "/api/complete": self.coordinator.handle_complete,
                "/api/fail": self.coordinator.handle_fail,
                "/api/submit": self.coordinator.handle_submit,
                "/api/shutdown": self.coordinator.handle_shutdown,
            }.get(self.path)
            if handler is None:
                self._reply({"error": f"unknown path {self.path}"}, 404)
                return
            self._reply(handler(payload))
        except ReproError as error:
            self._reply({"error": str(error)}, 400)
        except OSError:  # pragma: no cover - client went away mid-reply
            pass


class Coordinator:
    """Serve a work-stealing job queue over localhost/LAN HTTP."""

    def __init__(
        self,
        bind: str = "127.0.0.1:0",
        cache: Union[ResultCache, None, str] = "default",
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        if cache == "default":
            self.cache: Optional[ResultCache] = ResultCache.default()
        else:
            self.cache = cache  # type: ignore[assignment]
        self.poll_interval_s = poll_interval_s
        self.table = LeaseTable(lease_timeout_s=lease_timeout_s,
                                policy=policy)
        self._draining = False
        self._started_ts = time.time()
        self._peaks = {"queue_depth": 0, "active_leases": 0, "workers": 0}
        handler = type("BoundHandler", (_Handler,), {"coordinator": self})
        host, port = parse_bind(bind)
        try:
            self._server = http.server.ThreadingHTTPServer(
                (host, port), handler)
        except OSError as error:
            raise ClusterError(f"cannot bind coordinator to {bind}: {error}")
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "Coordinator":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-cluster-coordinator", daemon=True)
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop serving; with ``drain`` workers are told to shut down
        on their next lease poll before the socket closes."""
        self._draining = drain
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def serve_forever(self) -> None:
        """Blocking serve loop (the standalone CLI path)."""
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._server.server_close()

    # -- peak tracking -------------------------------------------------

    def _track_peaks(self) -> None:
        stats = self.table.stats()
        for gauge, value in (("queue_depth", stats["queue_depth"]),
                             ("active_leases", stats["active_leases"]),
                             ("workers", len(stats["workers"]))):
            if value > self._peaks[gauge]:  # type: ignore[operator]
                self._peaks[gauge] = value  # type: ignore[assignment]

    # -- endpoint handlers ---------------------------------------------

    def handle_register(self, payload: Dict[str, object]) -> Dict[str, object]:
        worker_id = self.table.register(str(payload.get("worker", "")))
        self._track_peaks()
        return {
            "worker_id": worker_id,
            "version": PROTOCOL_VERSION,
            "lease_timeout_s": self.table.lease_timeout_s,
            "poll_interval_s": self.poll_interval_s,
        }

    @staticmethod
    def _tag_span(sp, trace: object) -> None:
        """Attach the submitter's trace identity to an open span.

        Coordinator request spans open *before* the lease table tells
        us which trace the touched job belongs to, so the identity is
        stamped after the fact — the span has not been recorded yet.
        """
        if sp is None or not isinstance(trace, dict):
            return
        ctx = tracectx.from_wire(trace)
        if ctx is None:
            return
        sp.trace_id = ctx.trace_id
        sp.span_id = tracectx.new_span_id()
        sp.parent_id = ctx.span_id or None

    def handle_lease(self, payload: Dict[str, object]) -> Dict[str, object]:
        if self._draining:
            return {"status": "shutdown"}
        with span("cluster/lease") as sp:
            grant = self.table.lease(str(payload.get("worker_id", "")))
            if grant is not None:
                self._tag_span(sp, grant.get("trace"))
        self._track_peaks()
        if grant is None:
            return {"status": "idle",
                    "retry_after_s": self.poll_interval_s}
        grant["status"] = "job"
        return grant

    def handle_heartbeat(self, payload: Dict[str, object]) -> Dict[str, object]:
        lost = self.table.heartbeat(
            str(payload.get("worker_id", "")),
            [str(x) for x in payload.get("lease_ids", [])])  # type: ignore[union-attr]
        return {"ok": True, "lost": lost}

    def handle_complete(self, payload: Dict[str, object]) -> Dict[str, object]:
        result_payload = payload.get("result")
        if not isinstance(result_payload, dict):
            raise ClusterError("complete: missing result object")
        decode_result(result_payload)  # validate before accepting
        key = str(payload.get("key", ""))
        spans_payload = payload.get("spans")
        span_batch: Optional[List[Dict[str, object]]] = None
        if isinstance(spans_payload, list):
            span_batch = [item for item in spans_payload
                          if isinstance(item, dict)]
        with span("cluster/complete", key=key[:12]) as sp:
            verdict = self.table.complete(
                str(payload.get("worker_id", "")),
                str(payload.get("lease_id", "")), key, result_payload,
                spans=span_batch)
            self._tag_span(sp, verdict.pop("trace", None))
        if verdict.get("accepted") and self.cache is not None:
            # first-writer-wins on disk too: a duplicate completion
            # that lost the race above never rewrites the cache entry,
            # so ledger cache statistics count each result once
            self.cache.put_if_absent(
                key, decode_result(result_payload))
        return verdict

    def handle_fail(self, payload: Dict[str, object]) -> Dict[str, object]:
        return self.table.fail(
            str(payload.get("worker_id", "")),
            str(payload.get("lease_id", "")),
            str(payload.get("key", "")),
            str(payload.get("error", "unspecified worker error")))

    def handle_submit(self, payload: Dict[str, object]) -> Dict[str, object]:
        jobs = payload.get("jobs")
        if not isinstance(jobs, list):
            raise ClusterError("submit: missing jobs list")
        trace_wire = payload.get("trace")
        trace_ctx = (tracectx.from_wire(trace_wire)
                     if isinstance(trace_wire, dict) else None)
        keys = []
        # the submitter's context makes the coordinator's own spans
        # (submit, and the cache probes inside) part of the sweep trace
        with tracectx.activate(trace_ctx):
            with span("cluster/submit", jobs=len(jobs)):
                for encoded in jobs:
                    job = decode_job(encoded)
                    key = job.cache_key()
                    if key is None:
                        raise ClusterError(
                            "submit: job has no cache key (raw programs and "
                            "checksum-less shards run on the local backend)")
                    keys.append(key)
                cached: Dict[str, Dict[str, object]] = {}
                if self.cache is not None:
                    for key in keys:
                        hit = self.cache.get(key)
                        if hit is not None:
                            cached[key] = hit.to_json_dict()
                batch_id, stats = self.table.submit(
                    jobs, keys, cached,
                    trace=trace_wire if trace_ctx is not None else None)
        self._track_peaks()
        return {"batch_id": batch_id, "submitted": len(jobs), **stats}

    def handle_shutdown(self, payload: Dict[str, object]) -> Dict[str, object]:
        # shutdown() blocks until serve_forever exits, so it must run
        # off the request thread that is inside serve_forever's handler
        threading.Thread(target=self.stop, daemon=True).start()
        return {"ok": True}

    # -- introspection -------------------------------------------------

    def batch_status(self, batch_id: str) -> Dict[str, object]:
        status = self.table.batch_status(batch_id)
        status["workers_alive"] = self.table.workers_alive()
        if status.get("done") and isinstance(status.get("trace"), dict):
            # piggyback the coordinator's own spans for this trace on
            # the final poll, so the submitter's merged trace covers
            # submit/lease/complete scheduling time too
            ctx = tracectx.from_wire(status["trace"])
            if ctx is not None:
                own = [item.to_json_dict() for item in recorder.records()
                       if item.trace_id == ctx.trace_id]
                merged = status.get("spans")
                status["spans"] = (merged if isinstance(merged, list)
                                   else []) + own
        return status

    def healthz(self) -> Dict[str, object]:
        """Liveness/readiness snapshot (the service has the same shape)."""
        return {
            "ok": True,
            "draining": self._draining,
            "workers_alive": self.table.workers_alive(),
            "queue_depth": self.table.queue_depth(),
            "uptime_s": round(time.time() - self._started_ts, 3),
        }

    def metricz(self) -> str:
        """Prometheus text exposition of the fleet metrics snapshot."""
        stats = self.table.stats()
        return prom.render_prometheus(
            self.metrics_snapshot(),
            extra_gauges={
                "cluster.uptime_s": round(time.time() - self._started_ts, 3),
                "cluster.draining": 1.0 if self._draining else 0.0,
                "cluster.workers_alive": self.table.workers_alive(),
                "cluster.jobs_total": stats["jobs"]["total"],  # type: ignore[index]
            })

    def metrics_snapshot(self) -> Dict[str, object]:
        """Cluster state as a mergeable metrics snapshot.

        Gauges carry peaks (the one order-independent aggregate), so
        merging snapshots from repeated polls never undercounts a
        fleet's high-water utilisation.
        """
        registry = MetricsRegistry()
        stats = self.table.stats()
        for name, value in sorted(stats["counts"].items()):  # type: ignore[union-attr]
            registry.counter(f"cluster.{name}").increment(int(value))
        for gauge, peak in sorted(self._peaks.items()):
            registry.gauge(f"cluster.{gauge}").set(float(peak))
        for name, info in sorted(stats["workers"].items()):  # type: ignore[union-attr]
            registry.counter("cluster.worker.jobs",
                             worker=name).increment(int(info["jobs"]))
            registry.counter("cluster.worker.wall_ms", worker=name).increment(
                int(round(1000.0 * float(info["wall_time_s"]))))
        return registry.snapshot()

    def status(self) -> Dict[str, object]:
        stats = self.table.stats()
        stats["url"] = self.url
        stats["version"] = PROTOCOL_VERSION
        stats["draining"] = self._draining
        stats["workers_alive"] = self.table.workers_alive()
        stats["peaks"] = dict(self._peaks)
        stats["metrics"] = self.metrics_snapshot()
        return stats


def merge_cluster_metrics(snapshot: Dict[str, object]) -> None:
    """Fold a coordinator metrics snapshot into the process-global
    registry (no-op when telemetry is off)."""
    if telemetry.enabled():
        telemetry.metrics().merge(snapshot)
