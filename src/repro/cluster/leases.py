"""The coordinator's state machine: queue, leases, retries, batches.

:class:`LeaseTable` is deliberately transport-free — plain method calls
under one lock, with an injectable clock — so every robustness rule the
cluster promises is unit-testable without sockets:

* **Work stealing.** Workers *pull*: a ``lease`` hands out the oldest
  runnable job. A lease expires ``lease_timeout_s`` after its last
  heartbeat; expired leases are reaped on every table operation and
  their jobs re-queued at the front, which is precisely a steal from a
  dead (or too-slow) worker.
* **Capped retry with backoff.** A reported failure re-queues the job
  with ``not_before = now + policy.delay_s(attempts, key)`` — capped
  exponential backoff with deterministic jitter
  (:mod:`repro.cluster.retry`). A job that exhausts
  ``policy.max_attempts`` executions (failures and steals both count;
  a poison job cannot loop a fleet forever) is terminally FAILED and
  surfaces as an error in its batch, never as a hang.
* **Idempotent completion.** The first completion for a job *key* wins,
  whoever holds the lease; every later completion — a slow worker
  finishing after its job was stolen and recomputed — is discarded and
  counted, never double-applied.
* **Coalescing.** Jobs are keyed by their executor cache key; a key
  submitted twice (same batch or a second concurrent batch) executes
  once, and every submitting batch receives the one result.

State lives only in memory plus the shared
:class:`~repro.core.executor.ResultCache`: the coordinator probes the
cache at submit time and writes accepted results back through
``put_if_absent``, so a restarted coordinator rebuilds "what is already
done" from the cache and re-queues only genuinely unfinished work.
"""

from __future__ import annotations

import collections
import threading
import time
import uuid
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.cluster.retry import RetryPolicy
from repro.cluster.protocol import DEFAULT_LEASE_TIMEOUT_S
from repro.errors import ClusterError

#: Job lifecycle states.
PENDING, LEASED, DONE, FAILED = "pending", "leased", "done", "failed"

#: Cap on the span batch one ``complete`` may attach — a runaway worker
#: cannot balloon coordinator memory; overflow is counted, not fatal.
MAX_SPANS_PER_JOB = 512


class JobRecord:
    """One keyed job and everything the coordinator knows about it."""

    __slots__ = ("key", "payload", "status", "attempts", "steals",
                 "not_before", "lease_id", "worker", "deadline",
                 "result", "error", "from_cache", "trace", "spans")

    def __init__(self, key: str, payload: Dict[str, object]) -> None:
        self.key = key
        self.payload = payload
        self.status = PENDING
        self.attempts = 0          # executions granted so far
        self.steals = 0            # expired-lease requeues
        self.not_before = 0.0      # earliest next lease (backoff)
        self.lease_id: Optional[str] = None
        self.worker: Optional[str] = None
        self.deadline = 0.0
        self.result: Optional[Dict[str, object]] = None
        self.error: Optional[str] = None
        self.from_cache = False    # resolved by the coordinator's cache
        #: Wire-form trace context the submitter attached (repro.obs),
        #: handed to workers with the lease grant.
        self.trace: Optional[Dict[str, object]] = None
        #: Span batch the completing worker shipped back.
        self.spans: Optional[List[Dict[str, object]]] = None


class WorkerInfo:
    """Registration record and per-worker attribution counters."""

    __slots__ = ("worker_id", "name", "registered_at", "last_seen",
                 "jobs_done", "wall_time_s", "leases", "failures")

    def __init__(self, worker_id: str, name: str, now: float) -> None:
        self.worker_id = worker_id
        self.name = name
        self.registered_at = now
        self.last_seen = now
        self.jobs_done = 0
        self.wall_time_s = 0.0
        self.leases = 0
        self.failures = 0


class LeaseTable:
    """Thread-safe job queue with leases, retries, and batches."""

    def __init__(
        self,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        policy: Optional[RetryPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.lease_timeout_s = lease_timeout_s
        self.policy = policy or RetryPolicy()
        self.clock = clock
        self._lock = threading.Lock()
        self._records: Dict[str, JobRecord] = {}
        self._queue: Deque[str] = collections.deque()
        self._batches: Dict[str, List[str]] = {}
        self._batch_traces: Dict[str, Dict[str, object]] = {}
        self._workers: Dict[str, WorkerInfo] = {}
        #: Robustness counters, exported through the coordinator's
        #: metrics snapshot (docs/observability.md).
        self.counts: Dict[str, int] = collections.Counter()

    # -- workers -------------------------------------------------------

    def register(self, name: str) -> str:
        with self._lock:
            worker_id = uuid.uuid4().hex[:12]
            self._workers[worker_id] = WorkerInfo(
                worker_id, name or f"worker-{worker_id[:6]}", self.clock())
            self.counts["registrations"] += 1
            return worker_id

    def _touch(self, worker_id: str) -> Optional[WorkerInfo]:
        info = self._workers.get(worker_id)
        if info is not None:
            info.last_seen = self.clock()
        return info

    def workers_alive(self, ttl_s: Optional[float] = None) -> int:
        """Workers seen within ``ttl_s`` (default: twice the lease
        timeout) — the liveness signal batch pollers use to detect a
        dead fleet."""
        ttl = (2.0 * self.lease_timeout_s) if ttl_s is None else ttl_s
        now = self.clock()
        with self._lock:
            return sum(1 for info in self._workers.values()
                       if now - info.last_seen <= ttl)

    # -- submission ----------------------------------------------------

    def submit(
        self,
        payloads: Sequence[Dict[str, object]],
        keys: Sequence[str],
        cached: Optional[Dict[str, Dict[str, object]]] = None,
        trace: Optional[Dict[str, object]] = None,
    ) -> Tuple[str, Dict[str, int]]:
        """Enqueue one batch of keyed job payloads.

        ``cached`` maps keys the submitter (coordinator) already
        resolved from the result cache to their result payloads; those
        records are born DONE and never reach the queue. Keys already
        known to the table — in flight or finished — are coalesced, not
        re-queued. ``trace`` is the submitter's wire-form trace context;
        it rides on new records (a coalesced record keeps the trace of
        whoever submitted it first) and names the batch's trace for
        span merging in :meth:`batch_status`. Returns
        ``(batch_id, stats)``.
        """
        if len(payloads) != len(keys):
            raise ClusterError("submit: payloads and keys length mismatch")
        if any(not key for key in keys):
            raise ClusterError("submit: every clustered job needs a cache "
                               "key (uncacheable jobs run locally)")
        cached = cached or {}
        stats = {"enqueued": 0, "coalesced": 0, "cache_resolved": 0}
        with self._lock:
            batch_id = uuid.uuid4().hex[:12]
            order: List[str] = []
            for payload, key in zip(payloads, keys):
                order.append(key)
                record = self._records.get(key)
                if record is not None:
                    stats["coalesced"] += 1
                    continue
                record = JobRecord(key, payload)
                record.trace = trace
                self._records[key] = record
                hit = cached.get(key)
                if hit is not None:
                    record.status = DONE
                    record.result = hit
                    record.from_cache = True
                    stats["cache_resolved"] += 1
                else:
                    self._queue.append(key)
                    stats["enqueued"] += 1
            self._batches[batch_id] = order
            if trace is not None:
                self._batch_traces[batch_id] = trace
            self.counts["submitted"] += len(order)
            self.counts["coalesced"] += stats["coalesced"]
            self.counts["cache_resolved"] += stats["cache_resolved"]
            return batch_id, stats

    # -- lease lifecycle -----------------------------------------------

    def _reap_expired(self, now: float) -> None:
        """Re-queue (steal back) every lease past its deadline.

        Called under the lock from every mutating operation, so a dead
        worker's jobs return to the queue the next time *anything*
        touches the table — no background reaper thread to test or to
        crash. Stolen jobs go to the queue *front*: they have waited
        longest and block batch completion.
        """
        for record in self._records.values():
            if record.status is not LEASED or record.deadline > now:
                continue
            record.status = PENDING
            record.lease_id = None
            record.worker = None
            record.steals += 1
            self.counts["steals"] += 1
            if self.policy.exhausted(record.attempts) \
                    and record.attempts >= 1:
                self._fail_terminally(
                    record, "lease expired after "
                    f"{record.attempts} execution(s); retry budget "
                    f"of {self.policy.max_attempts} exhausted")
            else:
                self._queue.appendleft(record.key)

    def _fail_terminally(self, record: JobRecord, error: str) -> None:
        record.status = FAILED
        record.error = error
        self.counts["failures"] += 1

    def lease(self, worker_id: str) -> Optional[Dict[str, object]]:
        """Hand the oldest runnable job to ``worker_id``, or ``None``.

        Jobs still inside their backoff window are skipped (and kept);
        ``None`` means "nothing runnable right now — poll again".
        """
        now = self.clock()
        with self._lock:
            info = self._touch(worker_id)
            if info is None:
                raise ClusterError(f"unknown worker {worker_id!r}; "
                                   "register first")
            self._reap_expired(now)
            deferred: List[str] = []
            granted: Optional[JobRecord] = None
            while self._queue:
                key = self._queue.popleft()
                record = self._records.get(key)
                if record is None or record.status is not PENDING:
                    continue  # completed or failed while queued
                if record.not_before > now:
                    deferred.append(key)
                    continue
                granted = record
                break
            for key in reversed(deferred):
                self._queue.appendleft(key)
            if granted is None:
                return None
            granted.status = LEASED
            granted.lease_id = uuid.uuid4().hex[:12]
            granted.worker = worker_id
            granted.deadline = now + self.lease_timeout_s
            granted.attempts += 1
            info.leases += 1
            self.counts["leases"] += 1
            grant: Dict[str, object] = {
                "lease_id": granted.lease_id,
                "key": granted.key,
                "job": granted.payload,
                "deadline_s": round(self.lease_timeout_s, 3),
                "attempt": granted.attempts,
            }
            if granted.trace is not None:
                grant["trace"] = granted.trace
            return grant

    def heartbeat(self, worker_id: str,
                  lease_ids: Sequence[str]) -> List[str]:
        """Renew the given leases; returns the ids that are *lost*
        (already stolen or completed by someone else)."""
        now = self.clock()
        with self._lock:
            self._touch(worker_id)
            self._reap_expired(now)
            held = {record.lease_id: record
                    for record in self._records.values()
                    if record.status is LEASED}
            lost: List[str] = []
            for lease_id in lease_ids:
                record = held.get(lease_id)
                if record is None:
                    lost.append(lease_id)
                else:
                    record.deadline = now + self.lease_timeout_s
            return lost

    def complete(self, worker_id: str, lease_id: str, key: str,
                 result: Dict[str, object],
                 spans: Optional[List[Dict[str, object]]] = None,
                 ) -> Dict[str, object]:
        """First-writer-wins result acceptance, idempotent on ``key``.

        A completion for an unknown key is rejected; a completion for a
        DONE key is a counted duplicate (the late-result path of the
        chaos tests); anything else is accepted — even when the lease
        was stolen meanwhile, because an identical deterministic result
        arriving early is a win, not a conflict. ``spans`` is the
        worker's span batch for the job (repro.obs): it rides on the
        accepted record, capped at :data:`MAX_SPANS_PER_JOB`, and is
        dropped with a duplicate/rejected completion so a late or
        stolen-lease worker can never pollute a merged trace.
        """
        now = self.clock()
        with self._lock:
            info = self._touch(worker_id)
            self._reap_expired(now)
            record = self._records.get(key)
            if record is None:
                return {"accepted": False, "duplicate": False,
                        "error": f"unknown job key {key!r}"}
            if record.status is DONE:
                self.counts["duplicates"] += 1
                return {"accepted": False, "duplicate": True}
            stale = record.status is LEASED and record.lease_id != lease_id
            if stale:
                self.counts["stale_accepts"] += 1
            record.status = DONE
            record.result = result
            record.lease_id = None
            record.worker = worker_id
            if spans:
                if len(spans) > MAX_SPANS_PER_JOB:
                    self.counts["spans_dropped"] += \
                        len(spans) - MAX_SPANS_PER_JOB
                    spans = spans[:MAX_SPANS_PER_JOB]
                record.spans = spans
            self.counts["completed"] += 1
            if info is not None:
                info.jobs_done += 1
                try:
                    info.wall_time_s += float(
                        result.get("wall_time_s", 0.0) or 0.0)
                except (TypeError, ValueError):
                    pass
            verdict: Dict[str, object] = {"accepted": True,
                                          "duplicate": False}
            if record.trace is not None:
                verdict["trace"] = record.trace
            return verdict

    def fail(self, worker_id: str, lease_id: str, key: str,
             error: str) -> Dict[str, object]:
        """Report a transient failure: backoff-requeue or terminal."""
        now = self.clock()
        with self._lock:
            info = self._touch(worker_id)
            if info is not None:
                info.failures += 1
            self._reap_expired(now)
            record = self._records.get(key)
            if record is None:
                return {"requeued": False, "error": f"unknown key {key!r}"}
            if record.status is DONE:
                self.counts["duplicates"] += 1
                return {"requeued": False, "duplicate": True}
            if record.status is LEASED and record.lease_id != lease_id:
                # the job was stolen already; the stealer owns its fate
                return {"requeued": False, "stale": True}
            record.lease_id = None
            record.worker = None
            self.counts["retries"] += 1
            if self.policy.exhausted(record.attempts):
                self._fail_terminally(
                    record, f"failed {record.attempts} time(s), "
                    f"last error: {error}")
                return {"requeued": False, "terminal": True,
                        "attempts": record.attempts}
            record.status = PENDING
            record.not_before = now + self.policy.delay_s(
                record.attempts, record.key)
            self._queue.append(record.key)
            return {"requeued": True, "attempts": record.attempts,
                    "retry_in_s": round(record.not_before - now, 3)}

    # -- batches and introspection -------------------------------------

    def batch_status(self, batch_id: str) -> Dict[str, object]:
        """Progress of one batch; includes ordered results when done.

        ``results`` holds one entry per submitted job in submission
        order: the result payload for DONE jobs, ``None`` for FAILED
        ones (with the message collected under ``errors``) — the
        partial view the executor's local fallback completes from.
        """
        with self._lock:
            order = self._batches.get(batch_id)
            if order is None:
                raise ClusterError(f"unknown batch {batch_id!r}")
            self._reap_expired(self.clock())
            records = [self._records[key] for key in order]
            pending = sum(1 for r in records
                          if r.status in (PENDING, LEASED))
            failed = {r.key: r.error for r in records
                      if r.status is FAILED}
            done = pending == 0
            status: Dict[str, object] = {
                "batch_id": batch_id,
                "submitted": len(order),
                "pending": pending,
                "failed": len(failed),
                "done": done,
            }
            if done:
                status["results"] = [r.result if r.status is DONE else None
                                     for r in records]
                status["errors"] = failed
                trace = self._batch_traces.get(batch_id)
                if trace is not None:
                    status["trace"] = trace
                    merged: List[Dict[str, object]] = []
                    for record in records:
                        if record.spans:
                            merged.extend(record.spans)
                    status["spans"] = merged
            return status

    def queue_depth(self) -> int:
        with self._lock:
            return sum(1 for key in self._queue
                       if self._records[key].status is PENDING)

    def stats(self) -> Dict[str, object]:
        """One coherent snapshot of queue, leases, workers, counters."""
        now = self.clock()
        with self._lock:
            leased = [r for r in self._records.values()
                      if r.status is LEASED]
            return {
                "queue_depth": sum(
                    1 for key in self._queue
                    if self._records[key].status is PENDING),
                "active_leases": len(leased),
                "jobs": {
                    "total": len(self._records),
                    "done": sum(1 for r in self._records.values()
                                if r.status is DONE),
                    "failed": sum(1 for r in self._records.values()
                                  if r.status is FAILED),
                },
                "counts": dict(self.counts),
                "workers": {
                    info.name: {
                        "worker_id": info.worker_id,
                        "jobs": info.jobs_done,
                        "wall_time_s": round(info.wall_time_s, 6),
                        "leases": info.leases,
                        "failures": info.failures,
                        "idle_s": round(now - info.last_seen, 3),
                    }
                    for info in self._workers.values()
                },
            }
