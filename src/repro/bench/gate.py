"""Compare BENCH_*.json artifacts against a committed baseline.

The gate's contract (see docs/performance.md):

* every bench named in the baseline must be present in the current run
  and produce the same number of table rows (a row-count change means
  the bench measured different work — never acceptable silently);
* each bench's wall time may exceed its baseline by at most the
  tolerance (default 25%); being *faster* never fails, it is reported
  so the baseline can be re-snapshotted;
* benches whose baseline and current wall times are both under the
  noise floor are checked for rows only — sub-100ms timings on shared
  CI runners are noise, not signal;
* the baseline records the scale/seed it was captured at, and a
  current run at a different scale or seed fails immediately: timings
  across scales are not comparable.

Regenerate the baseline with ``repro-sim bench snapshot`` after an
intentional performance change.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Union

from repro.errors import ReproError

#: Bump when the baseline JSON layout changes.
BASELINE_SCHEMA = 1

#: Wall-time headroom a bench may use before the gate fails it.
DEFAULT_TOLERANCE = 0.25

#: Benches faster than this (baseline and current) are rows-only: the
#: timing is runner noise.
DEFAULT_MIN_WALL_S = 0.2

Pathish = Union[str, pathlib.Path]


class BenchGateError(ReproError):
    """The comparison itself could not run (missing or invalid files)."""


@dataclasses.dataclass(frozen=True)
class BenchCheck:
    """One bench's verdict against the baseline."""

    name: str
    #: "ok" | "faster" | "slower" | "rows-changed" | "missing" |
    #: "untracked" (present in the run, absent from the baseline).
    status: str
    detail: str
    baseline_wall_s: Optional[float] = None
    current_wall_s: Optional[float] = None
    ratio: Optional[float] = None
    baseline_rows: Optional[int] = None
    current_rows: Optional[int] = None

    @property
    def failed(self) -> bool:
        return self.status in ("slower", "rows-changed", "missing")


def load_bench_dir(out_dir: Pathish) -> Dict[str, Dict[str, object]]:
    """Parse every ``BENCH_*.json`` under ``out_dir``, keyed by name."""
    out = pathlib.Path(out_dir)
    if not out.is_dir():
        raise BenchGateError(f"bench output directory {out} does not exist")
    benches: Dict[str, Dict[str, object]] = {}
    for path in sorted(out.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise BenchGateError(f"unreadable bench artifact {path}: {error}")
        try:
            benches[str(payload["name"])] = {
                "wall_time_s": float(payload["wall_time_s"]),
                "rows": len(payload["rows"]),
                "scale": payload.get("scale"),
                "seed": payload.get("seed"),
            }
        except (KeyError, TypeError, ValueError) as error:
            raise BenchGateError(f"malformed bench artifact {path}: {error}")
    if not benches:
        raise BenchGateError(f"no BENCH_*.json artifacts under {out}")
    return benches


def snapshot_baseline(
    out_dir: Pathish,
    tolerance: float = DEFAULT_TOLERANCE,
    note: str = "",
) -> Dict[str, object]:
    """Freeze a bench run into a baseline payload."""
    benches = load_bench_dir(out_dir)
    scales = {entry["scale"] for entry in benches.values()}
    seeds = {entry["seed"] for entry in benches.values()}
    if len(scales) > 1 or len(seeds) > 1:
        raise BenchGateError(
            f"mixed scale/seed in {out_dir}: scales={sorted(map(str, scales))},"
            f" seeds={sorted(map(str, seeds))}; snapshot one run at a time"
        )
    return {
        "schema": BASELINE_SCHEMA,
        "tolerance": tolerance,
        "note": note,
        "source": {"scale": scales.pop(), "seed": seeds.pop()},
        "benches": {
            name: {"wall_time_s": entry["wall_time_s"], "rows": entry["rows"]}
            for name, entry in sorted(benches.items())
        },
    }


def write_baseline(
    out_dir: Pathish,
    baseline_path: Pathish,
    tolerance: float = DEFAULT_TOLERANCE,
    note: str = "",
) -> Dict[str, object]:
    """Snapshot ``out_dir`` and write the baseline JSON file."""
    payload = snapshot_baseline(out_dir, tolerance=tolerance, note=note)
    path = pathlib.Path(baseline_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def load_baseline(path: Pathish) -> Dict[str, object]:
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise BenchGateError(f"unreadable baseline {path}: {error}")
    if payload.get("schema") != BASELINE_SCHEMA:
        raise BenchGateError(
            f"baseline {path}: schema {payload.get('schema')!r}, "
            f"expected {BASELINE_SCHEMA}"
        )
    if not isinstance(payload.get("benches"), dict) or not payload["benches"]:
        raise BenchGateError(f"baseline {path} names no benches")
    return payload


def compare_against_baseline(
    baseline: Dict[str, object],
    out_dir: Pathish,
    tolerance: Optional[float] = None,
    min_wall_s: float = DEFAULT_MIN_WALL_S,
) -> List[BenchCheck]:
    """Check one bench run against a loaded baseline.

    ``tolerance`` defaults to the value recorded in the baseline file
    (itself defaulting to 25%). Returns one :class:`BenchCheck` per
    baseline bench plus an ``untracked`` entry per extra bench in the
    run; the gate fails iff any check's ``failed`` flag is set.
    """
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    if tolerance < 0:
        raise BenchGateError(f"tolerance must be >= 0, got {tolerance}")
    current = load_bench_dir(out_dir)
    checks: List[BenchCheck] = []
    source = baseline.get("source") or {}
    for name, entry in current.items():
        for key in ("scale", "seed"):
            want, got = source.get(key), entry.get(key)
            if want is not None and got is not None and want != got:
                raise BenchGateError(
                    f"bench {name}: {key} mismatch: baseline recorded "
                    f"{key}={want}, current run used {key}={got}; "
                    f"timings are not comparable across {key}s"
                )
    benches = baseline["benches"]
    for name in sorted(benches):
        base = benches[name]
        base_wall = float(base["wall_time_s"])  # type: ignore[arg-type]
        base_rows = int(base["rows"])  # type: ignore[arg-type]
        got = current.get(name)
        if got is None:
            checks.append(
                BenchCheck(
                    name=name,
                    status="missing",
                    detail="bench named in the baseline was not produced",
                    baseline_wall_s=base_wall,
                    baseline_rows=base_rows,
                )
            )
            continue
        cur_wall = float(got["wall_time_s"])  # type: ignore[arg-type]
        cur_rows = int(got["rows"])  # type: ignore[arg-type]
        ratio = cur_wall / base_wall if base_wall > 0 else None
        common = dict(
            name=name,
            baseline_wall_s=base_wall,
            current_wall_s=cur_wall,
            ratio=None if ratio is None else round(ratio, 3),
            baseline_rows=base_rows,
            current_rows=cur_rows,
        )
        if cur_rows != base_rows:
            checks.append(
                BenchCheck(
                    status="rows-changed",
                    detail=f"rows: found {cur_rows}, expected {base_rows}",
                    **common,
                )
            )
            continue
        if base_wall <= min_wall_s and cur_wall <= min_wall_s:
            checks.append(
                BenchCheck(
                    status="ok",
                    detail=f"under the {min_wall_s}s noise floor; rows only",
                    **common,
                )
            )
            continue
        limit = base_wall * (1.0 + tolerance)
        if cur_wall > limit:
            checks.append(
                BenchCheck(
                    status="slower",
                    detail=(
                        f"wall {cur_wall:.3f}s exceeds {base_wall:.3f}s "
                        f"+{tolerance:.0%} (limit {limit:.3f}s)"
                    ),
                    **common,
                )
            )
        elif base_wall > 0 and cur_wall < base_wall / (1.0 + tolerance):
            checks.append(
                BenchCheck(
                    status="faster",
                    detail=(
                        f"wall {cur_wall:.3f}s beats {base_wall:.3f}s; "
                        f"consider re-snapshotting the baseline"
                    ),
                    **common,
                )
            )
        else:
            checks.append(
                BenchCheck(status="ok", detail="within tolerance", **common)
            )
    for name in sorted(set(current) - set(benches)):
        entry = current[name]
        checks.append(
            BenchCheck(
                name=name,
                status="untracked",
                detail="not in the baseline; add it with bench snapshot",
                current_wall_s=float(entry["wall_time_s"]),  # type: ignore[arg-type]
                current_rows=int(entry["rows"]),  # type: ignore[arg-type]
            )
        )
    return checks


def render_report(checks: List[BenchCheck], tolerance: float) -> str:
    """Human-readable verdict table, one line per bench."""
    lines = [f"bench gate (tolerance {tolerance:.0%}):"]
    for check in checks:
        if check.baseline_wall_s is None:
            wall = "n/a"
        elif check.current_wall_s is None:
            wall = f"{check.baseline_wall_s:.3f}s -> n/a"
        else:
            wall = (
                f"{check.baseline_wall_s:.3f}s -> "
                f"{check.current_wall_s:.3f}s"
            )
        ratio = "" if check.ratio is None else f" ({check.ratio:.2f}x)"
        flag = "FAIL" if check.failed else "  ok"
        lines.append(
            f"  {flag}  {check.name}: {check.status} [{wall}{ratio}] "
            f"{check.detail}"
        )
    failed = [check.name for check in checks if check.failed]
    if failed:
        lines.append(f"REGRESSION: {', '.join(failed)}")
    else:
        lines.append("all benches within tolerance")
    return "\n".join(lines)
