"""Benchmark baseline management and the CI performance-regression gate.

The benchmark harness persists one ``BENCH_<name>.json`` per target
(rows + wall time + scale/seed; see ``benchmarks/conftest.py``). This
package turns those artifacts into a regression gate:

* :func:`snapshot_baseline` freezes a bench run into a committed
  baseline file (``benchmarks/baselines/smoke.json``);
* :func:`compare_against_baseline` checks a fresh run against the
  baseline — wall times within a configurable tolerance, row counts
  exactly — and reports per-bench verdicts CI can fail on.

The CLI front end is ``repro-sim bench compare`` / ``bench snapshot``;
the CI wiring is documented in docs/performance.md.
"""

from repro.bench.gate import (
    BASELINE_SCHEMA,
    DEFAULT_MIN_WALL_S,
    DEFAULT_TOLERANCE,
    BenchCheck,
    BenchGateError,
    compare_against_baseline,
    load_baseline,
    load_bench_dir,
    render_report,
    snapshot_baseline,
    write_baseline,
)

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_MIN_WALL_S",
    "DEFAULT_TOLERANCE",
    "BenchCheck",
    "BenchGateError",
    "compare_against_baseline",
    "load_baseline",
    "load_bench_dir",
    "render_report",
    "snapshot_baseline",
    "write_baseline",
]
