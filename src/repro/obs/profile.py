"""Opt-in sampling profiler: signal-free, stdlib-only, thread-based.

Set ``REPRO_PROFILE=1`` and every sweep attaches a collapsed-stack
profile of its submitting thread to the ledger entry (under the
nondeterministic ``profile`` key) and to the trace store, powering
``repro-sim trace flame``.

The sampler is a daemon thread polling ``sys._current_frames()`` every
few milliseconds — no signals (safe inside the asyncio service and
pool workers), no C extensions, and zero cost when the env var is off.
Sampling bias: it sees only what the *target thread* is doing when the
sampler wakes, which is exactly the statistical view a flamegraph
wants. Stacks are collapsed to the standard ``root;...;leaf count``
format (Brendan Gregg's flamegraph.pl / speedscope both eat it).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List, Optional

ENV_PROFILE = "REPRO_PROFILE"

DEFAULT_INTERVAL_S = 0.005
#: Hard cap on distinct stacks kept — a pathological workload cannot
#: balloon the ledger entry.
MAX_STACKS = 4096


def profiling_enabled() -> bool:
    return os.environ.get(ENV_PROFILE, "").strip().lower() in (
        "1", "true", "on", "yes",
    )


def _frame_label(frame) -> str:
    name = frame.f_code.co_name
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{name}"


def _collapse(frame) -> str:
    parts: List[str] = []
    while frame is not None:
        parts.append(_frame_label(frame))
        frame = frame.f_back
    parts.reverse()  # root first, leaf last — collapsed-stack order
    return ";".join(parts)


class SamplingProfiler:
    """Samples one thread's stack until stopped.

    >>> profiler = SamplingProfiler().start()
    >>> ...                       # the work being profiled
    >>> profiler.stop()
    >>> profiler.collapsed()      # ["mod.f;mod.g 42", ...]
    """

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S,
                 target_tid: Optional[int] = None) -> None:
        self.interval_s = max(0.001, float(interval_s))
        self.target_tid = target_tid
        self.samples = 0
        self.counts: Dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.started_s: float = 0.0
        self.duration_s: float = 0.0

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        if self.target_tid is None:
            self.target_tid = threading.get_ident()
        self.started_s = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            frames = sys._current_frames()
            frame = frames.get(self.target_tid)
            if frame is None:
                continue
            stack = _collapse(frame)
            if stack in self.counts or len(self.counts) < MAX_STACKS:
                self.counts[stack] = self.counts.get(stack, 0) + 1
            self.samples += 1

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        self.duration_s = time.perf_counter() - self.started_s
        return self

    def collapsed(self, limit: Optional[int] = None) -> List[str]:
        """``stack count`` lines, hottest first."""
        ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if limit is not None:
            ranked = ranked[:limit]
        return [f"{stack} {count}" for stack, count in ranked]

    def summary(self, top: int = 40) -> Optional[Dict[str, object]]:
        """Compact dict for a ledger entry, or None if nothing sampled."""
        if not self.samples:
            return None
        ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return {
            "samples": self.samples,
            "interval_ms": round(self.interval_s * 1000.0, 3),
            "duration_s": round(self.duration_s, 3),
            "stacks": {stack: count for stack, count in ranked[:top]},
        }


def render_flame(collapsed_lines: List[str], width: int = 100,
                 limit: int = 30) -> str:
    """ASCII flame summary from collapsed-stack lines.

    Not a full flamegraph (that is what the speedscope/flamegraph.pl
    export is for) — a terminal-friendly hottest-stacks table with
    leaf-frame rollup, which is what you read first anyway.
    """
    stacks: List[tuple] = []
    leaf_totals: Dict[str, int] = {}
    total = 0
    for line in collapsed_lines:
        line = line.strip()
        if not line:
            continue
        stack, _, count_text = line.rpartition(" ")
        try:
            count = int(count_text)
        except ValueError:
            continue
        if not stack:
            continue
        stacks.append((count, stack))
        leaf = stack.rsplit(";", 1)[-1]
        leaf_totals[leaf] = leaf_totals.get(leaf, 0) + count
        total += count
    if not total:
        return "(no profile samples)"
    stacks.sort(key=lambda item: (-item[0], item[1]))
    bar_width = 24
    lines = [f"{total} samples · {len(stacks)} distinct stacks",
             "", "hot leaves:"]
    for leaf, count in sorted(leaf_totals.items(),
                              key=lambda kv: (-kv[1], kv[0]))[:10]:
        share = count / total
        bar = "#" * max(1, int(share * bar_width))
        lines.append(f"  {share * 100:5.1f}% {bar:<{bar_width}} {leaf}")
    lines.append("")
    lines.append("hot stacks:")
    for count, stack in stacks[:limit]:
        share = count / total
        tail = stack.split(";")
        shown = ";".join(tail[-4:])
        if len(tail) > 4:
            shown = "…;" + shown
        lines.append(f"  {share * 100:5.1f}% ({count:>5}) {shown[:width - 18]}")
    return "\n".join(lines)
