"""Structured stderr logging with trace correlation.

Every fleet process (coordinator, worker, service) logs through
:func:`logger`. The default rendering is the plain text the CLI has
always printed — existing line shapes are preserved exactly, because
CI and shell pipelines parse them (``sed -n 's/.*listening at //p'``).
Setting ``REPRO_LOG_FORMAT=json`` switches every line to one JSON
object with ``ts``/``level``/``component``/``event`` plus any fields,
and automatic ``trace_id`` (and ``run_id``) correlation pulled from
the ambient trace context / explicit fields — ready for ingestion.

Usage::

    from repro.obs.log import logger
    log = logger("coordinator")
    log.info(f"listening at {url} (lease timeout {lease:g}s)")
    log.info("batch done", run_id=run_id, jobs=12)

In text mode extra fields append as ``key=value`` pairs *after* the
event, so events that end in a parsed value (URLs) must carry it in
the event string itself, not as a field.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Optional, TextIO

from repro.obs import context as tracectx

ENV_FORMAT = "REPRO_LOG_FORMAT"

_LEVELS = ("debug", "info", "warning", "error")


def json_mode() -> bool:
    return os.environ.get(ENV_FORMAT, "").strip().lower() == "json"


class StructLogger:
    """One component's logger; stateless beyond the component name."""

    def __init__(self, component: str,
                 stream: Optional[TextIO] = None) -> None:
        self.component = component
        self._stream = stream

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    def _emit(self, level: str, event: str, fields: dict) -> None:
        try:
            if json_mode():
                payload = {
                    "ts": round(time.time(), 3),
                    "level": level,
                    "component": self.component,
                    "event": event,
                }
                ctx = tracectx.current()
                if ctx is not None:
                    payload.setdefault("trace_id", ctx.trace_id)
                for key, value in fields.items():
                    if value is not None:
                        payload[key] = value
                line = json.dumps(payload, default=str)
            else:
                parts = [f"{self.component} {event}"]
                parts.extend(f"{key}={value}" for key, value in fields.items()
                             if value is not None)
                line = " ".join(parts)
            print(line, file=self.stream, flush=True)
        except (OSError, ValueError):
            pass  # a dead stderr must never take the fleet down

    def debug(self, event: str, **fields: object) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._emit("error", event, fields)


def logger(component: str, stream: Optional[TextIO] = None) -> StructLogger:
    return StructLogger(component, stream)
