"""Trace-context propagation for distributed spans.

A :class:`TraceContext` names the trace a piece of work belongs to
(``trace_id``) and the span that work is nested under (``span_id``).
Contexts live on a per-thread stack: ``span()`` in
``repro.telemetry.spans`` pushes a child context while a span is open,
so any span recorded inside inherits the correct parent.  Crossing a
process or HTTP boundary serialises the current context with
:func:`to_wire` / :func:`format_traceparent` and rebuilds it on the far
side with :func:`from_wire` / :func:`parse_traceparent`.

This module must not import anything from ``repro.telemetry`` — the
span recorder imports *us* at module load.
"""

from __future__ import annotations

import os
import re
import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

TRACE_ID_LEN = 32
SPAN_ID_LEN = 16

ENV_TRACE = "REPRO_TRACE"

_HEX_RE = re.compile(r"^[0-9a-f]+$")


@dataclass(frozen=True)
class TraceContext:
    """The ambient trace identity for work happening on this thread.

    ``span_id`` is the id of the *enclosing* span — the parent any new
    span should attach to.  An empty ``span_id`` marks a trace root:
    spans opened under it become roots of the span tree.
    """

    trace_id: str
    span_id: str = ""


class _Stack(threading.local):
    def __init__(self) -> None:
        self.items: list = []


_stack = _Stack()


def new_trace_id() -> str:
    return uuid.uuid4().hex


def new_span_id() -> str:
    return uuid.uuid4().hex[:SPAN_ID_LEN]


def tracing_enabled() -> bool:
    """Trace propagation is on by default; ``REPRO_TRACE=0`` disables it.

    Tracing only changes which *extra* fields ride on spans and ledger
    entries — all of them sit behind ``deterministic_view``, so results
    are bit-identical either way (asserted in tests).
    """
    return os.environ.get(ENV_TRACE, "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def current() -> Optional[TraceContext]:
    """The innermost active context on this thread, or None."""
    items = _stack.items
    return items[-1] if items else None


def push(ctx: TraceContext) -> int:
    """Push ``ctx``; returns a token for :func:`pop`."""
    _stack.items.append(ctx)
    return len(_stack.items) - 1


def pop(token: int) -> None:
    """Pop back to the depth recorded by :func:`push`.

    Truncating (rather than popping one element) keeps the stack sane
    even if a nested frame leaked a push.
    """
    del _stack.items[token:]


@contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Run a block with ``ctx`` as the ambient trace context."""
    if ctx is None:
        yield None
        return
    token = push(ctx)
    try:
        yield ctx
    finally:
        pop(token)


def _valid_id(value: object, length: int) -> bool:
    return (isinstance(value, str) and len(value) == length
            and bool(_HEX_RE.match(value)) and set(value) != {"0"})


def format_traceparent(ctx: TraceContext) -> str:
    """W3C-style ``traceparent``: ``00-<trace_id>-<span_id>-01``."""
    span_id = ctx.span_id if _valid_id(ctx.span_id, SPAN_ID_LEN) else new_span_id()
    return f"00-{ctx.trace_id}-{span_id}-01"


def parse_traceparent(header: object) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header; None on any malformation.

    Only the version-00 shape is accepted; the parent span id becomes
    the context's ``span_id`` so spans opened under it attach to the
    caller's span.
    """
    if not isinstance(header, str):
        return None
    parts = header.strip().lower().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if version != "00" or not _HEX_RE.match(flags or "x"):
        return None
    if not _valid_id(trace_id, TRACE_ID_LEN):
        return None
    if not _valid_id(span_id, SPAN_ID_LEN):
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


def to_wire(ctx: TraceContext) -> dict:
    """JSON-safe form for job payloads and lease grants."""
    wire = {"trace_id": ctx.trace_id}
    if ctx.span_id:
        wire["parent_id"] = ctx.span_id
    return wire


def from_wire(payload: object) -> Optional[TraceContext]:
    """Rebuild a context from :func:`to_wire` output; None if invalid."""
    if not isinstance(payload, Mapping):
        return None
    trace_id = payload.get("trace_id")
    if not _valid_id(trace_id, TRACE_ID_LEN):
        return None
    parent = payload.get("parent_id")
    span_id = parent if _valid_id(parent, SPAN_ID_LEN) else ""
    return TraceContext(trace_id=trace_id, span_id=span_id)
