"""Per-sweep trace capture: collect local + remote spans, persist them.

``SweepExecutor._run_all`` opens a :class:`TraceCapture` around each
sweep. The capture:

1. establishes a root trace context on the submitting thread (unless
   one is already active — e.g. the service layer opened a trace for
   the whole HTTP job, in which case the sweep joins that trace);
2. subscribes to the process-global span recorder and collects every
   span tagged with this trace's id (serial jobs, cache probes, the
   ``sweep/run`` root itself);
3. accepts remote span batches — pool workers return them with their
   results, cluster workers ship them on ``complete`` payloads and the
   coordinator piggybacks its own on ``batch_status``;
4. optionally runs the sampling profiler (``REPRO_PROFILE=1``); and
5. on close, writes the merged trace to the :class:`TraceStore` next
   to the ledger.

``begin`` returns ``None`` when telemetry or tracing is off, so the
executor's hot path stays a single ``is not None`` check.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs import context as tracectx
from repro.obs import profile as profiling
from repro.obs.store import TraceStore
from repro.telemetry import state
from repro.telemetry.spans import Span, recorder


class TraceCapture:
    def __init__(self, store: Optional[TraceStore],
                 trace_id: str, ctx_token: Optional[int]) -> None:
        self.store = store
        self.trace_id = trace_id
        self._ctx_token = ctx_token
        self._spans: List[Dict[str, object]] = []
        # span_ids already merged: with an embedded coordinator its
        # spans arrive twice (recorded in-process AND shipped back on
        # batch_status), and dedup here keeps the trace single-copy
        self._seen: set = set()
        self._sealed = False
        self._closed = False
        self._profiler: Optional[profiling.SamplingProfiler] = None
        if profiling.profiling_enabled():
            self._profiler = profiling.SamplingProfiler().start()

        def _collect(item: Span) -> None:
            if item.trace_id == trace_id:
                self._add(item.to_json_dict())

        self._token: Optional[int] = recorder.subscribe(_collect)

    def _add(self, item: Dict[str, object]) -> bool:
        span_id = item.get("span_id")
        if span_id is not None:
            if span_id in self._seen:
                return False
            self._seen.add(span_id)
        self._spans.append(item)
        return True

    @classmethod
    def begin(cls, store: Optional[TraceStore]) -> Optional["TraceCapture"]:
        """Start capturing for the current sweep, or None if tracing is
        off. Joins the ambient trace when one exists; otherwise mints a
        fresh ``trace_id`` and pushes a root context."""
        if not state.enabled() or not tracectx.tracing_enabled():
            return None
        ctx = tracectx.current()
        token: Optional[int] = None
        if ctx is None:
            ctx = tracectx.TraceContext(tracectx.new_trace_id(), "")
            token = tracectx.push(ctx)
        return cls(store, ctx.trace_id, token)

    def add_spans(self, spans: object) -> int:
        """Merge a remote span batch (list of dicts); returns accepted.

        Anything that is not a dict carrying *this* trace's id is
        dropped — a crashed worker's garbage cannot pollute the trace.
        """
        if not isinstance(spans, list):
            return 0
        accepted = 0
        for item in spans:
            if isinstance(item, dict) and item.get("trace_id") == self.trace_id:
                if self._add(item):
                    accepted += 1
        return accepted

    def seal(self) -> None:
        """Stop collecting (subscriber + profiler); idempotent.

        Called before the ledger entry is built so the profile summary
        can ride on it; ``close`` still runs later for persistence.
        """
        if self._sealed:
            return
        self._sealed = True
        if self._token is not None:
            recorder.unsubscribe(self._token)
            self._token = None
        if self._profiler is not None:
            self._profiler.stop()

    def profile_summary(self) -> Optional[Dict[str, object]]:
        if self._profiler is None:
            return None
        return self._profiler.summary()

    def close(self) -> None:
        """Seal, pop the root context, persist the merged trace."""
        if self._closed:
            return
        self._closed = True
        self.seal()
        if self._ctx_token is not None:
            tracectx.pop(self._ctx_token)
            self._ctx_token = None
        if self.store is not None and self._spans:
            self.store.append(self.trace_id, self._spans)
        if (self.store is not None and self._profiler is not None
                and self._profiler.samples):
            self.store.write_profile(
                self.trace_id, "\n".join(self._profiler.collapsed()) + "\n")
