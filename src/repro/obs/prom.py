"""Prometheus text-format rendering of MetricsRegistry snapshots.

One function, :func:`render_prometheus`, turns any snapshot produced by
``MetricsRegistry.snapshot()`` (sections ``counters`` / ``gauges`` /
``rates`` / ``histograms``, keys shaped ``name{k=v,...}`` by
``metric_key``) into the Prometheus text exposition format, version
0.0.4. It backs the service ``/metricz`` (``?format=prom``), the
coordinator ``/metricz``, and ``repro-sim cluster status --prom``.

Mapping:

- counters     → ``<prefix>_<name>_total``            (TYPE counter)
- gauges       → ``<prefix>_<name>``                  (TYPE gauge)
- rates        → ``..._hits_total`` + ``..._events_total``
- histograms   → ``..._bucket_total{bucket="v"}`` + ``..._count_total``
  (our histograms count discrete recorded values, not cumulative
  ``le`` buckets, so they export as labelled counters)

:func:`validate` is a strict parser used by tests and CI to prove the
output actually *is* well-formed exposition text.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Tuple

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_OK = re.compile(r"[^a-zA-Z0-9_]")
_LINE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"                 # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\")*\})?"
    r" -?[0-9.eE+-]+(?: [0-9]+)?$")


def _metric_name(prefix: str, raw: str, suffix: str = "") -> str:
    name = _NAME_OK.sub("_", raw.strip().replace(".", "_").replace("/", "_"))
    name = re.sub(r"_+", "_", name).strip("_") or "metric"
    if name[0].isdigit():
        name = "_" + name
    return f"{prefix}_{name}{suffix}" if prefix else f"{name}{suffix}"


def _split_key(key: str) -> Tuple[str, List[Tuple[str, str]]]:
    """``name{a=1,b=x}`` → (name, [(a, "1"), (b, "x")])."""
    if "{" not in key:
        return key, []
    name, _, rest = key.partition("{")
    rest = rest.rstrip("}")
    labels: List[Tuple[str, str]] = []
    for part in rest.split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        labels.append((label, value))
    return name, labels


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _render_labels(labels: List[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    parts = []
    for label, value in sorted(labels):
        label = _LABEL_OK.sub("_", label) or "label"
        if label[0].isdigit():
            label = "_" + label
        parts.append(f'{label}="{_escape(str(value))}"')
    return "{" + ",".join(parts) + "}"


def _fmt(value: object) -> str:
    try:
        number = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "0"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(snapshot: Mapping[str, Mapping[str, object]],
                      prefix: str = "repro",
                      extra_gauges: Optional[Mapping[str, object]] = None,
                      ) -> str:
    """Render a metrics snapshot as Prometheus exposition text."""
    families: Dict[str, Tuple[str, List[str]]] = {}

    def sample(family: str, kind: str, labels: List[Tuple[str, str]],
               value: object) -> None:
        entry = families.setdefault(family, (kind, []))
        entry[1].append(f"{family}{_render_labels(labels)} {_fmt(value)}")

    for key, value in (snapshot.get("counters") or {}).items():
        name, labels = _split_key(str(key))
        sample(_metric_name(prefix, name, "_total"), "counter", labels, value)
    for key, value in (snapshot.get("gauges") or {}).items():
        name, labels = _split_key(str(key))
        sample(_metric_name(prefix, name), "gauge", labels, value)
    for key, value in (snapshot.get("rates") or {}).items():
        name, labels = _split_key(str(key))
        hits = events = 0
        if isinstance(value, Mapping):
            hits = value.get("hits", 0)
            events = value.get("events", 0)
        sample(_metric_name(prefix, name, "_hits_total"), "counter",
               labels, hits)
        sample(_metric_name(prefix, name, "_events_total"), "counter",
               labels, events)
    for key, value in (snapshot.get("histograms") or {}).items():
        name, labels = _split_key(str(key))
        total = 0
        if isinstance(value, Mapping):
            for bucket, count in value.items():
                sample(_metric_name(prefix, name, "_bucket_total"), "counter",
                       labels + [("bucket", str(bucket))], count)
                try:
                    total += int(count)  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    pass
        sample(_metric_name(prefix, name, "_count_total"), "counter",
               labels, total)
    for key, value in (extra_gauges or {}).items():
        sample(_metric_name(prefix, str(key)), "gauge", [], value)

    lines: List[str] = []
    for family in sorted(families):
        kind, samples = families[family]
        lines.append(f"# TYPE {family} {kind}")
        lines.extend(sorted(samples))
    return "\n".join(lines) + ("\n" if lines else "")


def validate(text: str) -> int:
    """Strictly validate exposition text; returns the sample count.

    Raises ``ValueError`` naming the first malformed line. Used by
    tests and the CI smoke jobs to assert ``/metricz`` output parses.
    """
    samples = 0
    seen_types: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[2] in seen_types:
                    raise ValueError(
                        f"line {lineno}: duplicate TYPE for {parts[2]}")
                if parts[3] not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                    raise ValueError(
                        f"line {lineno}: bad TYPE kind {parts[3]!r}")
                seen_types[parts[2]] = parts[3]
            continue
        if not _LINE_RE.match(line):
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        samples += 1
    return samples
