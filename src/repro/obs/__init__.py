"""Distributed observability on top of ``repro.telemetry``.

The telemetry layer (spans, metrics, ledger) is deliberately
process-local; this package makes it fleet-wide:

- ``repro.obs.context`` — trace-context propagation (``trace_id`` /
  ``span_id`` / ``parent_id``) across threads, processes, and HTTP hops
  (W3C-style ``traceparent``).
- ``repro.obs.capture`` — per-sweep span collection into a trace store.
- ``repro.obs.store`` — JSONL trace store next to the result cache.
- ``repro.obs.analysis`` — waterfall / critical-path / Chrome-trace
  rendering of merged traces.
- ``repro.obs.profile`` — opt-in sampling profiler (``REPRO_PROFILE=1``).
- ``repro.obs.prom`` — Prometheus text rendering of metrics snapshots.
- ``repro.obs.log`` — structured stderr logging (``REPRO_LOG_FORMAT=json``).

Submodules are imported by path (``from repro.obs import context``)
rather than re-exported here: ``repro.telemetry.spans`` imports
``repro.obs.context`` at module load, so this ``__init__`` must stay
free of imports that reach back into ``repro.telemetry``.
"""

__all__ = [
    "analysis",
    "capture",
    "context",
    "log",
    "profile",
    "prom",
    "store",
]
