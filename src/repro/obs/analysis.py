"""Trace analysis: span tree, ASCII waterfall, critical path, export.

All functions work on plain span dicts as produced by
``Span.to_json_dict`` and merged by :mod:`repro.obs.store` — keys
``name``/``ts``/``ms``/``pid``/``tid``/``span_id``/``parent_id``/
``attrs``. Spans missing identity fields are tolerated (they render as
roots); the analyses never assume a complete tree because a crashed
worker may legitimately leave holes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: attrs worth showing inline on waterfall rows, in display order.
_LABEL_ATTRS = ("engine", "workload", "sweep", "worker", "key", "jobs",
                "submitted", "outcome")


def _num(value: object, default: float = 0.0) -> float:
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return default


def _start(span: Dict[str, object]) -> float:
    return _num(span.get("ts"), _num(span.get("start_s")))


def _end(span: Dict[str, object]) -> float:
    return _start(span) + _num(span.get("ms")) / 1000.0


def build_tree(spans: Sequence[Dict[str, object]],
               ) -> Tuple[List[Dict[str, object]],
                          Dict[str, List[Dict[str, object]]]]:
    """Group spans into ``(roots, children_by_parent_id)``.

    A span is a root when it has no ``parent_id`` or its parent is not
    present in the merged trace (e.g. lost with a killed worker).
    Both lists come back ordered by wall start time.
    """
    by_id = {s.get("span_id"): s for s in spans if s.get("span_id")}
    roots: List[Dict[str, object]] = []
    children: Dict[str, List[Dict[str, object]]] = {}
    for item in spans:
        parent = item.get("parent_id")
        if parent and parent in by_id and by_id[parent] is not item:
            children.setdefault(str(parent), []).append(item)
        else:
            roots.append(item)
    roots.sort(key=_start)
    for bucket in children.values():
        bucket.sort(key=_start)
    return roots, children


def extent(spans: Sequence[Dict[str, object]]) -> Tuple[float, float]:
    """(earliest start, latest end) across the whole trace, wall secs."""
    if not spans:
        return 0.0, 0.0
    return (min(_start(s) for s in spans), max(_end(s) for s in spans))


def _label(span: Dict[str, object]) -> str:
    parts = [str(span.get("name", "?"))]
    attrs = span.get("attrs")
    if isinstance(attrs, dict):
        for key in _LABEL_ATTRS:
            if key in attrs:
                parts.append(f"{key}={attrs[key]}")
    return " ".join(parts)


def waterfall(spans: Sequence[Dict[str, object]], width: int = 100) -> str:
    """Render the span tree as an indented ASCII waterfall."""
    if not spans:
        return "(empty trace)"
    roots, children = build_tree(spans)
    t0, t1 = extent(spans)
    window = max(t1 - t0, 1e-9)
    bar_width = max(20, width - 46)
    label_width = max(24, width - bar_width - 22)
    lines = []
    trace_id = next((s.get("trace_id") for s in spans if s.get("trace_id")),
                    "?")
    lines.append(f"trace {trace_id} · {len(spans)} spans · "
                 f"{window * 1000.0:.1f} ms")
    lines.append(f"{'span':<{label_width}} {'':<{bar_width}} "
                 f"{'ms':>9}  pid")

    def emit(item: Dict[str, object], depth: int) -> None:
        label = ("  " * depth + _label(item))[:label_width]
        left = int((_start(item) - t0) / window * bar_width)
        size = max(1, int(_num(item.get("ms")) / 1000.0 / window * bar_width))
        size = min(size, bar_width - min(left, bar_width - 1))
        bar = " " * min(left, bar_width - 1) + "#" * size
        lines.append(f"{label:<{label_width}} {bar:<{bar_width}} "
                     f"{_num(item.get('ms')):>9.2f}  {item.get('pid', '-')}")
        span_id = item.get("span_id")
        for child in children.get(str(span_id), []) if span_id else []:
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def critical_path(spans: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """The chain of spans that bounds end-to-end latency.

    Starting from the longest root span, repeatedly descend into the
    child whose *end time* is latest — the stage the parent was waiting
    on when it finished. Returns the path (top-down), its duration, and
    ``coverage``: path duration over the whole trace's wall extent.
    For a healthy sweep trace the root is ``sweep/run`` (or the
    service's ``service/job``) and coverage is ~1.0; a low coverage
    means the trace has disconnected time the path cannot explain.
    """
    if not spans:
        return {"path": [], "duration_ms": 0.0, "trace_ms": 0.0,
                "coverage": 0.0}
    roots, children = build_tree(spans)
    root = max(roots, key=lambda s: _num(s.get("ms")))
    path = [root]
    current = root
    while True:
        span_id = current.get("span_id")
        kids = children.get(str(span_id), []) if span_id else []
        if not kids:
            break
        current = max(kids, key=_end)
        path.append(current)
    t0, t1 = extent(spans)
    trace_ms = (t1 - t0) * 1000.0
    duration_ms = _num(root.get("ms"))
    steps = []
    for item in path:
        steps.append({
            "name": item.get("name"),
            "ms": round(_num(item.get("ms")), 3),
            "pid": item.get("pid"),
            "span_id": item.get("span_id"),
            "attrs": item.get("attrs", {}),
        })
    return {
        "path": steps,
        "duration_ms": round(duration_ms, 3),
        "trace_ms": round(trace_ms, 3),
        "coverage": round(duration_ms / trace_ms, 4) if trace_ms > 0 else 0.0,
    }


def chrome_trace(spans: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Chrome trace-event JSON (load in Perfetto / chrome://tracing).

    Complete events (``ph: "X"``) on a microsecond timeline starting at
    the trace's earliest span; process/thread lanes come from the
    recording pid/tid so worker fan-out is visible.
    """
    t0, _ = extent(spans)
    events: List[Dict[str, object]] = []
    pids = []
    for item in spans:
        pid = item.get("pid", 0)
        if pid not in pids:
            pids.append(pid)
        args: Dict[str, object] = {}
        attrs = item.get("attrs")
        if isinstance(attrs, dict):
            args.update(attrs)
        for key in ("trace_id", "span_id", "parent_id"):
            if item.get(key):
                args[key] = item[key]
        name = str(item.get("name", "?"))
        events.append({
            "name": name,
            "cat": name.split("/", 1)[0],
            "ph": "X",
            "ts": round((_start(item) - t0) * 1e6, 1),
            "dur": round(_num(item.get("ms")) * 1000.0, 1),
            "pid": pid,
            "tid": item.get("tid", pid),
            "args": args,
        })
    for pid in pids:
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"repro pid {pid}"},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def summarize(spans: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Small rollup used by the CLI header and tests."""
    t0, t1 = extent(spans)
    by_name: Dict[str, int] = {}
    pids = set()
    for item in spans:
        by_name[str(item.get("name", "?"))] = \
            by_name.get(str(item.get("name", "?")), 0) + 1
        pids.add(item.get("pid"))
    return {
        "spans": len(spans),
        "wall_ms": round((t1 - t0) * 1000.0, 3),
        "processes": len(pids),
        "by_name": dict(sorted(by_name.items())),
    }


def resolve_parent(span: Dict[str, object],
                   spans: Sequence[Dict[str, object]],
                   ) -> Optional[Dict[str, object]]:
    """The parent span dict, if present in the merged trace."""
    parent = span.get("parent_id")
    if not parent:
        return None
    for item in spans:
        if item.get("span_id") == parent:
            return item
    return None
