"""On-disk trace store: one JSONL file of span dicts per trace.

Traces live next to the result cache and ledger, under
``<cache root>/traces/<trace_id>.jsonl``. The submitter that owns a
trace is the only writer (workers ship their spans home on ``complete``
payloads, the coordinator piggybacks its own on ``batch_status``), so
appends from one sweep never race; appends are one ``write`` call per
line, so even a concurrent writer cannot tear a line on POSIX.

Reads are defensive: torn or non-JSON lines are skipped, and any span
whose ``trace_id`` does not match the file it sits in is dropped — a
SIGKILLed worker or a corrupted payload can produce garbage, never a
corrupted merged trace.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional

TRACES_DIRNAME = "traces"
PROFILE_SUFFIX = ".prof"

_ID_RE = re.compile(r"^[0-9a-f]{8,64}$")


def valid_trace_id(trace_id: object) -> bool:
    return isinstance(trace_id, str) and bool(_ID_RE.match(trace_id))


class TraceStore:
    """Append/load span batches for traces under one directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    @classmethod
    def at_cache_root(cls, base_root) -> "TraceStore":
        """The store co-located with a ``ResultCache``/ledger root."""
        return cls(Path(base_root) / TRACES_DIRNAME)

    def path(self, trace_id: str) -> Path:
        if not valid_trace_id(trace_id):
            raise ValueError(f"invalid trace id: {trace_id!r}")
        return self.root / f"{trace_id}.jsonl"

    def profile_path(self, trace_id: str) -> Path:
        return self.path(trace_id).with_suffix(PROFILE_SUFFIX)

    def append(self, trace_id: str, spans: Iterable[Dict[str, object]]) -> int:
        """Append span dicts to a trace; returns how many were written.

        Spans that are not dicts, or that claim a different trace_id,
        are silently dropped — the store is the single choke point that
        keeps foreign or garbage spans out of a merged trace. Storage
        errors degrade to writing nothing (observability must never
        fail a sweep).
        """
        lines = []
        for item in spans:
            if not isinstance(item, dict):
                continue
            if item.get("trace_id") != trace_id:
                continue
            try:
                lines.append(json.dumps(item, default=str))
            except (TypeError, ValueError):
                continue
        if not lines:
            return 0
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self.path(trace_id), "a") as handle:
                # The leading newline isolates any torn tail a crashed
                # writer left behind: the torn fragment stays on its own
                # (skipped) line instead of swallowing our first span.
                # Blank lines are ignored on load.
                handle.write("\n" + lines[0] + "\n")
                for line in lines[1:]:
                    handle.write(line + "\n")
        except OSError:
            return 0
        return len(lines)

    def load(self, trace_id: str) -> List[Dict[str, object]]:
        """All well-formed spans of a trace, ordered by wall start."""
        path = self.path(trace_id)
        spans: List[Dict[str, object]] = []
        try:
            text = path.read_text()
        except OSError:
            return spans
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                item = json.loads(line)
            except ValueError:
                continue  # torn/partial line from a crashed writer
            if not isinstance(item, dict):
                continue
            if item.get("trace_id") != trace_id:
                continue
            spans.append(item)
        spans.sort(key=lambda s: (_num(s.get("ts")), _num(s.get("start_s"))))
        return spans

    def trace_ids(self) -> List[str]:
        """Known trace ids, newest file first."""
        try:
            files = sorted(self.root.glob("*.jsonl"),
                           key=lambda p: p.stat().st_mtime, reverse=True)
        except OSError:
            return []
        return [path.stem for path in files if valid_trace_id(path.stem)]

    def write_profile(self, trace_id: str, collapsed: str) -> bool:
        """Persist a collapsed-stack profile alongside the trace."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self.profile_path(trace_id).write_text(collapsed)
        except OSError:
            return False
        return True

    def load_profile(self, trace_id: str) -> Optional[str]:
        try:
            return self.profile_path(trace_id).read_text()
        except OSError:
            return None


def _num(value: object) -> float:
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return 0.0
