"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single type at API boundaries while still being able
to distinguish configuration mistakes from simulation failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A machine or experiment configuration is invalid."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad label, bad operand, ...)."""


class EmulationError(ReproError):
    """The functional emulator hit an illegal state.

    Examples: a jump outside the text segment, executing past the end of
    the program, or exceeding the watchdog instruction limit.
    """


class SimulationError(ReproError):
    """The cycle-level simulator violated one of its own invariants."""


class WorkloadError(ReproError):
    """A workload profile or generated program is malformed."""


class TelemetryError(ReproError):
    """A telemetry operation failed (bad ledger ref, corrupt entry, ...)."""


class CorpusError(ReproError):
    """A trace corpus is malformed or inconsistent.

    Examples: a missing or unparsable manifest, a shard whose on-disk
    checksum no longer matches its manifest entry, a duplicate shard
    name, or an undecodable imported trace.
    """


class DivergenceError(ReproError):
    """A differential replay found our model and the reference model
    disagreeing (see :mod:`repro.corpus.diffcheck`); the message names
    the shard and the first diverging event."""


class ClusterError(ReproError):
    """A distributed-sweep operation failed (bad message, dead lease,
    a job that exhausted its retry budget, ...)."""


class ServiceError(ReproError):
    """A simulation-service request is invalid (unknown sweep, bad
    parameter, malformed payload, ...)."""


class ClusterUnavailable(ClusterError):
    """No usable cluster: the coordinator is unreachable or no worker
    registered within the grace window.

    The executor treats this as a signal to degrade gracefully to the
    local process pool, never as a sweep failure.
    """
