"""Control-flow traces: record once, sweep predictors many times.

The paper's methodology is execution-driven, but trace-driven studies
are the classic cheap alternative: record the committed control-flow
stream once, then replay it through any number of predictor
configurations without re-emulating. This package provides the binary
trace containers (`TraceWriter` / `TraceReader`; flat v1 and chunked,
compressed, CRC-protected v2 — see docs/traces.md), a recorder that
drives the reference emulator, and streaming trace-driven
return-address-stack evaluation used for corruption-free sweeps. The
corpus layer on top — durable shard directories, manifests, ChampSim
import — lives in :mod:`repro.corpus`.

Limitation, by design: a control-flow trace contains only the committed
path, so trace-driven replay cannot model wrong-path corruption — use
`repro.fastsim` (wrong-path replay) or the cycle models for that. The
trace evaluator is the right tool for overflow/underflow and capacity
questions, which depend only on the committed call/return structure.
"""

from repro.trace.format import (
    ControlFlowEvent,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    iter_control_events,
    iter_trace_file,
    record_trace,
    write_trace,
)
from repro.trace.replay import (
    TraceRasEvaluator,
    TraceRasResult,
    TraceShardSpec,
    replay_events,
    replay_events_multi,
    replay_shard,
    replay_shard_multi,
)

__all__ = [
    "ControlFlowEvent",
    "TraceFormatError",
    "TraceRasEvaluator",
    "TraceRasResult",
    "TraceReader",
    "TraceShardSpec",
    "TraceWriter",
    "iter_control_events",
    "iter_trace_file",
    "record_trace",
    "replay_events",
    "replay_events_multi",
    "replay_shard",
    "replay_shard_multi",
    "write_trace",
]
