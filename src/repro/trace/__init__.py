"""Control-flow traces: record once, sweep predictors many times.

The paper's methodology is execution-driven, but trace-driven studies
are the classic cheap alternative: record the committed control-flow
stream once, then replay it through any number of predictor
configurations without re-emulating. This package provides a compact
binary trace format (`TraceWriter` / `TraceReader`), a recorder that
drives the reference emulator, and a trace-driven return-address-stack
evaluator used for quick corruption-free sweeps.

Limitation, by design: a control-flow trace contains only the committed
path, so trace-driven replay cannot model wrong-path corruption — use
`repro.fastsim` (wrong-path replay) or the cycle models for that. The
trace evaluator is the right tool for overflow/underflow and capacity
questions, which depend only on the committed call/return structure.
"""

from repro.trace.format import ControlFlowEvent, TraceReader, TraceWriter, record_trace
from repro.trace.replay import TraceRasEvaluator, TraceRasResult

__all__ = [
    "ControlFlowEvent",
    "TraceRasEvaluator",
    "TraceRasResult",
    "TraceReader",
    "TraceWriter",
    "record_trace",
]
