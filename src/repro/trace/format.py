"""The binary control-flow trace format.

A trace is a sequence of control-transfer events from the committed
instruction stream (non-control instructions are elided — they carry no
predictor-relevant information). Each event packs to 13 bytes:

====== ===== ==========================================
offset bytes field
====== ===== ==========================================
0      1     control class (ControlClass index)
1      4     PC of the control instruction (uint32 LE)
5      4     actual next PC (uint32 LE)
9      4     instructions since the previous event
====== ===== ==========================================

A 16-byte header carries a magic, a format version, and the event
count. The format is deliberately boring: any tool can parse it.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterator, List, Optional, Union

from repro.emu.emulator import Emulator
from repro.errors import ReproError
from repro.isa.opcodes import ControlClass
from repro.isa.program import Program

MAGIC = b"RASTRACE"
VERSION = 1
_HEADER = struct.Struct("<8sII")
_EVENT = struct.Struct("<BIII")

#: Order gives each ControlClass a stable byte encoding.
_CLASS_LIST = list(ControlClass)
_CLASS_INDEX = {cls: i for i, cls in enumerate(_CLASS_LIST)}


class TraceFormatError(ReproError):
    """The trace bytes are not a valid RASTRACE stream."""


class ControlFlowEvent:
    """One committed control transfer."""

    __slots__ = ("control", "pc", "next_pc", "gap")

    def __init__(self, control: ControlClass, pc: int, next_pc: int,
                 gap: int = 0) -> None:
        self.control = control
        self.pc = pc
        self.next_pc = next_pc
        #: Non-control instructions since the previous event.
        self.gap = gap

    @property
    def taken(self) -> bool:
        return self.next_pc != self.pc + 4

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ControlFlowEvent)
                and self.control is other.control
                and self.pc == other.pc
                and self.next_pc == other.next_pc
                and self.gap == other.gap)

    def __repr__(self) -> str:
        return (f"ControlFlowEvent({self.control.value}, pc={self.pc}, "
                f"next={self.next_pc}, gap={self.gap})")


class TraceWriter:
    """Stream events to a binary file object."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self._count = 0
        # Reserve the header; patched on close.
        self._stream.write(_HEADER.pack(MAGIC, VERSION, 0))

    def append(self, event: ControlFlowEvent) -> None:
        self._stream.write(_EVENT.pack(
            _CLASS_INDEX[event.control], event.pc, event.next_pc, event.gap))
        self._count += 1

    def close(self) -> int:
        """Patch the header with the final count; returns event count."""
        self._stream.seek(0)
        self._stream.write(_HEADER.pack(MAGIC, VERSION, self._count))
        self._stream.flush()
        return self._count


class TraceReader:
    """Iterate events from a binary trace."""

    def __init__(self, stream: BinaryIO) -> None:
        header = stream.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceFormatError("truncated trace header")
        magic, version, count = _HEADER.unpack(header)
        if magic != MAGIC:
            raise TraceFormatError(f"bad magic {magic!r}")
        if version != VERSION:
            raise TraceFormatError(f"unsupported trace version {version}")
        self._stream = stream
        self.count = count

    def __iter__(self) -> Iterator[ControlFlowEvent]:
        for _ in range(self.count):
            raw = self._stream.read(_EVENT.size)
            if len(raw) != _EVENT.size:
                raise TraceFormatError("truncated trace body")
            class_index, pc, next_pc, gap = _EVENT.unpack(raw)
            if class_index >= len(_CLASS_LIST):
                raise TraceFormatError(f"bad control class {class_index}")
            yield ControlFlowEvent(_CLASS_LIST[class_index], pc, next_pc, gap)

    def read_all(self) -> List[ControlFlowEvent]:
        return list(self)


def record_trace(
    program: Program,
    destination: Optional[Union[str, BinaryIO]] = None,
    max_instructions: int = 50_000_000,
) -> Union[bytes, int]:
    """Run ``program`` on the reference emulator, recording its control
    transfers.

    With ``destination=None`` the trace is returned as ``bytes``; with a
    path or binary stream it is written there and the event count is
    returned.
    """
    own_buffer = destination is None
    own_file = isinstance(destination, str)
    if own_buffer:
        stream: BinaryIO = io.BytesIO()
    elif own_file:
        stream = open(destination, "wb")  # type: ignore[arg-type]
    else:
        stream = destination  # type: ignore[assignment]
    try:
        writer = TraceWriter(stream)
        gap = 0
        emulator = Emulator(program, max_instructions=max_instructions)
        for record in emulator.trace():
            inst = program.fetch(record.pc)
            if inst.is_control:
                writer.append(ControlFlowEvent(
                    inst.control, record.pc, record.next_pc, gap))
                gap = 0
            else:
                gap += 1
        count = writer.close()
        if own_buffer:
            return stream.getvalue()  # type: ignore[union-attr]
        return count
    finally:
        if own_file:
            stream.close()
