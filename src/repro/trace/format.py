"""The binary control-flow trace containers (v1 flat, v2 chunked).

A trace is a sequence of control-transfer events from the committed
instruction stream (non-control instructions are elided — they carry no
predictor-relevant information).

**Version 1** is the original flat layout: a 16-byte header (magic,
version, event count) followed by 13-byte fixed events with 32-bit PCs.
Every event sits uncompressed at a computable offset; any tool can
parse it.

**Version 2** is the corpus container: a 24-byte header, then a run of
zlib-compressed event blocks, then a block index and a trailer so
readers can seek without scanning. Events widen to 64-bit PCs (imported
x86 traces need them) and pack to 21 bytes before compression:

====== ===== ==========================================
offset bytes v2 event field
====== ===== ==========================================
0      1     control class (ControlClass index)
1      8     PC of the control instruction (uint64 LE)
9      8     actual next PC (uint64 LE)
17     4     instructions since the previous event
====== ===== ==========================================

Each block header records the raw size, compressed size, event count
and a CRC-32 of the compressed payload, so corruption anywhere in a
block is detected and reported as a typed :class:`TraceFormatError`
rather than silently truncating the stream. The full layouts are
documented in docs/traces.md.

:class:`TraceWriter` and :class:`TraceReader` stream: neither ever
materialises the full event list, so traces larger than RAM are fine.
The reader transparently handles both versions.
"""

from __future__ import annotations

import io
import struct
import zlib
from typing import BinaryIO, Iterable, Iterator, List, Optional, Tuple, Union

from repro.emu.emulator import Emulator
from repro.errors import ReproError
from repro.isa.opcodes import ControlClass
from repro.isa.program import Program

MAGIC = b"RASTRACE"
INDEX_MAGIC = b"RASINDEX"
VERSION = 1
VERSION_CHUNKED = 2
SUPPORTED_VERSIONS = (VERSION, VERSION_CHUNKED)
#: Events per compressed block in a v2 trace (writer default).
DEFAULT_BLOCK_EVENTS = 4096

_PREFIX = struct.Struct("<8sI")          # magic, version
_HEADER = struct.Struct("<8sII")         # v1: magic, version, count
_HEADER2 = struct.Struct("<8sIIQ")       # v2: magic, version, block_events, count
_EVENT = struct.Struct("<BIII")          # v1 event: class, pc32, next32, gap
_EVENT2 = struct.Struct("<BQQI")         # v2 event: class, pc64, next64, gap
_BLOCK = struct.Struct("<IIII")          # raw_size, comp_size, count, crc32
_INDEX_ENTRY = struct.Struct("<QII")     # file offset, comp_size, count
_TRAILER = struct.Struct("<8sQI")        # index magic, index offset, blocks

#: Order gives each ControlClass a stable byte encoding.
_CLASS_LIST = list(ControlClass)
_CLASS_INDEX = {cls: i for i, cls in enumerate(_CLASS_LIST)}

_PC32_LIMIT = 1 << 32


class TraceFormatError(ReproError):
    """The trace bytes are not a valid RASTRACE stream.

    Messages always carry the found-vs-expected values (sizes, magics,
    versions, CRCs) so a corrupt shard can be diagnosed from the error
    alone.
    """


class ControlFlowEvent:
    """One committed control transfer."""

    __slots__ = ("control", "pc", "next_pc", "gap")

    def __init__(self, control: ControlClass, pc: int, next_pc: int,
                 gap: int = 0) -> None:
        self.control = control
        self.pc = pc
        self.next_pc = next_pc
        #: Non-control instructions since the previous event.
        self.gap = gap

    @property
    def taken(self) -> bool:
        return self.next_pc != self.pc + 4

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ControlFlowEvent)
                and self.control is other.control
                and self.pc == other.pc
                and self.next_pc == other.next_pc
                and self.gap == other.gap)

    def __repr__(self) -> str:
        return (f"ControlFlowEvent({self.control.value}, pc={self.pc}, "
                f"next={self.next_pc}, gap={self.gap})")


class TraceWriter:
    """Stream events to a binary file object (v1 flat or v2 chunked).

    The stream must be seekable: the header's event count is patched on
    :meth:`close` (and v2 additionally appends the block index there).
    Events are never buffered beyond one compression block, so writing
    is O(block) in memory regardless of trace length.
    """

    def __init__(self, stream: BinaryIO, version: int = VERSION,
                 block_events: int = DEFAULT_BLOCK_EVENTS) -> None:
        if version not in SUPPORTED_VERSIONS:
            raise TraceFormatError(
                f"cannot write trace version {version}; "
                f"supported versions are {SUPPORTED_VERSIONS}")
        if block_events < 1:
            raise TraceFormatError(
                f"block_events must be >= 1, got {block_events}")
        self._stream = stream
        self._count = 0
        self.version = version
        self._block_events = block_events
        self._buffer: List[ControlFlowEvent] = []
        self._index: List[Tuple[int, int, int]] = []
        # Reserve the header; patched on close.
        if version == VERSION:
            self._stream.write(_HEADER.pack(MAGIC, VERSION, 0))
        else:
            self._stream.write(
                _HEADER2.pack(MAGIC, VERSION_CHUNKED, block_events, 0))

    def append(self, event: ControlFlowEvent) -> None:
        if self.version == VERSION:
            if event.pc >= _PC32_LIMIT or event.next_pc >= _PC32_LIMIT:
                raise TraceFormatError(
                    f"v1 traces store 32-bit PCs; got pc={event.pc:#x}, "
                    f"next_pc={event.next_pc:#x} (use version=2)")
            self._stream.write(_EVENT.pack(
                _CLASS_INDEX[event.control], event.pc, event.next_pc,
                event.gap))
        else:
            self._buffer.append(event)
            if len(self._buffer) >= self._block_events:
                self._flush_block()
        self._count += 1

    def _flush_block(self) -> None:
        raw = b"".join(
            _EVENT2.pack(_CLASS_INDEX[event.control], event.pc,
                         event.next_pc, event.gap)
            for event in self._buffer)
        compressed = zlib.compress(raw, 6)
        offset = self._stream.tell()
        self._stream.write(_BLOCK.pack(
            len(raw), len(compressed), len(self._buffer),
            zlib.crc32(compressed)))
        self._stream.write(compressed)
        self._index.append((offset, len(compressed), len(self._buffer)))
        self._buffer.clear()

    def close(self) -> int:
        """Finalise the container; returns the event count.

        v1: patch the header count. v2: flush the tail block, append
        the block index and trailer, then patch the header count.
        """
        if self.version == VERSION_CHUNKED:
            if self._buffer:
                self._flush_block()
            index_offset = self._stream.tell()
            for offset, comp_size, count in self._index:
                self._stream.write(
                    _INDEX_ENTRY.pack(offset, comp_size, count))
            self._stream.write(
                _TRAILER.pack(INDEX_MAGIC, index_offset, len(self._index)))
            self._stream.seek(0)
            self._stream.write(_HEADER2.pack(
                MAGIC, VERSION_CHUNKED, self._block_events, self._count))
        else:
            self._stream.seek(0)
            self._stream.write(_HEADER.pack(MAGIC, VERSION, self._count))
        self._stream.flush()
        return self._count


class TraceReader:
    """Stream events from a binary trace, any supported version.

    Iteration decodes incrementally — one v1 event or one v2 block at a
    time — so a reader never holds more than a block of events. Version
    sniffing is transparent: callers only see ``ControlFlowEvent``s.
    """

    def __init__(self, stream: BinaryIO) -> None:
        prefix = stream.read(_PREFIX.size)
        if len(prefix) != _PREFIX.size:
            raise TraceFormatError(
                f"truncated trace header: found {len(prefix)} bytes, "
                f"expected at least {_PREFIX.size}")
        magic, version = _PREFIX.unpack(prefix)
        if magic != MAGIC:
            raise TraceFormatError(
                f"bad magic: found {magic!r}, expected {MAGIC!r}")
        if version not in SUPPORTED_VERSIONS:
            raise TraceFormatError(
                f"unsupported trace version: found {version}, "
                f"expected one of {SUPPORTED_VERSIONS}")
        self.version = version
        if version == VERSION:
            rest = stream.read(_HEADER.size - _PREFIX.size)
            if len(rest) != _HEADER.size - _PREFIX.size:
                raise TraceFormatError(
                    f"truncated v1 trace header: found "
                    f"{_PREFIX.size + len(rest)} bytes, "
                    f"expected {_HEADER.size}")
            (self.count,) = struct.unpack("<I", rest)
            self.block_events: Optional[int] = None
        else:
            rest = stream.read(_HEADER2.size - _PREFIX.size)
            if len(rest) != _HEADER2.size - _PREFIX.size:
                raise TraceFormatError(
                    f"truncated v2 trace header: found "
                    f"{_PREFIX.size + len(rest)} bytes, "
                    f"expected {_HEADER2.size}")
            self.block_events, self.count = struct.unpack("<IQ", rest)
        self._stream = stream

    def __iter__(self) -> Iterator[ControlFlowEvent]:
        if self.version == VERSION:
            return self._iter_v1()
        return self._iter_v2()

    def _iter_v1(self) -> Iterator[ControlFlowEvent]:
        for _ in range(self.count):
            raw = self._stream.read(_EVENT.size)
            if len(raw) != _EVENT.size:
                raise TraceFormatError(
                    f"truncated trace body: found {len(raw)} bytes, "
                    f"expected {_EVENT.size}")
            class_index, pc, next_pc, gap = _EVENT.unpack(raw)
            if class_index >= len(_CLASS_LIST):
                raise TraceFormatError(
                    f"bad control class: found {class_index}, expected "
                    f"< {len(_CLASS_LIST)}")
            yield ControlFlowEvent(_CLASS_LIST[class_index], pc, next_pc, gap)

    def _iter_v2(self) -> Iterator[ControlFlowEvent]:
        for raw, _count in self._iter_v2_blocks():
            for class_index, pc, next_pc, gap in _EVENT2.iter_unpack(raw):
                if class_index >= len(_CLASS_LIST):
                    raise TraceFormatError(
                        f"bad control class: found {class_index}, expected "
                        f"< {len(_CLASS_LIST)}")
                yield ControlFlowEvent(
                    _CLASS_LIST[class_index], pc, next_pc, gap)

    def _iter_v2_blocks(self) -> Iterator[Tuple[bytes, int]]:
        """Decode one v2 block at a time: ``(raw event bytes, count)``.

        Runs every integrity check the streaming event iterator applies
        — header/payload truncation, event-count and size sanity, the
        per-block CRC, and decompression — so any consumer of raw
        blocks (the batched replay engine in
        :mod:`repro.fastsim.batch`) reports corruption with exactly the
        same typed errors as event-at-a-time reads.
        """
        remaining = self.count
        block = 0
        while remaining > 0:
            header = self._stream.read(_BLOCK.size)
            if len(header) != _BLOCK.size:
                raise TraceFormatError(
                    f"block {block}: truncated header: found "
                    f"{len(header)} bytes, expected {_BLOCK.size}")
            raw_size, comp_size, count, crc = _BLOCK.unpack(header)
            if count == 0 or count > remaining:
                raise TraceFormatError(
                    f"block {block}: bad event count: found {count}, "
                    f"expected 1..{remaining}")
            if raw_size != count * _EVENT2.size:
                raise TraceFormatError(
                    f"block {block}: bad raw size: found {raw_size}, "
                    f"expected {count * _EVENT2.size}")
            compressed = self._stream.read(comp_size)
            if len(compressed) != comp_size:
                raise TraceFormatError(
                    f"block {block}: truncated payload: found "
                    f"{len(compressed)} bytes, expected {comp_size}")
            found_crc = zlib.crc32(compressed)
            if found_crc != crc:
                raise TraceFormatError(
                    f"block {block}: CRC mismatch: found {found_crc:#010x}, "
                    f"expected {crc:#010x}")
            try:
                raw = zlib.decompress(compressed)
            except zlib.error as error:
                raise TraceFormatError(
                    f"block {block}: undecompressable payload: {error}"
                ) from error
            if len(raw) != raw_size:
                raise TraceFormatError(
                    f"block {block}: bad decompressed size: found "
                    f"{len(raw)} bytes, expected {raw_size}")
            yield raw, count
            remaining -= count
            block += 1

    def _iter_v1_blocks(self, block_events: int) -> Iterator[Tuple[bytes, int]]:
        remaining = self.count
        while remaining > 0:
            count = min(block_events, remaining)
            raw = self._stream.read(count * _EVENT.size)
            if len(raw) % _EVENT.size:
                raise TraceFormatError(
                    f"truncated trace body: found {len(raw) % _EVENT.size} "
                    f"bytes, expected {_EVENT.size}")
            if len(raw) != count * _EVENT.size:
                raise TraceFormatError(
                    f"truncated trace body: found 0 bytes, "
                    f"expected {_EVENT.size}")
            yield raw, count
            remaining -= count

    def iter_raw_blocks(
        self, block_events: int = DEFAULT_BLOCK_EVENTS,
    ) -> Iterator[Tuple[int, bytes, int]]:
        """Yield ``(event_size, raw event bytes, count)`` per block.

        The batch-decode entry point: v2 traces yield their physical
        compressed blocks (fully validated, see :meth:`_iter_v2_blocks`);
        v1 traces yield ``block_events``-sized slices of the flat body.
        ``event_size`` names the fixed record width of ``raw`` so the
        caller can unpack without re-sniffing the version.
        """
        if self.version == VERSION:
            for raw, count in self._iter_v1_blocks(block_events):
                yield _EVENT.size, raw, count
        else:
            for raw, count in self._iter_v2_blocks():
                yield _EVENT2.size, raw, count

    def read_all(self) -> List[ControlFlowEvent]:
        return list(self)

    def index(self) -> List[Tuple[int, int, int]]:
        """The v2 block index: ``(file offset, compressed size, events)``
        per block, read from the trailer of a seekable stream.

        The stream position is restored afterwards, so iteration and
        index reads compose.
        """
        if self.version != VERSION_CHUNKED:
            raise TraceFormatError(
                f"trace version {self.version} has no block index "
                f"(found {self.version}, expected {VERSION_CHUNKED})")
        position = self._stream.tell()
        try:
            self._stream.seek(-_TRAILER.size, io.SEEK_END)
            trailer = self._stream.read(_TRAILER.size)
            if len(trailer) != _TRAILER.size:
                raise TraceFormatError(
                    f"truncated trace trailer: found {len(trailer)} bytes, "
                    f"expected {_TRAILER.size}")
            magic, index_offset, blocks = _TRAILER.unpack(trailer)
            if magic != INDEX_MAGIC:
                raise TraceFormatError(
                    f"bad index magic: found {magic!r}, "
                    f"expected {INDEX_MAGIC!r}")
            self._stream.seek(index_offset)
            payload = self._stream.read(blocks * _INDEX_ENTRY.size)
            if len(payload) != blocks * _INDEX_ENTRY.size:
                raise TraceFormatError(
                    f"truncated block index: found {len(payload)} bytes, "
                    f"expected {blocks * _INDEX_ENTRY.size}")
            return list(_INDEX_ENTRY.iter_unpack(payload))
        finally:
            self._stream.seek(position)


def iter_trace_file(path: str) -> Iterator[ControlFlowEvent]:
    """Stream the events of an on-disk trace (either version)."""
    with open(path, "rb") as stream:
        yield from TraceReader(stream)


def write_trace(
    destination: Union[str, BinaryIO],
    events: Iterable[ControlFlowEvent],
    version: int = VERSION,
    block_events: int = DEFAULT_BLOCK_EVENTS,
) -> int:
    """Stream ``events`` into a trace container; returns the count."""
    own_file = isinstance(destination, str)
    stream = open(destination, "wb") if own_file else destination
    try:
        writer = TraceWriter(stream, version=version,
                             block_events=block_events)
        for event in events:
            writer.append(event)
        return writer.close()
    finally:
        if own_file:
            stream.close()  # type: ignore[union-attr]


def iter_control_events(
    program: Program,
    max_instructions: int = 50_000_000,
) -> Iterator[ControlFlowEvent]:
    """Run ``program`` on the reference emulator, yielding its control
    transfers as they commit.

    This is the streaming core of :func:`record_trace` and of corpus
    ingestion: nothing is buffered, so arbitrarily long executions
    produce events in O(1) memory.
    """
    gap = 0
    emulator = Emulator(program, max_instructions=max_instructions)
    for record in emulator.trace():
        inst = program.fetch(record.pc)
        if inst.is_control:
            yield ControlFlowEvent(inst.control, record.pc,
                                   record.next_pc, gap)
            gap = 0
        else:
            gap += 1


def record_trace(
    program: Program,
    destination: Optional[Union[str, BinaryIO]] = None,
    max_instructions: int = 50_000_000,
    version: int = VERSION,
) -> Union[bytes, int]:
    """Run ``program`` on the reference emulator, recording its control
    transfers.

    With ``destination=None`` the trace is returned as ``bytes``; with a
    path or binary stream it is written there and the event count is
    returned. ``version`` selects the container (1 flat, 2 chunked).
    """
    events = iter_control_events(program, max_instructions=max_instructions)
    if destination is None:
        buffer = io.BytesIO()
        write_trace(buffer, events, version=version)
        return buffer.getvalue()
    return write_trace(destination, events, version=version)
