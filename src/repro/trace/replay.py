"""Trace-driven return-address-stack evaluation.

Replays a recorded control-flow trace through a RAS (and a BTB for the
fallback path), measuring return accuracy without re-emulating the
program. No wrong paths exist in a committed trace, so this measures
the *capacity* behaviour — overflow and underflow under deep call
chains — in isolation from corruption. Sweeping stack sizes over a
recorded trace is hundreds of times faster than re-running the cycle
model.

Everything here streams: :func:`replay_events` consumes any event
iterable without materialising it, and :func:`replay_events_multi`
evaluates a whole grid of stack sizes in a single pass over the events
— the shape a depth sweep over an on-disk shard wants, since decoding
the trace once is the dominant cost.

:class:`TraceShardSpec` is the durable, picklable identity of one
on-disk trace shard; it is what corpus sweeps ship to executor workers
(see :mod:`repro.core.executor`'s ``"trace"`` engine) and what cache
keys hash (via the shard checksum).
"""

from __future__ import annotations

import dataclasses
import io
import os
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.ras import make_ras
from repro.config.options import RepairMechanism
from repro.errors import ReproError
from repro.isa.opcodes import ControlClass
from repro.telemetry import span
from repro.trace.format import (
    ControlFlowEvent,
    TraceReader,
    iter_trace_file,
)


class TraceRasResult:
    """Return-prediction summary of one trace replay."""

    __slots__ = ("returns", "hits", "overflows", "underflows")

    def __init__(self, returns: int, hits: int,
                 overflows: int, underflows: int) -> None:
        self.returns = returns
        self.hits = hits
        self.overflows = overflows
        self.underflows = underflows

    @property
    def accuracy(self) -> Optional[float]:
        if self.returns == 0:
            return None
        return self.hits / self.returns

    def __repr__(self) -> str:
        shown = "n/a" if self.accuracy is None else f"{self.accuracy:.4f}"
        return (f"TraceRasResult(returns={self.returns}, acc={shown}, "
                f"overflows={self.overflows})")


@dataclasses.dataclass(frozen=True)
class TraceShardSpec:
    """Identity of one on-disk trace shard.

    ``checksum`` (SHA-256 of the shard file) is the cache identity: two
    shards with equal checksums hold bit-identical traces, wherever
    their files live, so executor cache keys hash the checksum and name
    but never the path. The optional counts ride along so result
    summaries need not re-scan the shard.
    """

    name: str
    path: str
    checksum: Optional[str] = None
    events: Optional[int] = None
    calls: Optional[int] = None
    returns: Optional[int] = None


class _Lane:
    """Replay state for one RAS configuration during a shared pass.

    The ``champsim`` mechanism replays through the native ChampSim API:
    calls push the *call site*, and a return peeks the prediction, then
    calibrates the call-size tracker against the resolved target — the
    semantics :mod:`repro.corpus.diffcheck` cross-validates against an
    independent transliteration of the C++.
    """

    __slots__ = ("ras", "btb", "returns", "hits", "_champsim")

    def __init__(self, ras_entries: int, mechanism: RepairMechanism,
                 btb_fallback: bool) -> None:
        self.ras = make_ras(ras_entries, mechanism)
        self.btb = BranchTargetBuffer() if btb_fallback else None
        self.returns = 0
        self.hits = 0
        self._champsim = mechanism is RepairMechanism.CHAMPSIM

    def step(self, event: ControlFlowEvent) -> Optional[int]:
        """Advance one event; returns the prediction made for a RETURN
        (``None`` both for non-returns and for no-prediction returns —
        callers that care about the distinction check ``event.control``).
        """
        control = event.control
        predicted: Optional[int] = None
        if control is ControlClass.RETURN:
            if self._champsim:
                predicted = self.ras.prediction()
                self.ras.calibrate_call_size(event.next_pc)
            else:
                predicted = self.ras.pop()
            if predicted is None and self.btb is not None:
                predicted = self.btb.lookup(event.pc)
            self.returns += 1
            if predicted == event.next_pc:
                self.hits += 1
            if self.btb is not None:
                self.btb.update(event.pc, event.next_pc, True)
        if control.is_call:
            if self._champsim:
                self.ras.push_call(event.pc)
            else:
                self.ras.push(event.pc + 4)
        return predicted

    def result(self) -> TraceRasResult:
        return TraceRasResult(
            self.returns, self.hits,
            self.ras.stats["overflows"].value,
            self.ras.stats["underflows"].value,
        )


def replay_events(
    events: Iterable[ControlFlowEvent],
    ras_entries: int = 32,
    mechanism: RepairMechanism = RepairMechanism.NONE,
    btb_fallback: bool = True,
) -> TraceRasResult:
    """Stream ``events`` through one RAS configuration.

    ``mechanism`` matters only for organisations whose *normal*
    behaviour differs (valid bits / self-checkpointing); with no wrong
    paths there is nothing to repair. The iterable is consumed exactly
    once and never materialised.
    """
    lane = _Lane(ras_entries, mechanism, btb_fallback)
    for event in events:
        lane.step(event)
    return lane.result()


def replay_events_multi(
    events: Iterable[ControlFlowEvent],
    sizes: Sequence[int],
    mechanism: RepairMechanism = RepairMechanism.NONE,
    btb_fallback: bool = True,
) -> Dict[int, TraceRasResult]:
    """Evaluate every stack size in one pass over ``events``.

    Each size gets fully independent predictor state, so the results
    are identical to running :func:`replay_events` once per size — but
    the trace is decoded once instead of ``len(sizes)`` times, which is
    what makes depth sweeps over compressed on-disk shards cheap.
    """
    lanes = [_Lane(size, mechanism, btb_fallback) for size in sizes]
    for event in events:
        for lane in lanes:
            lane.step(event)
    return {size: lane.result() for size, lane in zip(sizes, lanes)}


def replay_shard(
    shard: Union[TraceShardSpec, str, os.PathLike],
    ras_entries: int = 32,
    mechanism: RepairMechanism = RepairMechanism.NONE,
    btb_fallback: bool = True,
) -> TraceRasResult:
    """Stream one on-disk shard (v1 or v2) through a RAS configuration."""
    path = shard.path if isinstance(shard, TraceShardSpec) else os.fspath(shard)
    label = shard.name if isinstance(shard, TraceShardSpec) else path
    with span("trace/replay", shard=label, entries=ras_entries):
        return replay_events(iter_trace_file(path), ras_entries, mechanism,
                             btb_fallback)


def replay_shard_multi(
    shard: Union[TraceShardSpec, str, os.PathLike],
    sizes: Sequence[int],
    mechanism: RepairMechanism = RepairMechanism.NONE,
    btb_fallback: bool = True,
) -> Dict[int, TraceRasResult]:
    """Depth-sweep one on-disk shard in a single streaming pass."""
    path = shard.path if isinstance(shard, TraceShardSpec) else os.fspath(shard)
    label = shard.name if isinstance(shard, TraceShardSpec) else path
    with span("trace/replay-multi", shard=label, sizes=len(sizes)):
        return replay_events_multi(iter_trace_file(path), sizes, mechanism,
                                   btb_fallback)


_EventSource = Callable[[], Iterator[ControlFlowEvent]]


class TraceRasEvaluator:
    """Replay traces through RAS configurations.

    Accepts trace ``bytes``, a path to an on-disk trace, a sequence of
    events, a zero-argument factory returning a fresh event iterator,
    or a one-shot iterator. All of these are consumed *streaming* — the
    evaluator never builds a full event list. Re-iterable sources
    (bytes, paths, sequences, factories) support any number of
    evaluations; a one-shot iterator supports exactly one pass and a
    second pass raises :class:`~repro.errors.ReproError` instead of
    silently replaying nothing.
    """

    def __init__(
        self,
        trace: Union[bytes, str, os.PathLike, Sequence[ControlFlowEvent],
                     Iterable[ControlFlowEvent], _EventSource],
    ) -> None:
        self._one_shot: Optional[Iterator[ControlFlowEvent]] = None
        self._consumed = False
        if isinstance(trace, (bytes, bytearray)):
            data = bytes(trace)
            self._source: _EventSource = (
                lambda: iter(TraceReader(io.BytesIO(data))))
        elif isinstance(trace, (str, os.PathLike)):
            path = os.fspath(trace)
            self._source = lambda: iter_trace_file(path)
        elif callable(trace):
            self._source = trace
        elif isinstance(trace, Sequence):
            self._source = lambda: iter(trace)
        else:
            self._one_shot = iter(trace)
            self._source = self._consume_one_shot

    def _consume_one_shot(self) -> Iterator[ControlFlowEvent]:
        if self._consumed:
            raise ReproError(
                "trace iterator already consumed; pass bytes, a path, a "
                "sequence, or an iterator factory to evaluate more than once")
        self._consumed = True
        assert self._one_shot is not None
        return self._one_shot

    @property
    def events(self) -> List[ControlFlowEvent]:
        """The full event list (materialises one streaming pass)."""
        return list(self._source())

    def evaluate(
        self,
        ras_entries: int = 32,
        mechanism: RepairMechanism = RepairMechanism.NONE,
        btb_fallback: bool = True,
    ) -> TraceRasResult:
        """Measure return accuracy for one stack configuration."""
        return replay_events(self._source(), ras_entries, mechanism,
                             btb_fallback)

    def depth_sweep(
        self,
        sizes: Iterable[int],
        mechanism: RepairMechanism = RepairMechanism.NONE,
    ) -> "dict[int, TraceRasResult]":
        """Capacity sweep: accuracy and overflow counts per stack size.

        Runs all sizes in one pass over the source (see
        :func:`replay_events_multi`); results are identical to calling
        :meth:`evaluate` per size.
        """
        return replay_events_multi(self._source(), list(sizes), mechanism)

    def call_return_counts(self) -> "tuple[int, int]":
        calls = 0
        returns = 0
        for event in self._source():
            if event.control.is_call:
                calls += 1
            elif event.control is ControlClass.RETURN:
                returns += 1
        return calls, returns
