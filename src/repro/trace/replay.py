"""Trace-driven return-address-stack evaluation.

Replays a recorded control-flow trace through a RAS (and a BTB for the
fallback path), measuring return accuracy without re-emulating the
program. No wrong paths exist in a committed trace, so this measures
the *capacity* behaviour — overflow and underflow under deep call
chains — in isolation from corruption. Sweeping stack sizes over a
recorded trace is hundreds of times faster than re-running the cycle
model.
"""

from __future__ import annotations

import io
from typing import Iterable, Optional, Sequence, Union

from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.ras import make_ras
from repro.config.options import RepairMechanism
from repro.isa.opcodes import ControlClass
from repro.trace.format import ControlFlowEvent, TraceReader


class TraceRasResult:
    """Return-prediction summary of one trace replay."""

    __slots__ = ("returns", "hits", "overflows", "underflows")

    def __init__(self, returns: int, hits: int,
                 overflows: int, underflows: int) -> None:
        self.returns = returns
        self.hits = hits
        self.overflows = overflows
        self.underflows = underflows

    @property
    def accuracy(self) -> Optional[float]:
        if self.returns == 0:
            return None
        return self.hits / self.returns

    def __repr__(self) -> str:
        shown = "n/a" if self.accuracy is None else f"{self.accuracy:.4f}"
        return (f"TraceRasResult(returns={self.returns}, acc={shown}, "
                f"overflows={self.overflows})")


class TraceRasEvaluator:
    """Replay traces through RAS configurations."""

    def __init__(self, trace: Union[bytes, Sequence[ControlFlowEvent]]) -> None:
        if isinstance(trace, (bytes, bytearray)):
            self.events = TraceReader(io.BytesIO(bytes(trace))).read_all()
        else:
            self.events = list(trace)

    def evaluate(
        self,
        ras_entries: int = 32,
        mechanism: RepairMechanism = RepairMechanism.NONE,
        btb_fallback: bool = True,
    ) -> TraceRasResult:
        """Measure return accuracy for one stack configuration.

        ``mechanism`` matters only for organisations whose *normal*
        behaviour differs (valid bits / self-checkpointing); with no
        wrong paths there is nothing to repair.
        """
        ras = make_ras(ras_entries, mechanism)
        btb = BranchTargetBuffer() if btb_fallback else None
        returns = 0
        hits = 0
        for event in self.events:
            control = event.control
            if control is ControlClass.RETURN:
                predicted = ras.pop()
                if predicted is None and btb is not None:
                    predicted = btb.lookup(event.pc)
                returns += 1
                if predicted == event.next_pc:
                    hits += 1
                if btb is not None:
                    btb.update(event.pc, event.next_pc, True)
            if control.is_call:
                ras.push(event.pc + 4)
        return TraceRasResult(
            returns, hits,
            ras.stats["overflows"].value,
            ras.stats["underflows"].value,
        )

    def depth_sweep(
        self,
        sizes: Iterable[int],
        mechanism: RepairMechanism = RepairMechanism.NONE,
    ) -> "dict[int, TraceRasResult]":
        """Capacity sweep: accuracy and overflow counts per stack size."""
        return {size: self.evaluate(size, mechanism) for size in sizes}

    def call_return_counts(self) -> "tuple[int, int]":
        calls = sum(1 for e in self.events if e.control.is_call)
        returns = sum(
            1 for e in self.events if e.control is ControlClass.RETURN)
        return calls, returns
