"""The Table 1 baseline configuration and its printable form."""

from __future__ import annotations

from typing import List, Tuple

from repro.config.machine import MachineConfig


def baseline_config() -> MachineConfig:
    """Return the paper's Table 1 baseline machine.

    4-wide out-of-order core loosely modelled on an Alpha 21264: 64-entry
    RUU, 32-entry LSQ, McFarling hybrid direction predictor (4K GAg + 1K
    by 10-bit PAg + 4K selector), decoupled 512x4 BTB, 32-entry RAS, and
    a two-level cache hierarchy.
    """
    return MachineConfig()


def table1_rows(config: MachineConfig) -> List[Tuple[str, str]]:
    """Render ``config`` as the (parameter, value) rows of Table 1."""
    core = config.core
    pred = config.predictor
    mem = config.memory
    rows = [
        ("fetch/decode/issue/commit width",
         f"{core.fetch_width}/{core.decode_width}/{core.issue_width}/{core.commit_width}"),
        ("instruction fetch queue", f"{core.ifq_size} entries"),
        ("register update unit (RUU)", f"{core.ruu_size} entries"),
        ("load-store queue", f"{core.lsq_size} entries"),
        ("integer ALUs / multipliers", f"{core.int_alus} / {core.int_multipliers}"),
        ("memory ports", str(core.memory_ports)),
        ("front-end depth past fetch", f"{core.frontend_depth} stages"),
        ("direction predictor",
         f"hybrid: {pred.gag_entries}-entry GAg + "
         f"{pred.pag_history_entries}x{pred.pag_history_bits} PAg, "
         f"{pred.selector_entries}-entry selector"),
        ("BTB", f"{pred.btb_sets} sets x {pred.btb_assoc}-way, decoupled (taken only)"),
        ("return-address stack",
         f"{pred.ras_entries} entries, repair={pred.ras_repair}"
         if pred.ras_enabled else "disabled (BTB-only returns)"),
        ("L1 I-cache",
         f"{mem.l1i.size_bytes // 1024}KB {mem.l1i.assoc}-way, "
         f"{mem.l1i.line_bytes}B lines, {mem.l1i.hit_latency}-cycle"),
        ("L1 D-cache",
         f"{mem.l1d.size_bytes // 1024}KB {mem.l1d.assoc}-way, "
         f"{mem.l1d.line_bytes}B lines, {mem.l1d.hit_latency}-cycle"),
        ("L2 cache",
         f"{mem.l2.size_bytes // 1024}KB {mem.l2.assoc}-way, "
         f"{mem.l2.line_bytes}B lines, {mem.l2.hit_latency}-cycle"),
        ("memory latency", f"{mem.memory_latency} cycles"),
    ]
    if config.multipath.max_paths > 1:
        rows.append(
            ("multipath",
             f"{config.multipath.max_paths} paths, "
             f"stacks={config.multipath.stack_organization}")
        )
    return rows
