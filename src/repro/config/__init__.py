"""Machine and experiment configuration.

The default :class:`MachineConfig` mirrors the paper's Table 1 baseline —
a 4-wide out-of-order core loosely modelled on the Alpha 21264, with a
McFarling hybrid direction predictor, a decoupled BTB and a 32-entry
return-address stack.
"""

from repro.config.options import RepairMechanism, StackOrganization
from repro.config.machine import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    MachineConfig,
    MemoryHierarchyConfig,
    MultipathConfig,
)
from repro.config.defaults import baseline_config, table1_rows

__all__ = [
    "BranchPredictorConfig",
    "CacheConfig",
    "CoreConfig",
    "MachineConfig",
    "MemoryHierarchyConfig",
    "MultipathConfig",
    "RepairMechanism",
    "StackOrganization",
    "baseline_config",
    "table1_rows",
]
