"""Dataclasses describing the simulated machine.

Sizes and widths default to the paper's Table 1 baseline (see
:func:`repro.config.defaults.baseline_config`). Every config validates
itself on construction so misconfigured experiments fail fast.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from repro.config.options import RepairMechanism, StackOrganization
from repro.errors import ConfigError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class BranchPredictorConfig:
    """McFarling hybrid + decoupled BTB + return-address stack.

    The hybrid combines a GAg global-history component with a PAg
    local-history component; a selector of 2-bit counters indexed by
    global history chooses between them, as in the paper's Section 3.
    """

    #: Direction-predictor family: "hybrid" (the paper's baseline),
    #: "gshare", "bimodal", "gag" or "pag". Non-hybrid kinds exist for
    #: the corruption-pressure ablation (A7).
    direction_kind: str = "hybrid"
    #: Entries in the GAg global-history pattern table (4K in the paper).
    #: Also the table size for the single-component alternatives.
    gag_entries: int = 4096
    #: Rows in the PAg per-branch history table (1K in the paper).
    pag_history_entries: int = 1024
    #: Local history bits per PAg row (10 in the paper).
    pag_history_bits: int = 10
    #: Entries in the selector's 2-bit-counter table (4K in the paper).
    selector_entries: int = 4096
    #: BTB geometry: sets x associativity (decoupled, taken-branches only).
    btb_sets: int = 512
    btb_assoc: int = 4
    #: Return-address-stack depth (32 in the 21264-like baseline).
    ras_entries: int = 32
    #: Repair mechanism under evaluation.
    ras_repair: RepairMechanism = RepairMechanism.TOS_POINTER_AND_CONTENTS
    #: For TOS_POINTER_AND_CONTENTS: how many top entries to save per
    #: checkpoint (1 = the paper's proposal; ras_entries = equivalent
    #: to full-stack checkpointing).
    repair_contents_depth: int = 1
    #: Whether the RAS exists at all; False gives the BTB-only baseline
    #: of the paper's Table 4.
    ras_enabled: bool = True
    #: Maximum number of in-flight checkpoints (shadow-state slots).
    #: ``None`` models unlimited slots; the R10000 provides 4, the 21264
    #: about 20. When slots run out, further branches carry no checkpoint
    #: (so mispredictions on them cannot repair the stack).
    shadow_checkpoint_slots: Optional[int] = None
    #: Extra physical entries for the self-checkpointing variant; the
    #: Jourdan-style scheme needs more entries than logical depth because
    #: it preserves popped entries. Multiplier over ``ras_entries``.
    self_checkpoint_overprovision: int = 4

    def __post_init__(self) -> None:
        _require(
            self.direction_kind in ("hybrid", "gshare", "bimodal", "gag", "pag"),
            f"unknown direction_kind {self.direction_kind!r}",
        )
        _require(_is_power_of_two(self.gag_entries), "gag_entries must be a power of two")
        _require(
            _is_power_of_two(self.pag_history_entries),
            "pag_history_entries must be a power of two",
        )
        _require(
            0 < self.pag_history_bits <= 16,
            "pag_history_bits must be in (0, 16]",
        )
        _require(
            _is_power_of_two(self.selector_entries),
            "selector_entries must be a power of two",
        )
        _require(_is_power_of_two(self.btb_sets), "btb_sets must be a power of two")
        _require(self.btb_assoc >= 1, "btb_assoc must be >= 1")
        _require(self.ras_entries >= 1, "ras_entries must be >= 1")
        _require(
            1 <= self.repair_contents_depth <= self.ras_entries,
            "repair_contents_depth must be in [1, ras_entries]",
        )
        if self.shadow_checkpoint_slots is not None:
            _require(
                self.shadow_checkpoint_slots >= 0,
                "shadow_checkpoint_slots must be >= 0",
            )
        _require(
            self.self_checkpoint_overprovision >= 1,
            "self_checkpoint_overprovision must be >= 1",
        )


@dataclass(frozen=True)
class CacheConfig:
    """One set-associative cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency: int

    def __post_init__(self) -> None:
        _require(_is_power_of_two(self.line_bytes), "line_bytes must be a power of two")
        _require(self.assoc >= 1, "assoc must be >= 1")
        _require(self.size_bytes % (self.line_bytes * self.assoc) == 0,
                 f"{self.name}: size must be a multiple of line_bytes * assoc")
        _require(_is_power_of_two(self.num_sets), f"{self.name}: set count must be a power of two")
        _require(self.hit_latency >= 1, "hit_latency must be >= 1")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """Two-level cache hierarchy plus main memory."""

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("l1i", 64 * 1024, 2, 64, 1)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("l1d", 64 * 1024, 2, 64, 3)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("l2", 2 * 1024 * 1024, 4, 64, 12)
    )
    memory_latency: int = 80

    def __post_init__(self) -> None:
        _require(self.memory_latency >= 1, "memory_latency must be >= 1")


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core geometry (RUU/LSQ model, Section 3 of the paper)."""

    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    #: Fetch-to-decode instruction queue depth.
    ifq_size: int = 16
    #: Register update unit (unified active list / issue queue / rename).
    ruu_size: int = 64
    #: Load-store queue.
    lsq_size: int = 32
    int_alus: int = 4
    int_multipliers: int = 1
    memory_ports: int = 2
    #: Extra front-end pipeline stages between fetch redirect and the
    #: first useful fetch (models decode/rename depth of the real
    #: machine; contributes to the misprediction penalty).
    frontend_depth: int = 3

    def __post_init__(self) -> None:
        for name in ("fetch_width", "decode_width", "issue_width", "commit_width"):
            _require(getattr(self, name) >= 1, f"{name} must be >= 1")
        _require(self.ifq_size >= self.fetch_width, "ifq_size must be >= fetch_width")
        _require(self.ruu_size >= 2, "ruu_size must be >= 2")
        _require(self.lsq_size >= 1, "lsq_size must be >= 1")
        _require(self.int_alus >= 1, "int_alus must be >= 1")
        _require(self.int_multipliers >= 1, "int_multipliers must be >= 1")
        _require(self.memory_ports >= 1, "memory_ports must be >= 1")
        _require(self.frontend_depth >= 0, "frontend_depth must be >= 0")


@dataclass(frozen=True)
class MultipathConfig:
    """Multipath-execution parameters (Section 5 of the paper)."""

    #: Maximum simultaneous path contexts (1 = conventional single path).
    max_paths: int = 1
    #: Stack organisation shared/per-path choice.
    stack_organization: StackOrganization = StackOrganization.PER_PATH
    #: JRS confidence-estimator table entries.
    confidence_entries: int = 1024
    #: A conditional branch forks when its confidence counter is below
    #: this threshold (low confidence => likely misprediction => fork).
    confidence_threshold: int = 4
    #: Saturating ceiling of the confidence (miss distance) counters.
    confidence_max: int = 15

    def __post_init__(self) -> None:
        _require(self.max_paths >= 1, "max_paths must be >= 1")
        _require(
            _is_power_of_two(self.confidence_entries),
            "confidence_entries must be a power of two",
        )
        _require(
            0 <= self.confidence_threshold <= self.confidence_max,
            "confidence_threshold must be within [0, confidence_max]",
        )


@dataclass(frozen=True)
class MachineConfig:
    """Complete simulated-machine description."""

    core: CoreConfig = field(default_factory=CoreConfig)
    predictor: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)
    multipath: MultipathConfig = field(default_factory=MultipathConfig)

    def fingerprint(self) -> str:
        """Stable content hash of the complete configuration.

        Two configs fingerprint equally iff every field (across core,
        predictor, memory, and multipath) is equal, independent of how
        the config was constructed. The experiment result cache keys on
        this, so the digest must only depend on field values — enums
        are reduced to their stable ``.value`` strings, never to
        ``repr`` or identity.
        """
        def plain(value: object) -> object:
            if isinstance(value, enum.Enum):
                return value.value
            if isinstance(value, dict):
                return {key: plain(item) for key, item in value.items()}
            if isinstance(value, (list, tuple)):
                return [plain(item) for item in value]
            return value

        payload = json.dumps(plain(asdict(self)), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_json_dict(self) -> dict:
        """JSON-safe dict of every field (enums as their ``.value``).

        This is the wire form the distributed sweep backend ships to
        remote workers (:mod:`repro.cluster.protocol`); it round-trips
        through :meth:`from_json_dict` to an equal config with an equal
        :meth:`fingerprint`.
        """
        def plain(value: object) -> object:
            if isinstance(value, enum.Enum):
                return value.value
            if isinstance(value, dict):
                return {key: plain(item) for key, item in value.items()}
            if isinstance(value, (list, tuple)):
                return [plain(item) for item in value]
            return value

        return plain(asdict(self))  # type: ignore[return-value]

    @classmethod
    def from_json_dict(cls, data: dict) -> "MachineConfig":
        """Rebuild a config from :meth:`to_json_dict` output.

        Validation runs again on construction, so a tampered or
        truncated wire payload fails fast with :class:`ConfigError`
        rather than producing a silently different machine.
        """
        try:
            predictor = dict(data["predictor"])
            predictor["ras_repair"] = RepairMechanism(predictor["ras_repair"])
            memory = dict(data["memory"])
            for level in ("l1i", "l1d", "l2"):
                memory[level] = CacheConfig(**memory[level])
            multipath = dict(data["multipath"])
            multipath["stack_organization"] = StackOrganization(
                multipath["stack_organization"])
            return cls(
                core=CoreConfig(**data["core"]),
                predictor=BranchPredictorConfig(**predictor),
                memory=MemoryHierarchyConfig(**memory),
                multipath=MultipathConfig(**multipath),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigError(f"malformed machine-config payload: {error}")

    def with_repair(self, mechanism: RepairMechanism) -> "MachineConfig":
        """Return a copy of this config using ``mechanism`` for RAS repair."""
        return replace(self, predictor=replace(self.predictor, ras_repair=mechanism))

    def with_ras_entries(self, entries: int) -> "MachineConfig":
        """Return a copy of this config with a ``entries``-deep RAS."""
        return replace(self, predictor=replace(self.predictor, ras_entries=entries))

    def with_contents_depth(self, depth: int) -> "MachineConfig":
        """Return a pointer+contents config saving the top ``depth``
        entries per checkpoint (the paper's 'arbitrary number' remark)."""
        return replace(
            self,
            predictor=replace(
                self.predictor,
                ras_repair=RepairMechanism.TOS_POINTER_AND_CONTENTS,
                repair_contents_depth=depth,
            ),
        )

    def without_ras(self) -> "MachineConfig":
        """Return the BTB-only baseline (Table 4)."""
        return replace(self, predictor=replace(self.predictor, ras_enabled=False))

    def with_multipath(
        self,
        max_paths: int,
        stack_organization: StackOrganization,
    ) -> "MachineConfig":
        """Return a copy configured for multipath execution."""
        return replace(
            self,
            multipath=replace(
                self.multipath,
                max_paths=max_paths,
                stack_organization=stack_organization,
            ),
        )
