"""Enumerations of the design choices the paper evaluates."""

from __future__ import annotations

import enum


class RepairMechanism(enum.Enum):
    """Return-address-stack repair mechanism (the paper's Section 4).

    The first four are the mechanisms the paper evaluates head-to-head;
    the last two are related-work variants implemented as extensions.
    """

    #: No repair: wrong-path pushes and pops are never undone.
    NONE = "none"
    #: Checkpoint and restore only the top-of-stack pointer
    #: (Cyrix-patent style; cheapest repair).
    TOS_POINTER = "tos-pointer"
    #: Checkpoint the TOS pointer *and* the contents of the top entry —
    #: the paper's proposal; repairs the common pop-then-push overwrite.
    TOS_POINTER_AND_CONTENTS = "tos-pointer-contents"
    #: Checkpoint the entire stack at every prediction (upper bound).
    FULL_STACK = "full-stack"
    #: Pentium-style valid bits: detect corrupted entries after recovery
    #: and fall back to the BTB when popping an invalid entry.
    VALID_BITS = "valid-bits"
    #: Jourdan-style self-checkpointing: pushes never overwrite entries
    #: that a checkpointed pointer might still reference, so a
    #: pointer-only restore also recovers contents.
    SELF_CHECKPOINT = "self-checkpoint"
    #: ChampSim's ``return_stack``: a bounded deque that drops from the
    #: bottom on overflow, stores *call sites*, and learns per-call-site
    #: instruction sizes (``call_size_trackers``) so predictions land at
    #: call + size — the realism feature variable-length ISAs need. No
    #: repair state (wrong-path damage persists, like NONE); used for
    #: cross-validation against the reference ChampSim model
    #: (see docs/validation.md).
    CHAMPSIM = "champsim"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Mechanisms compared in the paper's main single-path evaluation (F1/F2).
PRIMARY_MECHANISMS = (
    RepairMechanism.NONE,
    RepairMechanism.TOS_POINTER,
    RepairMechanism.TOS_POINTER_AND_CONTENTS,
    RepairMechanism.FULL_STACK,
)


class StackOrganization(enum.Enum):
    """Return-address-stack organisation under multipath execution."""

    #: One stack shared by every concurrent path (the broken baseline).
    UNIFIED = "unified"
    #: One shared stack with full checkpointing at every fork/prediction.
    UNIFIED_CHECKPOINT = "unified-checkpoint"
    #: A private stack per path context, copied on fork (the paper's fix).
    PER_PATH = "per-path"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
