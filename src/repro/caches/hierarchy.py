"""The two-level cache hierarchy (Table 1's memory system)."""

from __future__ import annotations

from repro.caches.cache import Cache
from repro.config.machine import MemoryHierarchyConfig


class MemoryHierarchy:
    """Split L1 I/D over a unified L2 over fixed-latency memory.

    Every access returns the total latency in cycles. Mis-speculated
    accesses go through the same path — wrong-path prefetching and
    pollution are modelled, as the paper stresses.
    """

    def __init__(self, config: MemoryHierarchyConfig) -> None:
        self.config = config
        self.l1i = Cache(config.l1i)
        self.l1d = Cache(config.l1d)
        self.l2 = Cache(config.l2)

    def _through_l2(self, address: int, l1_latency: int) -> int:
        if self.l2.access(address):
            return l1_latency + self.config.l2.hit_latency
        return (l1_latency + self.config.l2.hit_latency
                + self.config.memory_latency)

    def fetch_instruction(self, address: int) -> int:
        """Instruction-fetch access; returns latency in cycles."""
        if self.l1i.access(address):
            return self.config.l1i.hit_latency
        return self._through_l2(address, self.config.l1i.hit_latency)

    def access_data(self, address: int, is_store: bool = False) -> int:
        """Load/store access; returns latency in cycles.

        Stores use the same path (write-allocate); store latency is
        hidden by the LSQ in the pipeline, but the line still moves,
        which is what affects later loads.
        """
        if self.l1d.access(address):
            return self.config.l1d.hit_latency
        return self._through_l2(address, self.config.l1d.hit_latency)
