"""One set-associative cache level with true-LRU replacement.

Timing-only: the cache tracks which lines are present, not their data
(functional values live in :class:`~repro.emu.MachineState`). This is
exactly SimpleScalar's split between its cache module and its emulator.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config.machine import CacheConfig
from repro.stats import StatGroup


class Cache:
    """Tag store for one cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # Sets materialise on first touch: a large L2 has tens of
        # thousands of sets, and eagerly allocating one list per set
        # costs milliseconds per simulator construction — comparable to
        # an entire fast-engine run on a small workload. Touched sets
        # behave identically to the previous dense list-of-lists.
        self._sets: Dict[int, List[int]] = {}
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self.stats = StatGroup(config.name)
        self._accesses = self.stats.counter("accesses")
        self._misses = self.stats.counter("misses")

    def access(self, address: int) -> bool:
        """Probe (and on miss, fill) the line holding ``address``.

        Returns True on a hit. The miss path allocates immediately —
        a simple blocking-fill model; latency accounting lives in
        :class:`~repro.caches.hierarchy.MemoryHierarchy`.
        """
        self._accesses.value += 1  # inlined Counter.increment (hot path)
        line = address >> self._line_shift
        index = line & self._set_mask
        ways = self._sets.get(index)
        if ways is None:
            ways = self._sets[index] = []
        elif ways[-1] == line:
            # MRU hit: sequential fetch re-touches the same line many
            # times in a row, so skip the LRU scan-and-rotate (which
            # would be a no-op anyway).
            return True
        try:
            position = ways.index(line)
        except ValueError:
            self._misses.value += 1
            if len(ways) >= self.config.assoc:
                ways.pop(0)
            ways.append(line)
            return False
        if position != len(ways) - 1:
            ways.append(ways.pop(position))
        return True

    def probe(self, address: int) -> bool:
        """Check presence without updating LRU or filling (tests only)."""
        line = address >> self._line_shift
        return line in self._sets.get(line & self._set_mask, ())

    @property
    def miss_rate(self) -> float:
        if self._accesses.value == 0:
            return 0.0
        return self._misses.value / self._accesses.value

    def same_line(self, a: int, b: int) -> bool:
        """Do addresses ``a`` and ``b`` share a cache line?"""
        return (a >> self._line_shift) == (b >> self._line_shift)
