"""One set-associative cache level with true-LRU replacement.

Timing-only: the cache tracks which lines are present, not their data
(functional values live in :class:`~repro.emu.MachineState`). This is
exactly SimpleScalar's split between its cache module and its emulator.
"""

from __future__ import annotations

from typing import List

from repro.config.machine import CacheConfig
from repro.stats import StatGroup


class Cache:
    """Tag store for one cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self.stats = StatGroup(config.name)
        self._accesses = self.stats.counter("accesses")
        self._misses = self.stats.counter("misses")

    def access(self, address: int) -> bool:
        """Probe (and on miss, fill) the line holding ``address``.

        Returns True on a hit. The miss path allocates immediately —
        a simple blocking-fill model; latency accounting lives in
        :class:`~repro.caches.hierarchy.MemoryHierarchy`.
        """
        self._accesses.increment()
        line = address >> self._line_shift
        ways = self._sets[line & self._set_mask]
        try:
            position = ways.index(line)
        except ValueError:
            self._misses.increment()
            if len(ways) >= self.config.assoc:
                ways.pop(0)
            ways.append(line)
            return False
        if position != len(ways) - 1:
            ways.append(ways.pop(position))
        return True

    def probe(self, address: int) -> bool:
        """Check presence without updating LRU or filling (tests only)."""
        line = address >> self._line_shift
        return line in self._sets[line & self._set_mask]

    @property
    def miss_rate(self) -> float:
        if self._accesses.value == 0:
            return 0.0
        return self._misses.value / self._accesses.value

    def same_line(self, a: int, b: int) -> bool:
        """Do addresses ``a`` and ``b`` share a cache line?"""
        return (a >> self._line_shift) == (b >> self._line_shift)
