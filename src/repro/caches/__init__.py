"""Memory hierarchy: set-associative caches and the two-level hierarchy."""

from repro.caches.cache import Cache
from repro.caches.hierarchy import MemoryHierarchy

__all__ = ["Cache", "MemoryHierarchy"]
