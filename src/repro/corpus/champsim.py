"""ChampSim trace import: foreign control flow for our replay path.

ChampSim traces are flat streams of 64-byte ``input_instr`` records
(x86 pin traces, usually xz- or gzip-compressed):

====== ===== =================================================
offset bytes field
====== ===== =================================================
0      8     instruction pointer (uint64 LE)
8      1     is_branch
9      1     branch_taken
10     2     destination registers
12     4     source registers
16     16    destination memory operands (2 x uint64)
32     32    source memory operands (4 x uint64)
====== ===== =================================================

Records carry no branch *type* and no target; both are reconstructed
the way ChampSim's own tracereader does it. The type comes from which
architectural registers a branch reads/writes — the stack pointer,
FLAGS, and the instruction pointer are encoded as fixed register ids —
and the target of every branch is simply the next record's instruction
pointer (the trace is the committed path). The classification table:

============== ========= ========= ======== ================
branch         reads     writes    maps to  notes
============== ========= ========= ======== ================
direct jump    IP        IP        JUMP_DIRECT   always taken
conditional    IP+FLAGS  IP        COND_BRANCH
direct call    IP+SP     IP+SP     CALL_DIRECT
indirect call  SP+other  IP+SP     CALL_INDIRECT
return         SP        IP+SP     RETURN
indirect jump  other     IP        JUMP_INDIRECT
============== ========= ========= ======== ================

Caveats (see docs/traces.md): the final record of a trace cannot be a
usable event if it is a branch (there is no following record to supply
its target — it is counted in ``ImportStats.dropped_tail``); branches
the table cannot classify are conservatively treated as conditional
branches and counted in ``ImportStats.unclassified``; and x86
instructions are variable-length, so ``ControlFlowEvent.taken`` (a
``pc + 4`` heuristic) is meaningless for imported events — RAS replay
never consults it.
"""

from __future__ import annotations

import gzip
import lzma
import struct
from typing import BinaryIO, Dict, Iterator, Optional, Tuple, Union

import dataclasses
import os
import pathlib

from repro.errors import CorpusError
from repro.isa.opcodes import ControlClass

#: One ChampSim ``input_instr``: ip, is_branch, branch_taken,
#: 2 destination registers, 4 source registers, 2 destination memory
#: operands, 4 source memory operands.
RECORD = struct.Struct("<QBB2B4B2Q4Q")
assert RECORD.size == 64

#: ChampSim's fixed register ids for the registers that matter to
#: branch-type classification.
REG_STACK_POINTER = 6
REG_FLAGS = 25
REG_INSTRUCTION_POINTER = 26

_XZ_MAGIC = b"\xfd7zXZ\x00"
_GZIP_MAGIC = b"\x1f\x8b"


#: Depth bound of the import-time shadow call stack that measures
#: return-offset mismatches; deeper call chains just stop attributing
#: returns to calls (never an error).
SHADOW_STACK_DEPTH = 4096


@dataclasses.dataclass
class ImportStats:
    """What one ChampSim import saw, for reporting and sanity checks.

    ``offset_mismatches`` counts returns whose target is *not* its
    call site + 4 — exactly the returns our fixed-width ``pc + 4``
    replay heuristic would mispredict but ChampSim-style call-size
    calibration can recover (see docs/validation.md). It is measured
    with a bounded shadow call stack at import time; returns with no
    matching call in view are not counted either way.
    ``backwards_returns`` counts the subset whose target lies *below*
    the call site (the pattern ChampSim warns about).
    """

    records: int = 0
    branches: int = 0
    events: int = 0
    unclassified: int = 0
    dropped_tail: int = 0
    offset_mismatches: int = 0
    backwards_returns: int = 0
    by_class: Dict[str, int] = dataclasses.field(default_factory=dict)

    def count(self, control: ControlClass) -> None:
        self.events += 1
        self.by_class[control.value] = self.by_class.get(control.value, 0) + 1


def open_champsim_stream(path: Union[str, os.PathLike]) -> BinaryIO:
    """Open a ChampSim trace, sniffing xz/gzip/raw by magic bytes."""
    path = pathlib.Path(path)
    try:
        with open(path, "rb") as probe:
            magic = probe.read(len(_XZ_MAGIC))
    except OSError as error:
        raise CorpusError(
            f"cannot read ChampSim trace {path}: {error}") from error
    if magic.startswith(_XZ_MAGIC):
        return lzma.open(path, "rb")  # type: ignore[return-value]
    if magic.startswith(_GZIP_MAGIC):
        return gzip.open(path, "rb")  # type: ignore[return-value]
    return open(path, "rb")


def iter_champsim_records(
    path: Union[str, os.PathLike],
    limit: Optional[int] = None,
) -> Iterator[Tuple[int, ...]]:
    """Yield raw unpacked 64-byte records from a ChampSim trace.

    Each item is the flat :data:`RECORD` tuple:
    ``(ip, is_branch, taken, d0, d1, s0, s1, s2, s3, *memory)``.
    A trailing partial record is a hard, typed error — silently
    dropping bytes would make corrupt downloads look like short traces.
    """
    produced = 0
    with open_champsim_stream(path) as stream:
        while limit is None or produced < limit:
            raw = stream.read(RECORD.size)
            if not raw:
                return
            if len(raw) != RECORD.size:
                raise CorpusError(
                    f"truncated ChampSim record in {os.fspath(path)}: "
                    f"found {len(raw)} bytes, expected {RECORD.size}")
            yield RECORD.unpack(raw)
            produced += 1


def classify_branch(
    destinations: Tuple[int, int],
    sources: Tuple[int, int, int, int],
) -> Optional[ControlClass]:
    """Branch type from register usage, per ChampSim's heuristics.

    Returns ``None`` when the register pattern matches none of the six
    shapes (the caller decides the fallback).
    """
    writes_ip = REG_INSTRUCTION_POINTER in destinations
    writes_sp = REG_STACK_POINTER in destinations
    reads_ip = REG_INSTRUCTION_POINTER in sources
    reads_sp = REG_STACK_POINTER in sources
    reads_flags = REG_FLAGS in sources
    reads_other = any(
        reg not in (0, REG_STACK_POINTER, REG_FLAGS, REG_INSTRUCTION_POINTER)
        for reg in sources)
    if not writes_ip:
        return None
    if not reads_sp and not reads_flags and reads_ip and not reads_other:
        return ControlClass.JUMP_DIRECT
    if not reads_sp and reads_flags and reads_ip and not reads_other:
        return ControlClass.COND_BRANCH
    if reads_sp and writes_sp and not reads_flags and reads_ip \
            and not reads_other:
        return ControlClass.CALL_DIRECT
    if reads_sp and writes_sp and not reads_flags and not reads_ip \
            and reads_other:
        return ControlClass.CALL_INDIRECT
    if reads_sp and writes_sp and not reads_flags and not reads_ip \
            and not reads_other:
        return ControlClass.RETURN
    if not reads_sp and not reads_flags and not reads_ip and reads_other:
        return ControlClass.JUMP_INDIRECT
    return None


def champsim_events(
    path: Union[str, os.PathLike],
    limit: Optional[int] = None,
    stats: Optional[ImportStats] = None,
):
    """Decode a ChampSim trace into a stream of ``ControlFlowEvent``s.

    Streaming: one record of lookahead (a branch's target is the next
    record's ip), O(1) memory. Pass an :class:`ImportStats` to collect
    classification counts. ``limit`` bounds the *records read*, not the
    events produced.
    """
    from repro.trace.format import ControlFlowEvent

    stats = stats if stats is not None else ImportStats()
    pending: Optional[Tuple[ControlClass, int, int]] = None
    gap = 0
    shadow: list = []  # call sites, for offset-mismatch attribution
    for record in iter_champsim_records(path, limit=limit):
        ip = record[0]
        is_branch = record[1]
        if pending is not None:
            control, branch_ip, branch_gap = pending
            stats.count(control)
            if control.is_call:
                if len(shadow) < SHADOW_STACK_DEPTH:
                    shadow.append(branch_ip)
            elif control is ControlClass.RETURN and shadow:
                call_ip = shadow.pop()
                if ip != call_ip + 4:
                    stats.offset_mismatches += 1
                if ip < call_ip:
                    stats.backwards_returns += 1
            yield ControlFlowEvent(control, branch_ip, ip, branch_gap)
            pending = None
        stats.records += 1
        if is_branch:
            stats.branches += 1
            control = classify_branch(record[3:5], record[5:9])
            if control is None:
                stats.unclassified += 1
                control = ControlClass.COND_BRANCH
            pending = (control, ip, gap)
            gap = 0
        else:
            gap += 1
    if pending is not None:
        stats.dropped_tail += 1
