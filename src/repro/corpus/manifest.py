"""The corpus manifest: one JSON document describing every shard.

A corpus directory holds trace shards plus a ``manifest.json`` whose
schema is deliberately plain (documented in docs/traces.md):

.. code-block:: json

    {
      "schema": 1,
      "description": "...",
      "shards": [
        {
          "name": "li-s1-x0.25",
          "filename": "li-s1-x0.25.rastrace",
          "format_version": 2,
          "events": 12345,
          "calls": 678,
          "returns": 678,
          "checksum": "<sha256 of the shard file>",
          "source": {"kind": "workload", "name": "li",
                     "seed": 1, "scale": 0.25}
        }
      ]
    }

``source.kind`` is ``"workload"`` for shards recorded from our own
seeded generator, ``"champsim"`` for imports, and ``"events"`` for
ad-hoc event streams. The checksum is the shard's cache identity: the
executor keys trace-replay results on it, never on paths.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import CorpusError

#: Bump when the manifest JSON layout changes shape.
MANIFEST_SCHEMA = 1

#: ``source.kind`` values a well-formed manifest may use.
SOURCE_KINDS = ("workload", "champsim", "events")


@dataclasses.dataclass(frozen=True)
class ShardRecord:
    """Manifest entry for one trace shard."""

    name: str
    filename: str
    format_version: int
    events: int
    calls: int
    returns: int
    checksum: str
    source: Dict[str, object]

    def __post_init__(self) -> None:
        kind = self.source.get("kind")
        if kind not in SOURCE_KINDS:
            raise CorpusError(
                f"shard {self.name!r}: bad source kind {kind!r}; "
                f"expected one of {SOURCE_KINDS}")

    @property
    def kind(self) -> str:
        return str(self.source["kind"])

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardRecord":
        missing = [field.name for field in dataclasses.fields(cls)
                   if field.name not in data]
        if missing:
            raise CorpusError(
                f"shard entry missing keys {missing}: {data!r}")
        try:
            return cls(
                name=str(data["name"]),
                filename=str(data["filename"]),
                format_version=int(data["format_version"]),  # type: ignore[arg-type]
                events=int(data["events"]),  # type: ignore[arg-type]
                calls=int(data["calls"]),  # type: ignore[arg-type]
                returns=int(data["returns"]),  # type: ignore[arg-type]
                checksum=str(data["checksum"]),
                source=dict(data["source"]),  # type: ignore[arg-type]
            )
        except (TypeError, ValueError) as error:
            raise CorpusError(f"malformed shard entry: {error}") from error


class CorpusManifest:
    """In-memory view of a corpus ``manifest.json``."""

    def __init__(self, shards: Optional[List[ShardRecord]] = None,
                 description: str = "") -> None:
        self.description = description
        self._shards: Dict[str, ShardRecord] = {}
        for shard in shards or []:
            self.add(shard)

    # -- collection ----------------------------------------------------

    def add(self, shard: ShardRecord) -> None:
        if shard.name in self._shards:
            raise CorpusError(f"duplicate shard name {shard.name!r}")
        self._shards[shard.name] = shard

    def get(self, name: str) -> ShardRecord:
        try:
            return self._shards[name]
        except KeyError:
            raise CorpusError(
                f"no shard named {name!r}; corpus has "
                f"{sorted(self._shards) or 'no shards'}") from None

    def names(self) -> List[str]:
        return list(self._shards)

    def __iter__(self) -> Iterator[ShardRecord]:
        return iter(self._shards.values())

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, name: object) -> bool:
        return name in self._shards

    @property
    def total_events(self) -> int:
        return sum(shard.events for shard in self)

    # -- serialisation -------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "schema": MANIFEST_SCHEMA,
            "description": self.description,
            "shards": [shard.to_dict() for shard in self],
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "CorpusManifest":
        schema = data.get("schema")
        if schema != MANIFEST_SCHEMA:
            raise CorpusError(
                f"unsupported manifest schema: found {schema!r}, "
                f"expected {MANIFEST_SCHEMA}")
        shards_raw = data.get("shards", [])
        if not isinstance(shards_raw, list):
            raise CorpusError(
                f"manifest 'shards' must be a list, got "
                f"{type(shards_raw).__name__}")
        return cls(
            shards=[ShardRecord.from_dict(entry) for entry in shards_raw],
            description=str(data.get("description", "")),
        )

    def save(self, path: Union[str, pathlib.Path]) -> None:
        path = pathlib.Path(path)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self.to_json_dict(), indent=2,
                                  sort_keys=True) + "\n")
        tmp.replace(path)  # atomic: readers never see partial manifests

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "CorpusManifest":
        path = pathlib.Path(path)
        try:
            data = json.loads(path.read_text())
        except OSError as error:
            raise CorpusError(f"cannot read manifest {path}: {error}") from error
        except ValueError as error:
            raise CorpusError(
                f"manifest {path} is not valid JSON: {error}") from error
        if not isinstance(data, dict):
            raise CorpusError(
                f"manifest {path} must be a JSON object, got "
                f"{type(data).__name__}")
        return cls.from_json_dict(data)
