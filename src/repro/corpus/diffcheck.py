"""Differential cross-validation against a reference ChampSim model.

The paper's repair mechanisms are only as credible as the RAS model
they run on, so this module replays any trace shard through **two**
implementations side by side and demands bit-identical predictions:

* *ours* — the production replay lane
  (:class:`repro.trace.replay._Lane`), i.e. whichever
  :class:`~repro.bpred.ras.BaseRas` variant the mechanism names, driven
  exactly as corpus sweeps drive it;
* *reference* — :class:`ReferenceReturnStack`, a deliberately
  straight-line transliteration of ChampSim's ``return_stack``
  (``btb/basic_btb/return_stack.cc``), kept free of every abstraction
  the production class uses so the two cannot share a bug.

Divergence is judged **per return event**: the two predicted targets
must be equal (and hence hit/miss must agree). The result is a
machine-readable :class:`DiffReport` — exact hit/event pairs for both
sides, the PR 5 parity pattern applied cross-implementation — whose
``first_divergence`` block carries the event index, pc/target, both
predictions, and a ring of the preceding events so a red CI gate is
diagnosable from the artifact alone (see docs/validation.md).

For the ``champsim`` mechanism the acceptance bar is **zero
divergences on every shard**; other mechanisms diverge wherever their
organisation genuinely differs (informative, not an error, unless you
``ensure()``).

Fault injection: set ``REPRO_DIFF_CORRUPT_EVENT=<index>`` to perturb
the target of the <index>-th return event *as seen by our lane only*.
The reference still sees the pristine trace, so the gate must go red —
the corpus-smoke CI job and ``tests/test_diffcheck.py`` both prove the
alarm actually fires (the same chaos-knob idiom as
``REPRO_CHAOS_KILL_MIDJOB`` in the cluster layer). The knob bypasses
the result cache: a corrupted run is never served from, or written to,
cached entries.
"""

from __future__ import annotations

import collections
import dataclasses
import os
from typing import Deque, Dict, Iterable, List, Optional, Union

from repro.config.options import RepairMechanism
from repro.errors import DivergenceError
from repro.isa.opcodes import ControlClass
from repro.telemetry import span
from repro.trace.format import ControlFlowEvent, iter_trace_file
from repro.trace.replay import TraceShardSpec, _Lane

#: Bump when the DiffReport JSON layout changes shape.
DIFF_SCHEMA = 1

#: How many preceding events the first-divergence context ring keeps.
CONTEXT_EVENTS = 8

#: Environment knob: corrupt the target of this return (0-based, as
#: seen by our lane only) to prove the gate fires. See module docstring.
CORRUPT_ENV = "REPRO_DIFF_CORRUPT_EVENT"


class ReferenceReturnStack:
    """Straight-line transliteration of ChampSim's ``return_stack``.

    Intentionally mirrors the C++ (SNIPPET 1) statement by statement —
    ``std::deque`` stack, ``call_size_trackers`` indexed by the call
    site's low bits, the ``<= 10``-byte calibration heuristic, and the
    backwards-return counter — and deliberately shares no code with
    :class:`repro.bpred.ras.ChampSimRas`.
    """

    def __init__(self, max_size: int = 64,
                 num_call_size_trackers: int = 1024) -> None:
        self.stack: Deque[int] = collections.deque()
        self.max_size = max_size
        self.call_size_trackers = [4] * num_call_size_trackers
        self.num_times_returned_backwards = 0
        self._index_mask = num_call_size_trackers - 1

    def prediction(self) -> Optional[int]:
        # C++ returns {champsim::address{}, true} on empty; the null
        # address never matches a real target, so ``None`` is faithful.
        if not self.stack:
            return None
        target = self.stack[-1]
        return target + self.call_size_trackers[target & self._index_mask]

    def push(self, ip: int) -> None:
        self.stack.append(ip)
        if len(self.stack) > self.max_size:
            self.stack.popleft()

    def calibrate_call_size(self, branch_target: int) -> None:
        if not self.stack:
            return
        call_ip = self.stack.pop()
        if call_ip > branch_target and \
                self.num_times_returned_backwards < 10:
            self.num_times_returned_backwards += 1
        estimated_call_instr_size = (
            call_ip - branch_target if call_ip > branch_target
            else branch_target - call_ip)
        if estimated_call_instr_size <= 10:
            self.call_size_trackers[call_ip & self._index_mask] = \
                estimated_call_instr_size


@dataclasses.dataclass(frozen=True)
class DiffReport:
    """Machine-readable outcome of one differential shard replay."""

    shard: str
    checksum: Optional[str]
    variant: str
    ras_entries: int
    events: int
    returns: int
    ours_hits: int
    reference_hits: int
    divergences: int
    #: Event index, pc, target, both predictions, and the preceding
    #: events, for the first return where the two models disagreed.
    first_divergence: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.divergences == 0

    @property
    def pairs(self) -> Dict[str, "tuple[int, int]"]:
        """Exact ``(hits, returns)`` pairs, one per implementation."""
        return {
            "ours": (self.ours_hits, self.returns),
            "reference": (self.reference_hits, self.returns),
        }

    def ensure(self) -> "DiffReport":
        """Raise :class:`DivergenceError` unless the replay was clean."""
        if self.ok:
            return self
        where = ""
        if self.first_divergence is not None:
            where = (f"; first at event {self.first_divergence['event']}"
                     f" (pc=0x{self.first_divergence['pc']:x},"
                     f" ours={self.first_divergence['ours']},"
                     f" reference={self.first_divergence['reference']})")
        raise DivergenceError(
            f"shard {self.shard!r}: {self.divergences} diverging returns "
            f"between {self.variant!r} and the reference ChampSim model "
            f"over {self.returns} returns{where}")

    def to_json_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["schema"] = DIFF_SCHEMA
        data["ok"] = self.ok
        return data

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "DiffReport":
        schema = data.get("schema")
        if schema != DIFF_SCHEMA:
            raise DivergenceError(
                f"unsupported diff report schema: found {schema!r}, "
                f"expected {DIFF_SCHEMA}")
        return cls(
            shard=str(data["shard"]),
            checksum=(None if data.get("checksum") is None
                      else str(data["checksum"])),
            variant=str(data["variant"]),
            ras_entries=int(data["ras_entries"]),  # type: ignore[arg-type]
            events=int(data["events"]),  # type: ignore[arg-type]
            returns=int(data["returns"]),  # type: ignore[arg-type]
            ours_hits=int(data["ours_hits"]),  # type: ignore[arg-type]
            reference_hits=int(data["reference_hits"]),  # type: ignore[arg-type]
            divergences=int(data["divergences"]),  # type: ignore[arg-type]
            first_divergence=data.get("first_divergence"),  # type: ignore[arg-type]
        )


def corrupt_event_index() -> Optional[int]:
    """The injected-corruption return index, or ``None`` when unset."""
    raw = os.environ.get(CORRUPT_ENV)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def _event_summary(event: ControlFlowEvent, index: int) -> Dict[str, object]:
    return {
        "event": index,
        "class": event.control.value,
        "pc": event.pc,
        "next_pc": event.next_pc,
    }


def diff_events(
    events: Iterable[ControlFlowEvent],
    ras_entries: int = 64,
    mechanism: RepairMechanism = RepairMechanism.CHAMPSIM,
    btb_fallback: bool = False,
    shard_name: str = "events",
    checksum: Optional[str] = None,
    context_events: int = CONTEXT_EVENTS,
) -> DiffReport:
    """Replay ``events`` through our lane and the reference side by side.

    ``btb_fallback`` defaults off so the comparison isolates the RAS —
    the reference model has no BTB, and a fallback hit on our side
    would read as a spurious divergence.
    """
    lane = _Lane(ras_entries, mechanism, btb_fallback)
    reference = ReferenceReturnStack(max_size=ras_entries)
    ring: Deque[Dict[str, object]] = collections.deque(
        maxlen=max(1, context_events))
    corrupt_at = corrupt_event_index()
    total = returns = ours_hits = reference_hits = divergences = 0
    first: Optional[Dict[str, object]] = None
    for index, event in enumerate(events):
        control = event.control
        if control is ControlClass.RETURN:
            reference_predicted = reference.prediction()
            reference.calibrate_call_size(event.next_pc)
            ours_event = event
            if corrupt_at is not None and returns == corrupt_at:
                # our lane alone sees a perturbed target: the reference
                # keeps the pristine trace, so the gate must trip
                ours_event = ControlFlowEvent(
                    event.control, event.pc, event.next_pc ^ 0x40,
                    event.gap)
            ours_predicted = lane.step(ours_event)
            returns += 1
            # each side is judged against the target *it* replayed, so
            # a corrupted our-side event shows up as a hit-pair
            # disagreement even when the predictions still coincide
            ours_hit = ours_predicted == ours_event.next_pc
            reference_hit = reference_predicted == event.next_pc
            ours_hits += ours_hit
            reference_hits += reference_hit
            if ours_predicted != reference_predicted \
                    or ours_hit != reference_hit:
                divergences += 1
                if first is None:
                    first = {
                        "event": index,
                        "pc": event.pc,
                        "next_pc": event.next_pc,
                        "ours": ours_predicted,
                        "reference": reference_predicted,
                        "ours_hit": ours_hit,
                        "reference_hit": reference_hit,
                        "context": list(ring),
                    }
        else:
            if control.is_call:
                reference.push(event.pc)
            lane.step(event)
        ring.append(_event_summary(event, index))
        total += 1
    return DiffReport(
        shard=shard_name,
        checksum=checksum,
        variant=mechanism.value,
        ras_entries=ras_entries,
        events=total,
        returns=returns,
        ours_hits=ours_hits,
        reference_hits=reference_hits,
        divergences=divergences,
        first_divergence=first,
    )


def diff_shard(
    shard: Union[TraceShardSpec, str, os.PathLike],
    ras_entries: int = 64,
    mechanism: RepairMechanism = RepairMechanism.CHAMPSIM,
    btb_fallback: bool = False,
) -> DiffReport:
    """Stream one on-disk shard through the differential harness."""
    if isinstance(shard, TraceShardSpec):
        path, name, checksum = shard.path, shard.name, shard.checksum
    else:
        path = os.fspath(shard)
        name, checksum = path, None
    with span("corpus/diffcheck", shard=name, entries=ras_entries,
              variant=mechanism.value):
        return diff_events(
            iter_trace_file(path), ras_entries=ras_entries,
            mechanism=mechanism, btb_fallback=btb_fallback,
            shard_name=name, checksum=checksum)


def diff_corpus(
    store,
    ras_entries: int = 64,
    mechanism: RepairMechanism = RepairMechanism.CHAMPSIM,
    executor=None,
    names: Optional[Iterable[str]] = None,
) -> List[DiffReport]:
    """Differentially replay every selected shard of a corpus.

    Counts are fanned over the executor's ``"diffcheck"`` engine
    (parallel, cached by shard checksum); only shards whose cached
    counts show divergences are re-replayed directly, to recover the
    full first-divergence context the cached counters cannot carry.
    With the corruption knob set the executor path is bypassed
    entirely so cached entries are neither trusted nor poisoned.
    """
    from repro.config.defaults import baseline_config
    from repro.core.executor import ExperimentJob, SweepExecutor

    specs = [store.spec(record) for record in store.records(names=names)]
    if corrupt_event_index() is not None:
        return [diff_shard(spec, ras_entries=ras_entries,
                           mechanism=mechanism) for spec in specs]
    if executor is None:
        executor = SweepExecutor()
    config = baseline_config().with_repair(mechanism) \
                              .with_ras_entries(ras_entries)
    jobs = [ExperimentJob(spec, config, engine="diffcheck")
            for spec in specs]
    results = executor.run(jobs)
    reports: List[DiffReport] = []
    for spec, result in zip(specs, results):
        if result.counter("divergences"):
            reports.append(diff_shard(spec, ras_entries=ras_entries,
                                      mechanism=mechanism))
        else:
            reports.append(DiffReport(
                shard=spec.name,
                checksum=spec.checksum,
                variant=mechanism.value,
                ras_entries=ras_entries,
                events=result.instructions,
                returns=result.counter("returns"),
                ours_hits=result.counter("return_hits"),
                reference_hits=result.counter("reference_hits"),
                divergences=0,
            ))
    return reports
