"""The shard store: a directory of trace shards plus a manifest.

``CorpusStore`` manages durable, sharded trace corpora on disk:

* shards are v2 chunked trace containers (``<name>.rastrace``, see
  :mod:`repro.trace.format`), written streaming — ingestion never
  materialises an event list, so a shard may exceed RAM;
* ``manifest.json`` records, per shard, the event/call/return counts,
  a SHA-256 checksum, and the provenance (workload spec, ChampSim
  source file, or ad-hoc events), see :mod:`repro.corpus.manifest`;
* every read path streams too: :meth:`events` decodes one compressed
  block at a time, and :meth:`spec` hands out the picklable
  :class:`~repro.trace.replay.TraceShardSpec` that executor-driven
  sweeps fan out over.

Checksums are the corpus's integrity story end to end: :meth:`verify`
recomputes them against the manifest, and the experiment executor keys
cached trace-replay results on them, so editing a shard file both
fails verification and invalidates its cached results.
"""

from __future__ import annotations

import hashlib
import pathlib
import re
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Union

from repro.corpus.champsim import ImportStats, champsim_events
from repro.corpus.manifest import CorpusManifest, ShardRecord
from repro.core.experiment import WorkloadSpec, build_program
from repro.errors import CorpusError
from repro.isa.opcodes import ControlClass
from repro.telemetry import span
from repro.trace.format import (
    ControlFlowEvent,
    DEFAULT_BLOCK_EVENTS,
    TraceWriter,
    VERSION_CHUNKED,
    iter_control_events,
    iter_trace_file,
)
from repro.trace.replay import TraceShardSpec

#: Shard names become filenames; keep them boring and traversal-proof.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_SHARD_SUFFIX = ".rastrace"
_CHECKSUM_CHUNK = 1 << 20


def _file_sha256(path: pathlib.Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        for chunk in iter(lambda: stream.read(_CHECKSUM_CHUNK), b""):
            digest.update(chunk)
    return digest.hexdigest()


def check_shard_name(name: str) -> str:
    """Validate a shard name (they become filenames); returns it."""
    if not _NAME_RE.match(name):
        raise CorpusError(
            f"bad shard name {name!r}; use letters, digits, '.', "
            f"'_' and '-' only")
    return name


def write_shard_file(
    path: pathlib.Path,
    events: Iterable[ControlFlowEvent],
    version: int = VERSION_CHUNKED,
    block_events: int = DEFAULT_BLOCK_EVENTS,
) -> "tuple[int, int, int]":
    """Stream ``events`` into a shard file; returns (events, calls,
    returns).

    The write side of ingestion, with no manifest involvement — safe to
    run in a worker process while the parent owns the manifest (see
    :func:`ingest_champsim_shard` and :mod:`repro.corpus.fetch`). A
    failed write removes the partial file before re-raising.
    """
    calls = 0
    returns = 0
    try:
        with open(path, "wb") as stream:
            writer = TraceWriter(stream, version=version,
                                 block_events=block_events)
            for event in events:
                writer.append(event)
                if event.control.is_call:
                    calls += 1
                elif event.control is ControlClass.RETURN:
                    returns += 1
            count = writer.close()
    except BaseException:
        path.unlink(missing_ok=True)
        raise
    return count, calls, returns


def ingest_champsim_shard(
    root: Union[str, pathlib.Path],
    name: str,
    trace_path: Union[str, pathlib.Path],
    limit: Optional[int] = None,
) -> "tuple[ShardRecord, ImportStats]":
    """Decode one ChampSim trace into ``<root>/<name>.rastrace``.

    Module-level and manifest-free so process-pool workers can run it
    (parallel ingestion, see :func:`repro.corpus.fetch.ingest_traces`);
    the caller registers the returned record via
    :meth:`CorpusStore.register`.
    """
    check_shard_name(name)
    root = pathlib.Path(root)
    path = root / f"{name}{_SHARD_SUFFIX}"
    if path.exists():
        raise CorpusError(f"shard file {path} already exists")
    stats = ImportStats()
    with span("corpus/ingest", shard=name) as ingest:
        count, calls, returns = write_shard_file(
            path, champsim_events(trace_path, limit=limit, stats=stats))
        if ingest is not None:
            ingest.set(events=count, calls=calls, returns=returns)
    record = ShardRecord(
        name=name,
        filename=path.name,
        format_version=VERSION_CHUNKED,
        events=count,
        calls=calls,
        returns=returns,
        checksum=_file_sha256(path),
        source={"kind": "champsim", "path": str(trace_path),
                **({"limit": limit} if limit is not None else {})},
    )
    return record, stats


def workload_shard_name(spec: WorkloadSpec) -> str:
    """Canonical shard name for a workload spec: ``li-s1-x0.25``."""
    return f"{spec.name}-s{spec.seed}-x{spec.scale:g}"


class CorpusStore:
    """A directory of trace shards described by one manifest."""

    MANIFEST_NAME = "manifest.json"

    def __init__(self, root: Union[str, pathlib.Path],
                 manifest: CorpusManifest) -> None:
        self.root = pathlib.Path(root)
        self.manifest = manifest

    # -- construction --------------------------------------------------

    @classmethod
    def create(cls, root: Union[str, pathlib.Path],
               description: str = "") -> "CorpusStore":
        """Initialise an empty corpus at ``root`` (dir may pre-exist)."""
        root = pathlib.Path(root)
        root.mkdir(parents=True, exist_ok=True)
        manifest_path = root / cls.MANIFEST_NAME
        if manifest_path.exists():
            raise CorpusError(
                f"{root} already holds a corpus "
                f"({cls.MANIFEST_NAME} exists); use CorpusStore.open")
        store = cls(root, CorpusManifest(description=description))
        store.save()
        return store

    @classmethod
    def open(cls, root: Union[str, pathlib.Path]) -> "CorpusStore":
        root = pathlib.Path(root)
        return cls(root, CorpusManifest.load(root / cls.MANIFEST_NAME))

    @classmethod
    def open_or_create(cls, root: Union[str, pathlib.Path],
                       description: str = "") -> "CorpusStore":
        root = pathlib.Path(root)
        if (root / cls.MANIFEST_NAME).exists():
            return cls.open(root)
        return cls.create(root, description=description)

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.root / self.MANIFEST_NAME

    def save(self) -> None:
        self.manifest.save(self.manifest_path)

    # -- shard access --------------------------------------------------

    def shard_path(self, record: ShardRecord) -> pathlib.Path:
        return self.root / record.filename

    def records(
        self,
        kind: Optional[str] = None,
        predicate: Optional[Callable[[ShardRecord], bool]] = None,
        names: Optional[Iterable[str]] = None,
    ) -> List[ShardRecord]:
        """Manifest entries, optionally filtered by source kind, an
        arbitrary predicate, and/or an explicit name list."""
        if names is not None:
            selected = [self.manifest.get(name) for name in names]
        else:
            selected = list(self.manifest)
        if kind is not None:
            selected = [record for record in selected if record.kind == kind]
        if predicate is not None:
            selected = [record for record in selected if predicate(record)]
        return selected

    def events(self, name: str) -> Iterator[ControlFlowEvent]:
        """Stream one shard's events from disk."""
        return iter_trace_file(str(self.shard_path(self.manifest.get(name))))

    def spec(self, record_or_name: Union[ShardRecord, str]) -> TraceShardSpec:
        """The picklable identity executor jobs and cache keys use."""
        record = (record_or_name if isinstance(record_or_name, ShardRecord)
                  else self.manifest.get(record_or_name))
        return TraceShardSpec(
            name=record.name,
            path=str(self.shard_path(record)),
            checksum=record.checksum,
            events=record.events,
            calls=record.calls,
            returns=record.returns,
        )

    def specs(self, **filters) -> List[TraceShardSpec]:
        return [self.spec(record) for record in self.records(**filters)]

    # -- ingestion -----------------------------------------------------

    def add_shard(
        self,
        name: str,
        events: Iterable[ControlFlowEvent],
        source: Dict[str, object],
        version: int = VERSION_CHUNKED,
        block_events: int = DEFAULT_BLOCK_EVENTS,
    ) -> ShardRecord:
        """Stream ``events`` into a new shard and register it.

        The event iterable is consumed exactly once and never
        materialised; counts and the checksum are computed along the
        way. A failed ingest removes the partial file before
        re-raising, so the corpus directory never holds orphans.
        """
        check_shard_name(name)
        if name in self.manifest:
            raise CorpusError(f"duplicate shard name {name!r}")
        path = self.root / f"{name}{_SHARD_SUFFIX}"
        if path.exists():
            raise CorpusError(f"shard file {path} already exists")
        with span("corpus/ingest", shard=name) as ingest:
            count, calls, returns = write_shard_file(
                path, events, version=version, block_events=block_events)
            if ingest is not None:
                ingest.set(events=count, calls=calls, returns=returns)
        record = ShardRecord(
            name=name,
            filename=path.name,
            format_version=version,
            events=count,
            calls=calls,
            returns=returns,
            checksum=_file_sha256(path),
            source=dict(source),
        )
        self.register(record)
        return record

    def register(self, record: ShardRecord) -> ShardRecord:
        """Add an already-written shard file's record to the manifest.

        The registration half of ingestion: parallel ingest writes
        shard files in worker processes
        (:func:`ingest_champsim_shard`), then the parent registers the
        records here — the manifest is only ever touched by one
        process. The shard file must already exist under this corpus
        root.
        """
        path = self.shard_path(record)
        if not path.exists():
            raise CorpusError(
                f"cannot register {record.name!r}: shard file {path} "
                f"does not exist")
        self.manifest.add(record)
        self.save()
        return record

    def build_from_specs(
        self,
        specs: Iterable[WorkloadSpec],
        max_instructions: int = 50_000_000,
    ) -> List[ShardRecord]:
        """Record one shard per workload spec via the reference emulator."""
        specs = list(specs)
        records = []
        with span("corpus/build", shards=len(specs)):
            for spec in specs:
                records.append(self.add_shard(
                    workload_shard_name(spec),
                    iter_control_events(build_program(spec),
                                        max_instructions=max_instructions),
                    source={"kind": "workload", "name": spec.name,
                            "seed": spec.seed, "scale": spec.scale},
                ))
        return records

    def import_champsim(
        self,
        trace_path: Union[str, pathlib.Path],
        name: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> "tuple[ShardRecord, ImportStats]":
        """Decode a ChampSim trace into a shard; returns import stats."""
        trace_path = pathlib.Path(trace_path)
        if name is None:
            name = trace_path.name.split(".")[0]
        if name in self.manifest:
            raise CorpusError(f"duplicate shard name {name!r}")
        with span("corpus/import", trace=trace_path.name):
            record, stats = ingest_champsim_shard(
                self.root, name, trace_path, limit=limit)
            self.register(record)
        return record, stats

    # -- integrity -----------------------------------------------------

    def verify(self) -> None:
        """Recompute every shard checksum against the manifest.

        Raises :class:`CorpusError` naming each missing or modified
        shard with the found-vs-expected digests.
        """
        problems = []
        with span("corpus/verify", shards=len(self.manifest)) as check:
            for record in self.manifest:
                path = self.shard_path(record)
                if not path.exists():
                    problems.append(
                        f"{record.name}: shard file {path} missing")
                    continue
                found = _file_sha256(path)
                if found != record.checksum:
                    problems.append(
                        f"{record.name}: checksum mismatch: found {found}, "
                        f"expected {record.checksum}")
            if check is not None:
                check.set(problems=len(problems))
        if problems:
            raise CorpusError(
                "corpus verification failed:\n  " + "\n  ".join(problems))

    def summary_rows(self) -> List[List[object]]:
        """One row per shard for CLI/report tables."""
        return [
            [record.name, record.kind, record.format_version, record.events,
             record.calls, record.returns, record.checksum[:12]]
            for record in self.manifest
        ]
