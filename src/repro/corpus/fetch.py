"""Fetching public ChampSim trace sets into a corpus.

A *trace-set manifest* is a small checked-in JSON document naming the
traces a corpus should be built from (documented in docs/validation.md):

.. code-block:: json

    {
      "schema": 1,
      "name": "sample",
      "description": "...",
      "traces": [
        {"name": "sample-champsim",
         "url": "https://host/path/trace.champsim.xz",
         "sha256": "<64 hex chars>",
         "bytes": 312}
      ]
    }

``url`` may be ``http(s)://`` or ``file://``, or a plain relative path
resolved against the manifest's own directory — which is how CI builds
a real corpus with zero network from a manifest that points at the
checked-in sample trace. Downloads are **resumable** (a ``.part`` file
plus an HTTP ``Range`` request picks up where a dropped transfer
stopped) and always end with a full SHA-256 verification against the
manifest; an existing file with the right digest is never re-fetched.

:func:`check_manifest` is the zero-network validation gate
(``repro-sim corpus fetch --check-manifest``, wired into the lint CI
job): schema, name, URL scheme, and digest shape problems are all
collected and reported at once. :func:`ingest_traces` fans decode +
shard-write over a process pool (the workers never touch the manifest;
the parent registers every record once, see
:func:`repro.corpus.store.ingest_champsim_shard`).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import json
import multiprocessing
import pathlib
import re
import urllib.error
import urllib.parse
import urllib.request
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.corpus.champsim import ImportStats
from repro.corpus.manifest import ShardRecord
from repro.corpus.store import (
    CorpusStore,
    _file_sha256,
    check_shard_name,
    ingest_champsim_shard,
)
from repro.errors import CorpusError
from repro.telemetry import span

#: Bump when the trace-set manifest JSON layout changes shape.
TRACESET_SCHEMA = 1

#: URL schemes the fetcher accepts (plain relative paths also work).
ALLOWED_SCHEMES = ("http", "https", "file")

_SHA256_RE = re.compile(r"^[0-9a-f]{64}$")

_DOWNLOAD_CHUNK = 1 << 20


@dataclasses.dataclass(frozen=True)
class TraceSetEntry:
    """One trace in a trace-set manifest."""

    name: str
    url: str
    sha256: str
    #: Expected size; advisory (progress display), never enforced.
    bytes: Optional[int] = None

    @property
    def filename(self) -> str:
        """Local filename: the entry name plus the URL's suffixes, so
        the compression sniffing of the importer keeps working."""
        path = urllib.parse.urlparse(self.url).path or self.url
        suffix = "".join(pathlib.PurePosixPath(path).suffixes)
        return f"{self.name}{suffix}"


@dataclasses.dataclass(frozen=True)
class TraceSetManifest:
    """A parsed, validated trace-set manifest."""

    name: str
    description: str
    traces: "tuple[TraceSetEntry, ...]"
    #: Directory relative URLs resolve against (the manifest's own).
    base_dir: Optional[pathlib.Path] = None

    def entry(self, name: str) -> TraceSetEntry:
        for trace in self.traces:
            if trace.name == name:
                return trace
        raise CorpusError(
            f"trace set {self.name!r} has no trace named {name!r}; "
            f"it has {[t.name for t in self.traces]}")

    @classmethod
    def from_json_dict(
        cls, data: Dict[str, object],
        base_dir: Optional[pathlib.Path] = None,
    ) -> "TraceSetManifest":
        problems: List[str] = []
        schema = data.get("schema")
        if schema != TRACESET_SCHEMA:
            raise CorpusError(
                f"unsupported trace-set schema: found {schema!r}, "
                f"expected {TRACESET_SCHEMA}")
        raw = data.get("traces", [])
        if not isinstance(raw, list) or not raw:
            raise CorpusError("trace-set manifest needs a non-empty "
                              "'traces' list")
        entries: List[TraceSetEntry] = []
        seen: set = set()
        for position, item in enumerate(raw):
            if not isinstance(item, dict):
                problems.append(f"traces[{position}]: not an object")
                continue
            name = str(item.get("name", ""))
            try:
                check_shard_name(name)
            except CorpusError as error:
                problems.append(f"traces[{position}]: {error}")
            if name in seen:
                problems.append(
                    f"traces[{position}]: duplicate trace name {name!r}")
            seen.add(name)
            url = str(item.get("url", ""))
            if not url:
                problems.append(f"traces[{position}] ({name}): missing url")
            else:
                scheme = urllib.parse.urlparse(url).scheme
                if scheme and scheme not in ALLOWED_SCHEMES:
                    problems.append(
                        f"traces[{position}] ({name}): scheme {scheme!r} "
                        f"not in {ALLOWED_SCHEMES}")
            digest = str(item.get("sha256", ""))
            if not _SHA256_RE.match(digest):
                problems.append(
                    f"traces[{position}] ({name}): sha256 must be 64 "
                    f"lowercase hex chars, got {digest!r}")
            size = item.get("bytes")
            if size is not None and (not isinstance(size, int) or size < 0):
                problems.append(
                    f"traces[{position}] ({name}): bytes must be a "
                    f"non-negative integer")
            entries.append(TraceSetEntry(name=name, url=url, sha256=digest,
                                         bytes=size))  # type: ignore[arg-type]
        if problems:
            raise CorpusError(
                "invalid trace-set manifest:\n  " + "\n  ".join(problems))
        return cls(
            name=str(data.get("name", "")),
            description=str(data.get("description", "")),
            traces=tuple(entries),
            base_dir=base_dir,
        )

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "TraceSetManifest":
        path = pathlib.Path(path)
        try:
            data = json.loads(path.read_text())
        except OSError as error:
            raise CorpusError(
                f"cannot read trace-set manifest {path}: {error}") from error
        except ValueError as error:
            raise CorpusError(
                f"trace-set manifest {path} is not valid JSON: "
                f"{error}") from error
        if not isinstance(data, dict):
            raise CorpusError(
                f"trace-set manifest {path} must be a JSON object")
        return cls.from_json_dict(data, base_dir=path.parent.resolve())

    def resolve(self, entry: TraceSetEntry) -> "tuple[str, Optional[pathlib.Path]]":
        """The entry's source as ``(url, local_path)``.

        ``local_path`` is set for ``file://`` URLs and relative paths
        (copied with seek-resume instead of HTTP).
        """
        parsed = urllib.parse.urlparse(entry.url)
        if parsed.scheme in ("http", "https"):
            return entry.url, None
        if parsed.scheme == "file":
            return entry.url, pathlib.Path(
                urllib.request.url2pathname(parsed.path))
        base = self.base_dir if self.base_dir is not None else pathlib.Path()
        return entry.url, (base / entry.url).resolve()


def check_manifest(path: Union[str, pathlib.Path]) -> TraceSetManifest:
    """Validate a trace-set manifest with **zero network traffic**.

    Schema shape, shard-safe names, uniqueness, URL schemes, and digest
    format — everything except the actual bytes. This is the lint-job
    gate keeping CI independent of external trace hosts.
    """
    return TraceSetManifest.load(path)


def _copy_resume(source: pathlib.Path, part: pathlib.Path,
                 offset: int) -> None:
    with open(source, "rb") as stream:
        stream.seek(offset)
        with open(part, "ab") as out:
            for chunk in iter(lambda: stream.read(_DOWNLOAD_CHUNK), b""):
                out.write(chunk)


def _download_resume(url: str, part: pathlib.Path, offset: int) -> None:
    request = urllib.request.Request(url)
    if offset:
        request.add_header("Range", f"bytes={offset}-")
    try:
        response = urllib.request.urlopen(request)
    except urllib.error.HTTPError as error:
        if offset and error.code == 416:
            return  # already have every byte; the digest check decides
        raise
    with response:
        status = getattr(response, "status", 200)
        mode = "ab"
        if offset and status != 206:
            mode = "wb"  # server ignored the Range header: restart
        with open(part, mode) as out:
            for chunk in iter(lambda: response.read(_DOWNLOAD_CHUNK), b""):
                out.write(chunk)


def fetch_entry(
    manifest: TraceSetManifest,
    entry: TraceSetEntry,
    dest_dir: Union[str, pathlib.Path],
    progress: Optional[Callable[[str], None]] = None,
) -> pathlib.Path:
    """Fetch one trace into ``dest_dir``; returns the verified path.

    Resumable: an interrupted transfer leaves ``<file>.part`` behind,
    and the next call continues from its size (HTTP ``Range`` for
    remote sources, a plain seek for local ones). The finished file
    must match the manifest digest or the fetch fails typed — a corrupt
    partial is removed so the next attempt starts clean.
    """
    dest_dir = pathlib.Path(dest_dir)
    dest_dir.mkdir(parents=True, exist_ok=True)
    dest = dest_dir / entry.filename
    if dest.exists():
        found = _file_sha256(dest)
        if found == entry.sha256:
            if progress:
                progress(f"{entry.name}: already fetched ({dest.name})")
            return dest
        raise CorpusError(
            f"{entry.name}: existing file {dest} does not match the "
            f"manifest (found {found}, expected {entry.sha256}); remove "
            f"it to re-fetch")
    url, local = manifest.resolve(entry)
    part = dest.with_name(dest.name + ".part")
    offset = part.stat().st_size if part.exists() else 0
    with span("corpus/fetch", trace=entry.name, resumed=bool(offset)):
        if progress:
            verb = "resuming" if offset else "fetching"
            progress(f"{entry.name}: {verb} {url}"
                     + (f" at byte {offset}" if offset else ""))
        try:
            if local is not None:
                if not local.exists():
                    raise CorpusError(
                        f"{entry.name}: local trace {local} does not exist")
                _copy_resume(local, part, offset)
            else:
                _download_resume(url, part, offset)
        except OSError as error:
            raise CorpusError(
                f"{entry.name}: fetch from {url} failed: {error}") from error
        found = _file_sha256(part)
        if found != entry.sha256:
            part.unlink(missing_ok=True)
            raise CorpusError(
                f"{entry.name}: digest mismatch after fetch from {url}: "
                f"found {found}, expected {entry.sha256}")
        part.replace(dest)
    if progress:
        progress(f"{entry.name}: verified {dest.stat().st_size} bytes")
    return dest


def fetch_set(
    manifest: TraceSetManifest,
    dest_dir: Union[str, pathlib.Path],
    names: Optional[Iterable[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> "List[tuple[TraceSetEntry, pathlib.Path]]":
    """Fetch every (selected) trace of a set; returns (entry, path)."""
    entries = (list(manifest.traces) if names is None
               else [manifest.entry(name) for name in names])
    return [(entry, fetch_entry(manifest, entry, dest_dir,
                                progress=progress))
            for entry in entries]


def _fork_pool(workers: int):
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - fork-less platform
        context = None
    kwargs = {"mp_context": context} if context is not None else {}
    return concurrent.futures.ProcessPoolExecutor(
        max_workers=workers, **kwargs)


def ingest_traces(
    store: CorpusStore,
    items: "Iterable[tuple[str, pathlib.Path]]",
    jobs: int = 1,
    limit: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> "List[tuple[ShardRecord, ImportStats]]":
    """Decode ``(shard name, trace path)`` pairs into ``store``.

    With ``jobs > 1`` decode + shard-write fans over a fork-based
    process pool; the manifest is only ever written by this process,
    once, after every worker finished — so parallel ingestion cannot
    race the manifest, and a corpus is never half-registered.
    All-or-nothing: any failure unlinks every file this call wrote and
    re-raises, leaving the store as it was.
    """
    items = list(items)
    for name, _ in items:
        check_shard_name(name)
        if name in store.manifest:
            raise CorpusError(f"duplicate shard name {name!r}")
    seen: set = set()
    for name, _ in items:
        if name in seen:
            raise CorpusError(f"duplicate shard name {name!r} in batch")
        seen.add(name)
    results: List[Optional["tuple[ShardRecord, ImportStats]"]] = (
        [None] * len(items))
    with span("corpus/ingest-batch", shards=len(items), jobs=jobs):
        try:
            if jobs > 1 and len(items) > 1:
                try:
                    with _fork_pool(min(jobs, len(items))) as pool:
                        futures = [
                            pool.submit(ingest_champsim_shard, store.root,
                                        name, path, limit)
                            for name, path in items]
                        for index, future in enumerate(futures):
                            results[index] = future.result()
                except OSError:
                    pass  # e.g. sandboxed semaphores; retry serially
            for index, (name, path) in enumerate(items):
                if results[index] is None:
                    results[index] = ingest_champsim_shard(
                        store.root, name, path, limit=limit)
        except BaseException:
            for outcome, (name, _) in zip(results, items):
                if outcome is not None:
                    store.shard_path(outcome[0]).unlink(missing_ok=True)
            raise
    for outcome in results:
        assert outcome is not None
        store.register(outcome[0])
        if progress:
            record, stats = outcome
            progress(f"{record.name}: {record.events} events, "
                     f"{record.returns} returns, "
                     f"{stats.offset_mismatches} offset mismatches")
    return results  # type: ignore[return-value]


def fetch_and_build(
    manifest: TraceSetManifest,
    store: CorpusStore,
    dest_dir: Optional[Union[str, pathlib.Path]] = None,
    names: Optional[Iterable[str]] = None,
    jobs: int = 1,
    limit: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> "List[tuple[ShardRecord, ImportStats]]":
    """Fetch a trace set and ingest every trace into ``store``.

    ``dest_dir`` defaults to ``<corpus root>/downloads``. Traces whose
    shard name is already in the corpus are skipped (idempotent
    re-runs); everything newly fetched is verified against the manifest
    digests before a single byte is decoded.
    """
    if dest_dir is None:
        dest_dir = store.root / "downloads"
    entries = (list(manifest.traces) if names is None
               else [manifest.entry(name) for name in names])
    wanted = [entry for entry in entries
              if entry.name not in store.manifest]
    for entry in entries:
        if entry.name in store.manifest and progress:
            progress(f"{entry.name}: already in corpus, skipping")
    fetched = fetch_set(manifest, dest_dir,
                        names=[entry.name for entry in wanted],
                        progress=progress)
    return ingest_traces(
        store, [(entry.name, path) for entry, path in fetched],
        jobs=jobs, limit=limit, progress=progress)
