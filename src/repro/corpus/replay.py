"""Corpus-driven experiment entry points.

Thin layer joining :class:`~repro.corpus.store.CorpusStore` to the
executor-routed :func:`~repro.core.sweep.trace_depth_sweep`: pick
shards, fan one job per ``shard x stack size`` over the
:class:`~repro.core.executor.SweepExecutor` (parallel, cached by shard
checksum), and shape the results as either raw counter dicts (for
tests and programmatic use) or a rendered table (for the CLI and
benchmarks).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config.defaults import baseline_config
from repro.config.options import RepairMechanism
from repro.core.executor import ExperimentJob, JobResult, SweepExecutor
from repro.core.sweep import trace_depth_sweep
from repro.corpus.store import CorpusStore

#: Default stack sizes for corpus capacity sweeps (the paper's F3 grid).
DEFAULT_SIZES = (1, 2, 4, 8, 12, 16, 32, 64)

TableData = Tuple[str, List[str], List[List[object]]]


def corpus_depth_results(
    store: CorpusStore,
    sizes: Sequence[int] = DEFAULT_SIZES,
    mechanism: RepairMechanism = RepairMechanism.NONE,
    executor: Optional[SweepExecutor] = None,
    names: Optional[Iterable[str]] = None,
    engine: str = "trace",
) -> Dict[str, Dict[int, JobResult]]:
    """Raw per-shard, per-size replay results for ``store``.

    ``engine`` picks the replay path (``"trace"`` streaming or
    ``"batch"`` block-decoded; identical counters either way).
    """
    return trace_depth_sweep(
        store.specs(names=names), sizes, mechanism=mechanism,
        executor=executor, engine=engine)


def corpus_depth_sweep(
    store: CorpusStore,
    sizes: Sequence[int] = DEFAULT_SIZES,
    mechanism: RepairMechanism = RepairMechanism.NONE,
    executor: Optional[SweepExecutor] = None,
    names: Optional[Iterable[str]] = None,
    engine: str = "trace",
) -> TableData:
    """Stack-depth sweep over a corpus, shaped like the F3 table.

    Rows mirror :func:`repro.core.tables.fig_stack_depth`: one row per
    shard, one return-hit-rate percentage column per stack size, plus
    the shard's return count for scale.
    """
    results = corpus_depth_results(store, sizes, mechanism=mechanism,
                                   executor=executor, names=names,
                                   engine=engine)
    rows: List[List[object]] = []
    for name, by_size in results.items():
        row: List[object] = [name]
        returns = 0
        for size in sizes:
            result = by_size[size]
            returns = result.counter("returns")
            accuracy = result.return_accuracy
            row.append(None if accuracy is None else round(100 * accuracy, 2))
        row.append(returns)
        rows.append(row)
    headers = (["shard"] + [f"{size}-entry %" for size in sizes]
               + ["returns"])
    title = (f"Corpus stack-depth sweep ({mechanism}, "
             f"{len(results)} shards)")
    return title, headers, rows


#: Mechanisms the headline report compares per shard: the pc+4 baseline
#: against the ChampSim call-size-calibrated variant, so the
#: calibration win on variable-length-ISA traces is the table's point.
REPORT_MECHANISMS = (RepairMechanism.NONE, RepairMechanism.CHAMPSIM)


def corpus_report(
    store: CorpusStore,
    ras_entries: int = 64,
    executor: Optional[SweepExecutor] = None,
    names: Optional[Iterable[str]] = None,
    engine: str = "batch",
    mechanisms: Sequence[RepairMechanism] = REPORT_MECHANISMS,
) -> TableData:
    """The corpus-wide headline table: every shard, every mechanism.

    One ``shard x mechanism`` job fans over the executor (cached by
    shard checksum; ``"batch"`` decodes block-at-a-time). Columns hold
    the per-shard return counts plus one return-accuracy percentage per
    mechanism — on real imported traces the gap between ``none`` and
    ``champsim`` is the measurable win of call-size calibration
    (``ImportStats.offset_mismatches`` counts the returns at stake).
    """
    if executor is None:
        executor = SweepExecutor()
    specs = store.specs(names=names)
    base = baseline_config().with_ras_entries(ras_entries)
    jobs = [
        ExperimentJob(spec, base.with_repair(mechanism), engine=engine)
        for spec in specs for mechanism in mechanisms
    ]
    results = executor.run(jobs)
    rows: List[List[object]] = []
    for index, spec in enumerate(specs):
        row: List[object] = [
            spec.name, spec.events or 0, spec.calls or 0,
            spec.returns or 0,
        ]
        for offset in range(len(mechanisms)):
            accuracy = results[index * len(mechanisms) + offset] \
                .return_accuracy
            row.append(None if accuracy is None
                       else round(100 * accuracy, 2))
        rows.append(row)
    headers = (["shard", "events", "calls", "returns"]
               + [f"{mechanism.value} %" for mechanism in mechanisms])
    title = (f"Corpus report ({len(specs)} shards, "
             f"{ras_entries}-entry RAS, engine={engine})")
    return title, headers, rows
