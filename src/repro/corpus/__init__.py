"""Durable, sharded, compressed control-flow trace corpora.

This package is the data-pipeline backbone for trace-driven
experiments: a directory of chunked v2 trace shards plus a JSON
manifest (:mod:`repro.corpus.store`, :mod:`repro.corpus.manifest`),
streaming ingestion from the reference emulator or from external
ChampSim traces (:mod:`repro.corpus.champsim`), and executor-routed
capacity sweeps over whole corpora (:mod:`repro.corpus.replay`).
See docs/traces.md for formats, schema, and CLI examples
(``repro-sim corpus build|import|info|verify|replay``).
"""

from repro.corpus.champsim import (
    ImportStats,
    champsim_events,
    classify_branch,
    iter_champsim_records,
)
from repro.corpus.manifest import (
    MANIFEST_SCHEMA,
    CorpusManifest,
    ShardRecord,
)
from repro.corpus.replay import (
    DEFAULT_SIZES,
    corpus_depth_results,
    corpus_depth_sweep,
)
from repro.corpus.store import CorpusStore, workload_shard_name
from repro.errors import CorpusError

__all__ = [
    "CorpusError",
    "CorpusManifest",
    "CorpusStore",
    "DEFAULT_SIZES",
    "ImportStats",
    "MANIFEST_SCHEMA",
    "ShardRecord",
    "champsim_events",
    "classify_branch",
    "corpus_depth_results",
    "corpus_depth_sweep",
    "iter_champsim_records",
    "workload_shard_name",
]
