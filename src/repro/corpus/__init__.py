"""Durable, sharded, compressed control-flow trace corpora.

This package is the data-pipeline backbone for trace-driven
experiments: a directory of chunked v2 trace shards plus a JSON
manifest (:mod:`repro.corpus.store`, :mod:`repro.corpus.manifest`),
streaming ingestion from the reference emulator or from external
ChampSim traces (:mod:`repro.corpus.champsim`), and executor-routed
capacity sweeps over whole corpora (:mod:`repro.corpus.replay`).
See docs/traces.md for formats, schema, and CLI examples
(``repro-sim corpus build|import|info|verify|replay``).
"""

from repro.corpus.champsim import (
    ImportStats,
    champsim_events,
    classify_branch,
    iter_champsim_records,
)
from repro.corpus.diffcheck import (
    DiffReport,
    ReferenceReturnStack,
    diff_corpus,
    diff_events,
    diff_shard,
)
from repro.corpus.fetch import (
    TRACESET_SCHEMA,
    TraceSetEntry,
    TraceSetManifest,
    check_manifest,
    fetch_and_build,
    fetch_entry,
    fetch_set,
    ingest_traces,
)
from repro.corpus.manifest import (
    MANIFEST_SCHEMA,
    CorpusManifest,
    ShardRecord,
)
from repro.corpus.replay import (
    DEFAULT_SIZES,
    REPORT_MECHANISMS,
    corpus_depth_results,
    corpus_depth_sweep,
    corpus_report,
)
from repro.corpus.store import (
    CorpusStore,
    ingest_champsim_shard,
    workload_shard_name,
    write_shard_file,
)
from repro.errors import CorpusError, DivergenceError

__all__ = [
    "CorpusError",
    "CorpusManifest",
    "CorpusStore",
    "DEFAULT_SIZES",
    "DiffReport",
    "DivergenceError",
    "ImportStats",
    "MANIFEST_SCHEMA",
    "REPORT_MECHANISMS",
    "ReferenceReturnStack",
    "ShardRecord",
    "TRACESET_SCHEMA",
    "TraceSetEntry",
    "TraceSetManifest",
    "champsim_events",
    "check_manifest",
    "classify_branch",
    "corpus_depth_results",
    "corpus_depth_sweep",
    "corpus_report",
    "diff_corpus",
    "diff_events",
    "diff_shard",
    "fetch_and_build",
    "fetch_entry",
    "fetch_set",
    "ingest_champsim_shard",
    "ingest_traces",
    "iter_champsim_records",
    "workload_shard_name",
    "write_shard_file",
]
