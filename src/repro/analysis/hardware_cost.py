"""Hardware-cost model for the repair mechanisms.

The paper's §4 argues costs qualitatively: saving the TOS pointer adds
"several bits per branch" to the existing shadow state; saving the top
entry's contents adds one address; full-stack checkpointing is clearly
infeasible per branch; Jourdan-style self-checkpointing avoids per-
branch storage but "requires a larger number of stack entries". This
module makes those comparisons concrete in bits, for a configurable
machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.bpred.ras import ChampSimRas
from repro.config.machine import BranchPredictorConfig
from repro.config.options import RepairMechanism


@dataclass(frozen=True)
class MechanismCost:
    """Storage cost of one repair mechanism."""

    mechanism: RepairMechanism
    #: Bits checkpointed per in-flight branch (shadow state).
    bits_per_checkpoint: int
    #: Extra bits added to the stack structure itself.
    extra_stack_bits: int

    def total_bits(self, in_flight_branches: int) -> int:
        return (self.bits_per_checkpoint * in_flight_branches
                + self.extra_stack_bits)


def _pointer_bits(entries: int) -> int:
    return max(1, math.ceil(math.log2(entries)))


def mechanism_costs(
    config: BranchPredictorConfig,
    address_bits: int = 64,
) -> List[MechanismCost]:
    """Cost of every mechanism under ``config``.

    ``address_bits`` is the width of a return address as stored in the
    stack (64 for this ISA; a real implementation stores fewer —
    the comparison between mechanisms is unaffected).
    """
    entries = config.ras_entries
    pointer = _pointer_bits(entries)
    pool = entries * config.self_checkpoint_overprovision
    pool_pointer = _pointer_bits(pool)
    return [
        MechanismCost(RepairMechanism.NONE, 0, 0),
        MechanismCost(RepairMechanism.TOS_POINTER, pointer, 0),
        MechanismCost(
            RepairMechanism.TOS_POINTER_AND_CONTENTS,
            pointer + address_bits, 0),
        MechanismCost(
            RepairMechanism.FULL_STACK,
            pointer + entries * address_bits, 0),
        MechanismCost(
            RepairMechanism.VALID_BITS,
            # pointer plus a push-horizon tag; the valid bits live in
            # the stack (1 per entry) with a writer tag per entry.
            pointer + pointer, entries * (1 + pointer)),
        MechanismCost(
            RepairMechanism.SELF_CHECKPOINT,
            pool_pointer,
            # extra physical entries plus a next-pointer per entry,
            # relative to the plain circular stack.
            (pool - entries) * address_bits + pool * pool_pointer),
        MechanismCost(
            RepairMechanism.CHAMPSIM,
            # no repair shadow state at all (like NONE); the cost is the
            # call-size-tracker table — sizes <= 10 fit in 4 bits each.
            0, ChampSimRas.NUM_CALL_SIZE_TRACKERS * 4),
    ]


def cost_table(
    config: BranchPredictorConfig,
    in_flight_branches: int = 20,
    address_bits: int = 64,
) -> List[List[object]]:
    """Rows: mechanism, bits/checkpoint, stack-extra bits, total bits.

    ``in_flight_branches`` defaults to the 21264's ~20 shadow slots.
    """
    rows: List[List[object]] = []
    for cost in mechanism_costs(config, address_bits):
        rows.append([
            cost.mechanism.value,
            cost.bits_per_checkpoint,
            cost.extra_stack_bits,
            cost.total_bits(in_flight_branches),
        ])
    return rows
