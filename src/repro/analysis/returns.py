"""Return prediction: RAS vs general indirect-branch predictors.

The paper's related-work claim: history-based indirect predictors "can
potentially capture caller history well enough to distinguish among
possible return targets. These general mechanisms, however, do not
achieve the near-100% accuracies possible with a return-address stack."

This instrument measures that on a *clean* (no wrong-path) stream —
the most favourable setting for the general predictors, since the RAS
is the only structure that suffers from corruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.ras import make_ras
from repro.bpred.target_cache import TargetCache
from repro.config.options import RepairMechanism
from repro.emu.exec_core import execute
from repro.emu.machine_state import MachineState
from repro.errors import EmulationError
from repro.isa.opcodes import ControlClass, WORD_SIZE
from repro.isa.program import Program


@dataclass(frozen=True)
class ReturnPredictorComparison:
    """Per-predictor return accuracy over one program."""

    returns: int
    accuracy: Dict[str, Optional[float]]

    def best_general(self) -> Optional[float]:
        """Best non-RAS accuracy (the alternatives' ceiling)."""
        general = [value for name, value in self.accuracy.items()
                   if name != "ras" and value is not None]
        return max(general) if general else None


def compare_return_predictors(
    program: Program,
    target_cache_histories: Sequence[int] = (0, 2, 4, 8),
    ras_entries: int = 32,
    max_instructions: int = 50_000_000,
) -> ReturnPredictorComparison:
    """Measure return-target accuracy of BTB, target caches, and a RAS.

    All predictors train at commit on the architectural stream; there is
    no speculation, so the RAS figure is its corruption-free ceiling
    (bounded only by overflow).
    """
    btb = BranchTargetBuffer()
    caches = {
        f"target-cache-h{depth}": TargetCache(history_targets=depth)
        for depth in target_cache_histories
    }
    ras = make_ras(ras_entries, RepairMechanism.NONE)

    hits: Dict[str, int] = {"btb": 0, "ras": 0}
    hits.update({name: 0 for name in caches})
    returns = 0

    state = MachineState(pc=program.entry, initial_memory=program.data)
    pc = program.entry
    executed = 0
    while True:
        if executed >= max_instructions:
            raise EmulationError("return-predictor comparison watchdog")
        inst = program.fetch(pc)
        control = inst.control
        predictions: Dict[str, Optional[int]] = {}
        if control is ControlClass.RETURN:
            predictions["btb"] = btb.lookup(pc)
            for name, cache in caches.items():
                predictions[name] = cache.predict(pc)
            predictions["ras"] = ras.pop()
        if control.is_call:
            ras.push(pc + WORD_SIZE)

        outcome = execute(inst, pc, state)
        executed += 1
        if outcome.is_halt:
            break
        if control is ControlClass.RETURN:
            returns += 1
            actual = outcome.next_pc
            for name, predicted in predictions.items():
                if predicted == actual:
                    hits[name] += 1
            btb.update(pc, actual, True)
            for cache in caches.values():
                cache.update(pc, actual)
        pc = outcome.next_pc
    accuracy: Dict[str, Optional[float]] = {
        name: (count / returns if returns else None)
        for name, count in hits.items()
    }
    return ReturnPredictorComparison(returns=returns, accuracy=accuracy)
