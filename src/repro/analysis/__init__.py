"""Analysis instruments.

* :mod:`repro.analysis.corruption` — classifies every return
  misprediction by the *weakest repair mechanism that would have fixed
  it*, reproducing the paper's Section 4 argument that the wrong-path
  pop-then-push overwrite dominates (hence pointer+contents ~ full).
* :mod:`repro.analysis.returns` — compares the RAS against general
  indirect-branch predictors (BTB, Chang/Hao/Patt-style target cache)
  on return prediction, reproducing the related-work claim that history
  mechanisms "do not achieve the near-100% accuracies possible with a
  return-address stack".
"""

from repro.analysis.corruption import CorruptionAnalyzer, CorruptionBreakdown
from repro.analysis.hardware_cost import MechanismCost, cost_table, mechanism_costs
from repro.analysis.returns import ReturnPredictorComparison, compare_return_predictors

__all__ = [
    "CorruptionAnalyzer",
    "CorruptionBreakdown",
    "MechanismCost",
    "ReturnPredictorComparison",
    "compare_return_predictors",
    "cost_table",
    "mechanism_costs",
]
