"""Classify return mispredictions by the repair they would have needed.

Four return-address stacks — one per primary mechanism — run in
lockstep through the same program with the same wrong-path replay.
Every *committed* return is then labelled with the weakest mechanism
whose stack predicted it correctly:

=================  ========================================================
``clean``          even the unrepaired stack was right (no corruption
                   reached this return)
``needs_pointer``  pointer restore sufficed — the wrong path only made
                   net pushes/pops
``needs_contents`` the wrong path popped then pushed, overwriting the
                   top entry: the paper's headline case
``needs_full``     corruption reached below the top entry — only a full
                   checkpoint repairs it
``unrepairable``   even the fully checkpointed stack missed (deep call
                   chains overflowing the stack, or genuinely wild
                   control flow)
=================  ========================================================

The paper's argument is quantitative: ``needs_full`` and
``unrepairable`` are rare, so saving one pointer and one address per
branch captures almost all of full checkpointing's benefit. This
instrument measures exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.hybrid import HybridPredictor
from repro.bpred.ras import BaseRas, make_ras
from repro.config.machine import BranchPredictorConfig
from repro.config.options import RepairMechanism
from repro.emu.exec_core import execute
from repro.emu.machine_state import MachineState
from repro.errors import EmulationError
from repro.isa.opcodes import ControlClass, WORD_SIZE
from repro.isa.program import Program

#: Classification order: weakest sufficient mechanism first.
CATEGORIES = ("clean", "needs_pointer", "needs_contents", "needs_full",
              "unrepairable")

_LOCKSTEP_MECHANISMS = (
    RepairMechanism.NONE,
    RepairMechanism.TOS_POINTER,
    RepairMechanism.TOS_POINTER_AND_CONTENTS,
    RepairMechanism.FULL_STACK,
)


@dataclass
class CorruptionBreakdown:
    """Counts of committed returns by corruption category."""

    counts: Dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in CATEGORIES})
    returns: int = 0

    def record(self, category: str) -> None:
        self.counts[category] += 1
        self.returns += 1

    def fraction(self, category: str) -> Optional[float]:
        if self.returns == 0:
            return None
        return self.counts[category] / self.returns

    def implied_hit_rate(self, mechanism: RepairMechanism) -> Optional[float]:
        """Hit rate a mechanism achieves given this breakdown."""
        if self.returns == 0:
            return None
        repaired = self.counts["clean"]
        if mechanism in (RepairMechanism.TOS_POINTER,
                         RepairMechanism.TOS_POINTER_AND_CONTENTS,
                         RepairMechanism.FULL_STACK):
            repaired += self.counts["needs_pointer"]
        if mechanism in (RepairMechanism.TOS_POINTER_AND_CONTENTS,
                         RepairMechanism.FULL_STACK):
            repaired += self.counts["needs_contents"]
        if mechanism is RepairMechanism.FULL_STACK:
            repaired += self.counts["needs_full"]
        return repaired / self.returns

    def as_rows(self) -> List[List[object]]:
        rows = []
        for name in CATEGORIES:
            fraction = self.fraction(name)
            rows.append([
                name,
                self.counts[name],
                None if fraction is None else round(100 * fraction, 2),
            ])
        return rows


class _LockstepStacks:
    """The four mechanism stacks driven by identical events."""

    def __init__(self, entries: int) -> None:
        self.stacks: Dict[RepairMechanism, BaseRas] = {
            mechanism: make_ras(entries, mechanism)
            for mechanism in _LOCKSTEP_MECHANISMS
        }

    def push(self, address: int) -> None:
        for stack in self.stacks.values():
            stack.push(address)

    def pop(self) -> Dict[RepairMechanism, Optional[int]]:
        return {mechanism: stack.pop()
                for mechanism, stack in self.stacks.items()}

    def checkpoint(self) -> Dict[RepairMechanism, object]:
        return {mechanism: stack.checkpoint()
                for mechanism, stack in self.stacks.items()}

    def restore(self, tokens: Dict[RepairMechanism, object]) -> None:
        for mechanism, stack in self.stacks.items():
            stack.restore(tokens[mechanism])


class CorruptionAnalyzer:
    """Front-end replay (as in :mod:`repro.fastsim`) over lockstep stacks."""

    def __init__(
        self,
        program: Program,
        config: Optional[BranchPredictorConfig] = None,
        wrong_path_instructions: int = 16,
        max_instructions: int = 50_000_000,
    ) -> None:
        self.program = program
        self.config = config or BranchPredictorConfig()
        self.wrong_path_instructions = wrong_path_instructions
        self.max_instructions = max_instructions
        self.hybrid = HybridPredictor(
            self.config.gag_entries,
            self.config.pag_history_entries,
            self.config.pag_history_bits,
            self.config.selector_entries,
        )
        self.btb = BranchTargetBuffer(self.config.btb_sets,
                                      self.config.btb_assoc)
        self.stacks = _LockstepStacks(self.config.ras_entries)

    # -- prediction helpers -------------------------------------------

    def _predict_target(self, pc: int, inst) -> Optional[int]:
        """Predicted next PC for the wrong-path walk (front-end view).

        Returns are predicted here from the FULL_STACK stack purely to
        route the walk; each stack's own pop already happened in
        lockstep, so routing does not bias the comparison.
        """
        control = inst.control
        fallthrough = pc + WORD_SIZE
        if control is ControlClass.COND_BRANCH:
            if self.hybrid.predict(pc):
                predicted = self.btb.lookup(pc)
                return predicted if predicted is not None else fallthrough
            return fallthrough
        if control in (ControlClass.JUMP_DIRECT, ControlClass.CALL_DIRECT):
            return inst.target
        predicted = self.btb.lookup(pc)
        return predicted if predicted is not None else fallthrough

    def _front_end_step(self, pc: int, inst) -> int:
        """Apply RAS actions for one fetched instruction; return next PC."""
        control = inst.control
        next_pc: int
        if control is ControlClass.RETURN:
            popped = self.stacks.pop()
            reference = popped[RepairMechanism.FULL_STACK]
            next_pc = (reference if reference is not None
                       else pc + WORD_SIZE)
        else:
            next_pc = self._predict_target(pc, inst) or pc + WORD_SIZE
        if control.is_call:
            self.stacks.push(pc + WORD_SIZE)
        return next_pc

    def _walk_wrong_path(self, start_pc: int) -> None:
        pc = start_pc
        for _ in range(self.wrong_path_instructions):
            if not self.program.in_text(pc):
                return
            inst = self.program.fetch(pc)
            if inst.opcode.value == "halt":
                return
            if inst.is_control:
                pc = self._front_end_step(pc, inst)
            else:
                pc += WORD_SIZE

    # -- classification -------------------------------------------------

    @staticmethod
    def _classify(predictions: Dict[RepairMechanism, Optional[int]],
                  actual: int) -> str:
        if predictions[RepairMechanism.NONE] == actual:
            return "clean"
        if predictions[RepairMechanism.TOS_POINTER] == actual:
            return "needs_pointer"
        if predictions[RepairMechanism.TOS_POINTER_AND_CONTENTS] == actual:
            return "needs_contents"
        if predictions[RepairMechanism.FULL_STACK] == actual:
            return "needs_full"
        return "unrepairable"

    def run(self) -> CorruptionBreakdown:
        """Replay the program; classify every committed return."""
        program = self.program
        breakdown = CorruptionBreakdown()
        state = MachineState(pc=program.entry, initial_memory=program.data)
        pc = program.entry
        executed = 0
        while True:
            if executed >= self.max_instructions:
                raise EmulationError("corruption analyzer watchdog")
            inst = program.fetch(pc)
            control = inst.control
            tokens = None
            predictions = None
            predicted_target: Optional[int] = None
            if control is ControlClass.RETURN:
                predictions = self.stacks.pop()
                predicted_target = predictions[RepairMechanism.FULL_STACK]
            elif inst.is_control:
                predicted_target = self._predict_target(pc, inst)
            if control.is_call:
                self.stacks.push(pc + WORD_SIZE)
            if control in (ControlClass.COND_BRANCH,
                           ControlClass.JUMP_INDIRECT,
                           ControlClass.CALL_INDIRECT,
                           ControlClass.RETURN):
                tokens = self.stacks.checkpoint()

            outcome = execute(inst, pc, state)
            executed += 1
            if outcome.is_halt:
                break

            if predictions is not None:
                breakdown.record(self._classify(predictions, outcome.next_pc))
            if inst.is_control:
                mispredicted = predicted_target != outcome.next_pc
                if mispredicted and tokens is not None:
                    self._walk_wrong_path(
                        predicted_target if predicted_target is not None
                        else pc + WORD_SIZE)
                    self.stacks.restore(tokens)
                # Commit-time training.
                if control is ControlClass.COND_BRANCH:
                    self.hybrid.update(pc, outcome.taken)
                    self.btb.update(pc, outcome.next_pc, outcome.taken)
                else:
                    self.btb.update(pc, outcome.next_pc, True)
            pc = outcome.next_pc
        return breakdown
